#!/usr/bin/env python3
"""Render Figure 3: the worked dual-MicroBlaze MPDP schedule.

Produces schedule A (periodic only; P2 promoted to make its deadline)
and schedule B (with the two aperiodic arrivals; A1 starts instantly,
is interrupted by P1's promotion, and A2 waits its FIFO turn), then
verifies every claim the paper's caption makes.

Run:  python examples/figure3_schedule.py
"""

from repro.experiments.figure3 import main

if __name__ == "__main__":
    raise SystemExit(main())
