#!/usr/bin/env python3
"""The paper's evaluation workload, end to end (a one-cell Figure 4).

Builds the 19-task MiBench automotive set (18 periodic + susan/large
as the interrupt-triggered aperiodic), analyses it, then runs both the
theoretical simulator (idealised, 2 % overhead) and the full-system
prototype (arbitrated OPB, context switches through shared memory,
MPIC-distributed interrupts) and compares the aperiodic response time
-- the paper's headline measurement.

Run:  python examples/automotive_case_study.py [n_cpus] [utilization]
e.g.  python examples/automotive_case_study.py 3 0.5
"""

import sys

from repro import CLOCK_HZ, cycles_to_seconds
from repro.experiments.figure4 import TICK
from repro.simulators.prototype import PrototypeConfig, PrototypeSimulator
from repro.simulators.theoretical import TheoreticalSimulator
from repro.trace.metrics import compute_metrics
from repro.workloads.automotive import (
    AUTOMOTIVE_APERIODIC,
    automotive_bindings,
    build_automotive_taskset,
    prepare_taskset,
)


def main() -> None:
    n_cpus = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    utilization = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    scale = 1_000
    arrival = int(1.0 * CLOCK_HZ)          # the camera frame arrives at 1 s
    horizon = arrival + int(20 * CLOCK_HZ)

    print(f"== MiBench automotive workload: {n_cpus} MicroBlazes @ "
          f"{utilization:.0%} periodic utilization ==")
    taskset = build_automotive_taskset(utilization, n_cpus)
    taskset = prepare_taskset(taskset, n_cpus, tick=TICK)
    print(taskset.summary())
    print()

    arrivals = {AUTOMOTIVE_APERIODIC: [arrival]}

    theo = TheoreticalSimulator(taskset, n_cpus, tick=TICK, overhead=0.02,
                                aperiodic_arrivals=arrivals)
    theo.run(horizon)
    theo_metrics = compute_metrics(theo.finished_jobs, horizon)
    theo_resp = theo_metrics.response_of(AUTOMOTIVE_APERIODIC).mean

    proto = PrototypeSimulator(
        taskset,
        PrototypeConfig(n_cpus=n_cpus, tick=TICK, scale=scale),
        bindings=automotive_bindings(),
        aperiodic_arrivals=arrivals,
    )
    proto.run(horizon)
    proto_metrics = compute_metrics(proto.finished_jobs, horizon // scale)
    proto_resp = proto.to_full_scale(
        int(proto_metrics.response_of(AUTOMOTIVE_APERIODIC).mean)
    )

    print("== results ==")
    print(f"susan/large standalone execution:   "
          f"{cycles_to_seconds(taskset.by_name(AUTOMOTIVE_APERIODIC).acet):7.3f} s")
    print(f"theoretical simulator response:     {cycles_to_seconds(theo_resp):7.3f} s")
    print(f"prototype (full system) response:   {cycles_to_seconds(proto_resp):7.3f} s")
    print(f"slowdown real vs simulated:         "
          f"{100 * (proto_resp / theo_resp - 1):7.1f} %")
    print()
    stats = proto.stats()
    print("== prototype internals ==")
    print(f"scheduling cycles run:   {stats['scheduling_cycles']}")
    print(f"context switches:        {stats['context_switches']}")
    print(f"IPIs sent:               {stats['ipis']}")
    print(f"interrupts delivered:    {stats['mpic_delivered']}")
    print(f"OPB bus utilization:     {stats['bus_utilization']:.1%}")
    misses = sum(1 for j in proto.finished_jobs if j.missed_deadline)
    print(f"periodic deadline misses: {misses}")


if __name__ == "__main__":
    main()
