#!/usr/bin/env python3
"""Instruction-level substrate: two MicroBlazes contending on the OPB.

Assembles two small programs -- a bubble sort over DDR data and a
checksum loop -- and runs them simultaneously on a 2-core SoC.  Both
cores fetch through their instruction caches and touch shared DDR, so
the fixed-priority bus arbitration is visible in the cycle counts:
run either program alone and it finishes faster than when both run.

Run:  python examples/isa_playground.py
"""

from repro.hw.assembler import assemble
from repro.hw.isa import ISAExecutor
from repro.hw.soc import SoC, SoCConfig

SORT = """
# Bubble sort 12 words at 'data' (shared DDR), ascending.
.data 0x40010000
data: .word 93 12 55 7 81 40 3 66 28 71 19 50
.text 0x40000000
    addi r10, r0, 12        # n
outer:
    addi r10, r10, -1
    beqz r10, done
    addi r4, r0, data       # ptr
    addi r5, r10, 0         # inner counter
inner:
    lwi  r6, r4, 0
    lwi  r7, r4, 4
    cmp  r8, r7, r6         # r8 = r6 - r7  (negative if in order)
    blez r8, noswap
    swi  r7, r4, 0
    swi  r6, r4, 4
noswap:
    addi r4, r4, 4
    addi r5, r5, -1
    bnez r5, inner
    br outer
done:
    halt
"""

CHECKSUM = """
# Fill 64 words at 'blob' with a pseudo-random sequence, then fold
# them back into a rotating checksum (write + read DDR traffic).
.data 0x40020000
blob: .space 64
.text 0x40001000
    addi r4, r0, blob
    addi r5, r0, 64
    addi r6, r0, 0x1234
fill:
    muli r6, r6, 1103515245
    addi r6, r6, 12345
    swi  r6, r4, 0
    addi r4, r4, 4
    addi r5, r5, -1
    bnez r5, fill
    addi r3, r0, 0          # checksum
    addi r4, r0, blob
    addi r5, r0, 64
loop:
    lwi  r7, r4, 0
    xor  r3, r3, r7
    srli r8, r3, 31
    slli r3, r3, 1
    or   r3, r3, r8         # rotate left 1
    addi r4, r4, 4
    addi r5, r5, -1
    bnez r5, loop
    swi  r3, r0, 0x40020200
    halt
"""


def run(programs):
    """Run the given (cpu -> source) programs together; return executors."""
    soc = SoC(SoCConfig(n_cpus=2))
    executors = {}
    for cpu, source in programs.items():
        program = assemble(source)
        executor = ISAExecutor(soc.core(cpu), program)
        soc.sim.process(executor.run())
        executors[cpu] = executor
    soc.sim.run()
    return soc, executors


def main() -> None:
    # Alone: each program on an otherwise idle SoC.
    _, solo_sort = run({0: SORT})
    _, solo_sum = run({1: CHECKSUM})
    # Together: both cores share the bus.
    soc, both = run({0: SORT, 1: CHECKSUM})

    print("program        alone(cycles)  contended(cycles)  slowdown")
    print(f"bubble-sort    {solo_sort[0].cycles:>12}  {both[0].cycles:>16}  "
          f"{100 * (both[0].cycles / solo_sort[0].cycles - 1):7.1f} %")
    print(f"checksum       {solo_sum[1].cycles:>12}  {both[1].cycles:>16}  "
          f"{100 * (both[1].cycles / solo_sum[1].cycles - 1):7.1f} %")

    sorted_words = [soc.ddr.read_word(0x40010000 + 4 * i) for i in range(12)]
    print(f"\nsorted data:  {sorted_words}")
    assert sorted_words == sorted(sorted_words)
    print(f"checksum:     {soc.ddr.read_word(0x40020200):#010x}")
    print(f"bus: {soc.bus.stats.transactions} transactions, "
          f"{soc.bus.stats.utilization(soc.sim.now):.0%} utilization")
    for cpu in (0, 1):
        cache = soc.core(cpu).icache
        print(f"cpu{cpu} icache: {cache.hits} hits / {cache.misses} misses "
              f"({cache.hit_rate:.1%})")


if __name__ == "__main__":
    main()
