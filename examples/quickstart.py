#!/usr/bin/env python3
"""Quickstart: analyse and schedule a small dual-priority task set.

Walks the full MPDP pipeline on a toy automotive-flavoured workload:

1. define periodic (hard) and aperiodic (soft) tasks;
2. partition the periodic tasks over two processors;
3. run the offline analysis (worst-case response times W_i and
   promotion instants U_i = D_i - W_i);
4. simulate the schedule and print response times and a Gantt chart.

Run:  python examples/quickstart.py
"""

from repro.analysis import analyse_taskset, assign_promotions, partition
from repro.core.task import AperiodicTask, PeriodicTask, TaskSet
from repro.simulators.theoretical import TheoreticalSimulator
from repro.trace import TraceRecorder, compute_metrics
from repro.trace.gantt import render_gantt, render_legend

TICK = 10_000  # scheduling cycle, in clock cycles

def main() -> None:
    # 1. The workload: three sensor-ish periodic tasks plus an
    #    event-triggered diagnostic, all times in cycles.
    taskset = TaskSet(
        periodic=[
            PeriodicTask(name="wheel-speed", wcet=12_000, period=60_000),
            PeriodicTask(name="abs-monitor", wcet=20_000, period=100_000, deadline=80_000),
            PeriodicTask(name="engine-poll", wcet=30_000, period=150_000),
        ],
        aperiodic=[
            AperiodicTask(name="crash-diag", wcet=25_000),
        ],
    ).with_deadline_monotonic_priorities()

    # 2./3. Partition + offline analysis.
    taskset = partition(taskset, n_cpus=2, heuristic="worst-fit")
    report = analyse_taskset(taskset, n_cpus=2)
    taskset = assign_promotions(taskset, n_cpus=2, tick=TICK)

    print("=== offline analysis ===")
    print(report.format())
    print()
    print(taskset.summary())
    print()

    # 4. Simulate: the diagnostic event arrives at t = 75 000.
    trace = TraceRecorder()
    sim = TheoreticalSimulator(
        taskset, n_cpus=2, tick=TICK, overhead=0.0,
        aperiodic_arrivals={"crash-diag": [75_000]},
        trace=trace,
    )
    horizon = 300_000
    sim.run(horizon)

    metrics = compute_metrics(sim.finished_jobs, horizon, trace)
    print("=== simulation ===")
    print(f"jobs finished:    {metrics.finished_jobs}")
    print(f"deadline misses:  {metrics.deadline_misses}")
    print(f"context switches: {sim.context_switches}")
    diag = metrics.response_of("crash-diag")
    print(f"crash-diag response: {diag.mean:.0f} cycles "
          f"(execution time {taskset.by_name('crash-diag').wcet})")
    print()
    print(render_gantt(trace, horizon=horizon, slot=5_000, n_cpus=2))
    print(render_legend(trace))


if __name__ == "__main__":
    main()
