#!/usr/bin/env python3
"""Watching the bus saturate: the mechanism behind Figure 4's trend.

Runs the automotive workload on 2, 3 and 4 processors at 50 %
utilization with a windowed bus monitor attached, and prints the
utilization time series.  This is the paper's explanation of the
4-processor result made visible: "the bus and memory access patterns
have stabilized".

Run:  python examples/bus_saturation_study.py
"""

from repro import CLOCK_HZ
from repro.experiments.figure4 import TICK
from repro.hw.monitor import BusMonitor
from repro.simulators.prototype import PrototypeConfig, PrototypeSimulator
from repro.trace.metrics import compute_metrics
from repro.workloads.automotive import (
    AUTOMOTIVE_APERIODIC,
    automotive_bindings,
    build_automotive_taskset,
    prepare_taskset,
)

SCALE = 1_000


def run_config(n_cpus: int, utilization: float = 0.5):
    taskset = prepare_taskset(
        build_automotive_taskset(utilization, n_cpus), n_cpus, tick=TICK
    )
    arrival = int(1.0 * CLOCK_HZ)
    horizon = arrival + int(16.0 * CLOCK_HZ)
    proto = PrototypeSimulator(
        taskset,
        PrototypeConfig(n_cpus=n_cpus, tick=TICK, scale=SCALE),
        bindings=automotive_bindings(),
        aperiodic_arrivals={AUTOMOTIVE_APERIODIC: [arrival]},
    )
    monitor = BusMonitor(
        proto.soc.sim, proto.soc.bus, window=(TICK // SCALE) * 10
    )
    monitor.start()
    proto.run(horizon)
    metrics = compute_metrics(proto.finished_jobs, horizon // SCALE)
    response = proto.to_full_scale(
        int(metrics.response_of(AUTOMOTIVE_APERIODIC).mean)
    )
    return monitor, response / CLOCK_HZ


def main() -> None:
    print("OPB bus utilization over time (one glyph = 10 ticks; ' '=idle,"
          " '@'=saturated)\n")
    for n_cpus in (2, 3, 4):
        monitor, response_s = run_config(n_cpus)
        steady = monitor.steady_state_utilization(skip=2)
        print(f"{n_cpus} processors  |{monitor.sparkline(width=64)}|")
        print(f"   steady-state bus utilization: {steady:.1%}   "
              f"aperiodic response: {response_s:.2f} s\n")
    print("More processors push the bus toward saturation; the aperiodic")
    print("task pays for every extra busy master in arbitration waits.")


if __name__ == "__main__":
    main()
