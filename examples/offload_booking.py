#!/usr/bin/env python3
"""IP-core offloading with booked completion interrupts.

The paper motivates the MPIC's *booking* feature with dynamic thread
allocation: "if a processor offloads a function to an intellectual
property core, we may want that the same processor that started the
computation manage the read-back of the results."

This example offloads CRC32 computations from two different
processors to a shared accelerator; each completion interrupt is
booked back to whichever processor submitted, so read-back always
lands on the core holding the caller's context.

Run:  python examples/offload_booking.py
"""

import binascii

from repro.hw.ipcore import IPCore
from repro.hw.soc import SoC, SoCConfig


def main() -> None:
    soc = SoC(SoCConfig(n_cpus=3))
    crc_engine = IPCore(
        soc.sim,
        soc.bus,
        soc.intc,
        name="crc32-accelerator",
        latency=3_000,
        compute=lambda data: binascii.crc32(data) & 0xFFFFFFFF,
    )

    payloads = [
        (0, b"wheel-speed-frame"),
        (2, b"airbag-status-frame"),
        (1, b"engine-map-block"),
    ]
    log = []

    def offload(cpu, data):
        job = yield from crc_engine.submit(cpu, payload=data)
        submitted = soc.sim.now
        # Wait for the booked completion interrupt on this cpu.
        yield soc.cores[cpu].irq_event()
        source, irq_payload = soc.intc.acknowledge(cpu)
        result = yield from crc_engine.read_back(cpu, job)
        soc.intc.complete(cpu)
        log.append(
            dict(cpu=cpu, data=data, crc=result,
                 submitted=submitted, done=soc.sim.now,
                 via=irq_payload["core"])
        )

    def sequencer():
        # The accelerator is single-context: submissions serialise.
        for cpu, data in payloads:
            yield from offload(cpu, data)

    soc.sim.process(sequencer())
    soc.sim.run()

    print(f"{'cpu':>4}  {'payload':<22}{'crc32':<12}{'cycles':>8}")
    for entry in log:
        expected = binascii.crc32(entry["data"]) & 0xFFFFFFFF
        assert entry["crc"] == expected
        print(f"{entry['cpu']:>4}  {entry['data'].decode():<22}"
              f"{entry['crc']:#010x}  {entry['done'] - entry['submitted']:>8}")
    print(f"\nall CRCs verified against binascii.crc32; "
          f"{soc.intc.delivered} booked interrupts delivered to their submitters")


if __name__ == "__main__":
    main()
