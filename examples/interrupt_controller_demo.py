#!/usr/bin/env python3
"""The multiprocessor interrupt controller, feature by feature.

Demonstrates the four MPIC mechanisms of Section 3.2 on the raw
hardware model (no kernel):

1. distribution to free processors with parallel handler execution;
2. fixed-priority-with-timeout re-routing when a processor won't ack;
3. booking a peripheral to a designated processor;
4. broadcast (the global timer pattern) and inter-processor interrupts.

Run:  python examples/interrupt_controller_demo.py
"""

from repro.hw.intc import InterruptMode
from repro.hw.soc import SoC, SoCConfig


def banner(text):
    print(f"\n--- {text} ---")


def main() -> None:
    soc = SoC(SoCConfig(n_cpus=3, mpic_ack_timeout=200))
    sim, intc = soc.sim, soc.intc

    # 1. Distribution: three simultaneous CAN frames, three handlers.
    banner("distribution: 3 frames, 3 parallel handlers")
    can = intc.add_source("can0")
    for _ in range(3):
        intc.raise_interrupt(can, payload="frame")
    served = []
    for cpu in range(3):
        source, payload = intc.acknowledge(cpu)
        served.append((cpu, source.name))
    print(f"handlers running in parallel: {served}")
    print(f"max parallel handlers: {intc.max_parallel_handlers}")
    for cpu in range(3):
        intc.complete(cpu)

    # 2. Timeout re-routing: cpu0 refuses to ack; the offer moves on.
    banner("fixed priority with timeout")
    intc.raise_interrupt(can)
    print(f"offered to cpu0 (pending={intc.pending_for(0)})")
    sim.run(until=sim.now + 250)  # exceed the 200-cycle ack timeout
    print(f"after timeout: cpu0 pending={intc.pending_for(0)}, "
          f"cpu1 pending={intc.pending_for(1)}, timeouts={intc.timeouts}")
    intc.acknowledge(1)
    intc.complete(1)

    # 3. Booking: results of an offloaded computation must return to
    #    the processor that started it.
    banner("booking a peripheral to cpu2")
    ip_core = intc.add_source("fft-ip")
    intc.book(ip_core, 2)
    intc.raise_interrupt(ip_core, payload="results-ready")
    print(f"pending: cpu0={intc.pending_for(0)} cpu1={intc.pending_for(1)} "
          f"cpu2={intc.pending_for(2)}")
    source, payload = intc.acknowledge(2)
    print(f"cpu2 received {source.name!r}: {payload}")
    intc.complete(2)

    # 4. Broadcast + IPI.
    banner("broadcast (global timer) and IPI")
    tick = intc.add_source("global-tick", mode=InterruptMode.BROADCAST)
    intc.raise_interrupt(tick)
    print(f"broadcast pending on every cpu: "
          f"{[intc.pending_for(cpu) for cpu in range(3)]}")
    for cpu in range(3):
        intc.acknowledge(cpu)
        intc.complete(cpu)
    intc.send_ipi(0, 2, payload={"kind": "ipi", "why": "context switch"})
    source, payload = intc.acknowledge(2)
    print(f"cpu2 took an IPI from cpu0: {payload}")
    intc.complete(2)

    print(f"\ntotals: delivered={intc.delivered}, ipis={intc.ipis_sent}, "
          f"timeouts={intc.timeouts}")


if __name__ == "__main__":
    main()
