#!/usr/bin/env python3
"""End-to-end automotive chain: CAN network -> MPIC -> MPDP.

Models the full event path the paper sketches: periodic CAN messages
arbitrate for the wire (fixed-priority, non-preemptive), the frame of
interest completes transmission, the CAN controller raises an
interrupt through the multiprocessor interrupt controller, and the
released aperiodic task is scheduled by MPDP alongside the periodic
load.

Run:  python examples/can_network_study.py
"""

from repro import CLOCK_HZ, cycles_to_seconds
from repro.analysis import assign_promotions, partition
from repro.core.task import AperiodicTask, PeriodicTask, TaskSet
from repro.simulators.theoretical import TheoreticalSimulator
from repro.trace.metrics import compute_metrics
from repro.workloads.canbus import (
    automotive_message_set,
    bus_utilization,
    can_response_time,
    frame_arrival_times,
)

BITRATE = 500_000   # 500 kbit/s body/powertrain bus
TICK = 5_000_000    # 0.1 s scheduling cycle


def main() -> None:
    messages = automotive_message_set(bitrate=BITRATE)

    print(f"== CAN network at {BITRATE // 1000} kbit/s ==")
    print(f"wire utilization: {bus_utilization(messages, BITRATE):.1%}\n")
    print(f"{'message':<16}{'id':>6}{'bits':>6}{'period':>9}{'wcrt':>9}  (ms)")
    for message in messages:
        response = can_response_time(message, messages, BITRATE)
        print(
            f"{message.frame.name:<16}{message.frame.can_id:>#6x}"
            f"{message.frame.max_bits:>6}"
            f"{1e3 * message.period_cycles / CLOCK_HZ:>9.0f}"
            f"{1e3 * response / CLOCK_HZ:>9.2f}"
        )

    # The wheel-speed frame triggers a stability-control computation.
    wheel = messages[1]
    horizon = int(2.0 * CLOCK_HZ)
    arrivals = frame_arrival_times(wheel, BITRATE, horizon)

    taskset = TaskSet(
        [
            PeriodicTask(name="engine-ctl", wcet=2_000_000, period=25_000_000),
            PeriodicTask(name="dash-update", wcet=5_000_000, period=50_000_000),
            PeriodicTask(name="diag-poll", wcet=8_000_000, period=100_000_000),
        ],
        [AperiodicTask(name="stability-calc", wcet=250_000)],
    ).with_deadline_monotonic_priorities()
    taskset = assign_promotions(partition(taskset, 2), 2, tick=TICK)

    sim = TheoreticalSimulator(
        taskset, 2, tick=TICK, overhead=0.02,
        aperiodic_arrivals={"stability-calc": arrivals},
    )
    sim.run(horizon + 50_000_000)
    metrics = compute_metrics(sim.finished_jobs, horizon + 50_000_000)
    stats = metrics.response_of("stability-calc")

    print(f"\n== MPDP serving the {wheel.frame.name} events ==")
    print(f"frames delivered:        {stats.count} "
          f"(every {1e3 * wheel.period_cycles / CLOCK_HZ:.0f} ms)")
    print(f"computation time:        "
          f"{cycles_to_seconds(taskset.by_name('stability-calc').wcet) * 1e3:.1f} ms")
    print(f"mean response:           {cycles_to_seconds(stats.mean) * 1e3:.2f} ms")
    print(f"worst response:          {cycles_to_seconds(stats.maximum) * 1e3:.2f} ms")
    print(f"periodic deadline misses: {metrics.deadline_misses}")


if __name__ == "__main__":
    main()
