"""Trace and metrics export (JSON / CSV).

The experiments print human-readable tables; downstream users often
want machine-readable artefacts instead, so traces and metrics can be
dumped and reloaded losslessly.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional

from repro.trace.metrics import ScheduleMetrics
from repro.trace.recorder import TraceEvent, TraceRecorder


def trace_to_dicts(trace: TraceRecorder) -> List[dict]:
    """Events as plain dictionaries (stable key order)."""
    return [
        {
            "time": e.time,
            "kind": e.kind,
            "job": e.job,
            "cpu": e.cpu,
            "info": e.info,
        }
        for e in trace
    ]


def trace_to_json(trace: TraceRecorder, indent: Optional[int] = None) -> str:
    """Serialise a trace to JSON."""
    return json.dumps(trace_to_dicts(trace), indent=indent)


def trace_from_json(text: str) -> TraceRecorder:
    """Rebuild a trace from :func:`trace_to_json` output."""
    trace = TraceRecorder()
    for row in json.loads(text):
        trace.events.append(
            TraceEvent(
                time=row["time"],
                kind=row["kind"],
                job=row.get("job"),
                cpu=row.get("cpu"),
                info=row.get("info"),
            )
        )
    return trace


def trace_to_csv(trace: TraceRecorder) -> str:
    """Serialise a trace to CSV (header + one row per event)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time", "kind", "job", "cpu", "info"])
    for e in trace:
        writer.writerow([e.time, e.kind, e.job or "", e.cpu if e.cpu is not None else "", e.info or ""])
    return buffer.getvalue()


def trace_from_csv(text: str) -> TraceRecorder:
    """Rebuild a trace from :func:`trace_to_csv` output.

    Empty cells map back to ``None`` (the writer encodes absent
    job/cpu/info as empty strings), so a JSON round-trip and a CSV
    round-trip of the same trace are indistinguishable.
    """
    trace = TraceRecorder()
    reader = csv.DictReader(io.StringIO(text))
    expected = ["time", "kind", "job", "cpu", "info"]
    if reader.fieldnames != expected:
        raise ValueError(
            f"not a trace CSV: header {reader.fieldnames} != {expected}"
        )
    for row in reader:
        trace.events.append(
            TraceEvent(
                time=int(row["time"]),
                kind=row["kind"],
                job=row["job"] or None,
                cpu=int(row["cpu"]) if row["cpu"] else None,
                info=row["info"] or None,
            )
        )
    return trace


def metrics_to_dict(metrics: ScheduleMetrics) -> dict:
    """Metrics as a JSON-ready dictionary."""
    return {
        "horizon": metrics.horizon,
        "finished_jobs": metrics.finished_jobs,
        "deadline_misses": metrics.deadline_misses,
        "preemptions": metrics.preemptions,
        "migrations": metrics.migrations,
        "context_switches": metrics.context_switches,
        "promotions": metrics.promotions,
        "per_cpu_busy": {str(cpu): busy for cpu, busy in metrics.per_cpu_busy.items()},
        "response": {
            task: {
                "count": stats.count,
                "mean": stats.mean,
                "min": stats.minimum,
                "max": stats.maximum,
                "stdev": stats.stdev,
            }
            for task, stats in metrics.response.items()
        },
    }


def metrics_to_json(metrics: ScheduleMetrics, indent: Optional[int] = None) -> str:
    return json.dumps(metrics_to_dict(metrics), indent=indent)
