"""Structured schedule traces.

Every simulator (theoretical, prototype, baselines) emits the same
event vocabulary so metrics and Gantt rendering are shared:

==============  =============================================
kind            meaning
==============  =============================================
``release``     periodic job released / aperiodic job arrived
``dispatch``    job starts or resumes on a cpu
``preempt``     job loses its cpu with work remaining
``finish``      job completes
``promote``     job moves to the upper band
``migrate``     job resumes on a different cpu than before
``tick``        scheduling cycle ran (cpu = scheduler cpu)
``irq``         interrupt delivered to a cpu
``switch``      context switch performed on a cpu
``idle``        cpu went idle
``acquire``     sync-engine lock granted (info ``lock=N``)
``release``     sync-engine lock released (info ``lock=N``)
``barrier``     barrier arrival (info ``barrier=N width=W``)
``access``      shared-memory access (info ``addr=0x.. op=read|write``)
==============  =============================================

The last four form the concurrency vocabulary consumed by the
race/deadlock checker in :mod:`repro.lint.concurrency`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One schedule event."""

    time: int
    kind: str
    job: Optional[str] = None
    cpu: Optional[int] = None
    info: Optional[str] = None

    def __str__(self) -> str:
        cpu = f" cpu{self.cpu}" if self.cpu is not None else ""
        job = f" {self.job}" if self.job else ""
        info = f" ({self.info})" if self.info else ""
        return f"[{self.time:>12}]{cpu} {self.kind}{job}{info}"


KINDS = {
    "release",
    "dispatch",
    "preempt",
    "finish",
    "promote",
    "migrate",
    "tick",
    "irq",
    "switch",
    "idle",
    "acquire",
    "release",
    "barrier",
    "access",
}


class TraceRecorder:
    """Append-only event log with simple queries."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def record(
        self,
        time: int,
        kind: str,
        job: Optional[str] = None,
        cpu: Optional[int] = None,
        info: Optional[str] = None,
    ) -> None:
        if not self.enabled:
            return
        if kind not in KINDS:
            raise ValueError(f"unknown trace kind {kind!r}")
        self.events.append(TraceEvent(time=time, kind=kind, job=job, cpu=cpu, info=info))

    # ------------------------------------------------------------------ queries
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def of_job(self, job_name: str) -> List[TraceEvent]:
        return [e for e in self.events if e.job == job_name]

    def between(self, start: int, end: int) -> List[TraceEvent]:
        return [e for e in self.events if start <= e.time < end]

    def busy_intervals(self, horizon: Optional[int] = None) -> Dict[int, List[tuple]]:
        """Per-cpu list of (start, end, job) execution intervals.

        Reconstructed from dispatch/preempt/finish events; an open
        interval at the end of the trace is closed at ``horizon`` (or
        the last event time).
        """
        last = max((e.time for e in self.events), default=0)
        horizon = horizon if horizon is not None else last
        open_run: Dict[int, tuple] = {}
        intervals: Dict[int, List[tuple]] = {}
        for event in self.events:
            if event.kind == "dispatch" and event.cpu is not None:
                if event.cpu in open_run:
                    start, job = open_run.pop(event.cpu)
                    intervals.setdefault(event.cpu, []).append((start, event.time, job))
                open_run[event.cpu] = (event.time, event.job)
            elif event.kind in ("preempt", "finish", "idle"):
                cpu = event.cpu
                if cpu is not None and cpu in open_run:
                    start, job = open_run.pop(cpu)
                    if event.time > start:
                        intervals.setdefault(cpu, []).append((start, event.time, job))
        for cpu, (start, job) in open_run.items():
            if horizon > start:
                intervals.setdefault(cpu, []).append((start, horizon, job))
        return intervals

    def dump(self, limit: Optional[int] = None) -> str:
        """Readable log (used by examples and debugging)."""
        events = self.events if limit is None else self.events[:limit]
        return "\n".join(str(e) for e in events)
