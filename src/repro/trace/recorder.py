"""Structured schedule traces.

Every simulator (theoretical, prototype, baselines) emits the same
event vocabulary so metrics and Gantt rendering are shared:

==============  =============================================
kind            meaning
==============  =============================================
``release``     periodic job released / aperiodic job arrived
``dispatch``    job starts or resumes on a cpu
``preempt``     job loses its cpu with work remaining
``finish``      job completes
``promote``     job moves to the upper band
``migrate``     job resumes on a different cpu than before
``tick``        scheduling cycle ran (cpu = scheduler cpu)
``irq``         interrupt delivered to a cpu
``switch``      context switch performed on a cpu
``idle``        cpu went idle
``acquire``     sync-engine lock granted (info ``lock=N``)
``unlock``      sync-engine lock released (info ``lock=N``)
``barrier``     barrier arrival (info ``barrier=N width=W``)
``access``      shared-memory access (info ``addr=0x.. op=read|write``)
``tlm_block``   TLM timed block closed (info ``start=.. nominal=.. stretch=..``)
``fault_injected``  injector fired a plan event (info = fault kind)
``fault``       kernel consumed a crash/overrun fault
``deadline_miss``  watchdog: no valid completion by the deadline
``retry``       recovery re-executed a crashed job
``shed``        degraded mode dropped a released low-criticality job
``degrade``     kernel entered degraded mode (info = shed tasks)
==============  =============================================

``release`` is exclusively the scheduler's job-release event;
sync-engine lock releases are ``unlock`` (historically both were
spelled ``release``, which made the two ambiguous in mixed traces).
The last four kinds form the concurrency vocabulary consumed by the
race/deadlock checker in :mod:`repro.lint.concurrency`.

Where events go is pluggable: a :class:`TraceRecorder` writes through
a *sink*.  The default :class:`ListSink` keeps the historical
in-memory list; :mod:`repro.obs.sinks` adds a bounded ring buffer and
a streaming JSONL file sink for full-horizon runs that must not hold
O(events) memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One schedule event."""

    time: int
    kind: str
    job: Optional[str] = None
    cpu: Optional[int] = None
    info: Optional[str] = None

    def __str__(self) -> str:
        cpu = f" cpu{self.cpu}" if self.cpu is not None else ""
        job = f" {self.job}" if self.job else ""
        info = f" ({self.info})" if self.info else ""
        return f"[{self.time:>12}]{cpu} {self.kind}{job}{info}"


KINDS = {
    "release",
    "dispatch",
    "preempt",
    "finish",
    "promote",
    "migrate",
    "tick",
    "irq",
    "switch",
    "idle",
    "acquire",
    "unlock",
    "barrier",
    "access",
    # TLM tier (repro.simulators.tlm): one event per closed timed
    # block, carrying its nominal progress and stretch factor.
    "tlm_block",
    # Fault tier (repro.faults, docs/FAULTS.md): injection instants,
    # kernel-consumed faults and every recovery action.
    "fault_injected",
    "fault",
    "deadline_miss",
    "retry",
    "shed",
    "degrade",
}


class TraceSink:
    """Destination for recorded events.

    Subclasses override :meth:`emit`; sinks that retain events for
    querying also override :meth:`retained`.  Streaming sinks retain
    nothing and report their write count through ``emitted``.
    """

    def __init__(self):
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def retained(self) -> List[TraceEvent]:
        """Events still available for queries (may be a subset)."""
        return []

    def close(self) -> None:
        """Release any underlying resource (no-op for memory sinks)."""

    def __len__(self) -> int:
        return self.emitted


class ListSink(TraceSink):
    """The historical unbounded in-memory event list."""

    def __init__(self):
        super().__init__()
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.emitted += 1
        self.events.append(event)

    def retained(self) -> List[TraceEvent]:
        return self.events

    def __len__(self) -> int:
        # Count the list, not ``emitted``: deserialisers append to
        # ``recorder.events`` directly and both views must agree.
        return len(self.events)


class TraceRecorder:
    """Append-only event log writing through a pluggable sink."""

    def __init__(self, enabled: bool = True, sink: Optional[TraceSink] = None):
        self.enabled = enabled
        self.sink = sink if sink is not None else ListSink()

    @property
    def events(self) -> List[TraceEvent]:
        """Queryable events (the sink's retained view).

        For the default :class:`ListSink` this is the backing list
        itself, so existing ``trace.events.append(...)`` callers keep
        working; bounded/streaming sinks return what they retain.
        """
        return self.sink.retained()

    def record(
        self,
        time: int,
        kind: str,
        job: Optional[str] = None,
        cpu: Optional[int] = None,
        info: Optional[str] = None,
    ) -> None:
        if not self.enabled:
            return
        if kind not in KINDS:
            raise ValueError(f"unknown trace kind {kind!r}")
        self.sink.emit(TraceEvent(time=time, kind=kind, job=job, cpu=cpu, info=info))

    def close(self) -> None:
        """Flush/close the sink (needed for file-backed sinks)."""
        self.sink.close()

    # ------------------------------------------------------------------ queries
    def __len__(self) -> int:
        return len(self.sink)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def of_job(self, job_name: str) -> List[TraceEvent]:
        return [e for e in self.events if e.job == job_name]

    def between(self, start: int, end: int) -> List[TraceEvent]:
        return [e for e in self.events if start <= e.time < end]

    def busy_intervals(self, horizon: Optional[int] = None) -> Dict[int, List[tuple]]:
        """Per-cpu list of (start, end, job) execution intervals.

        Reconstructed from dispatch/preempt/finish events; an open
        interval at the end of the trace is closed at ``horizon`` (or
        the last event time).
        """
        events = self.events
        last = max((e.time for e in events), default=0)
        horizon = horizon if horizon is not None else last
        open_run: Dict[int, tuple] = {}
        intervals: Dict[int, List[tuple]] = {}
        for event in events:
            if event.kind == "dispatch" and event.cpu is not None:
                if event.cpu in open_run:
                    start, job = open_run.pop(event.cpu)
                    intervals.setdefault(event.cpu, []).append((start, event.time, job))
                open_run[event.cpu] = (event.time, event.job)
            elif event.kind in ("preempt", "finish", "idle"):
                cpu = event.cpu
                if cpu is not None and cpu in open_run:
                    start, job = open_run.pop(cpu)
                    if event.time > start:
                        intervals.setdefault(cpu, []).append((start, event.time, job))
        for cpu, (start, job) in open_run.items():
            if horizon > start:
                intervals.setdefault(cpu, []).append((start, horizon, job))
        return intervals

    def dump(self, limit: Optional[int] = None) -> str:
        """Readable log (used by examples and debugging)."""
        events = self.events if limit is None else self.events[:limit]
        return "\n".join(str(e) for e in events)
