"""Metrics over finished jobs and traces.

The paper's headline metric is the *mean response time of the
aperiodic task*; supporting metrics (deadline misses, preemptions,
migrations, context switches, per-cpu utilization) explain the
real-vs-theoretical gap.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.task import Job
from repro.trace.recorder import TraceRecorder


@dataclass
class ResponseStats:
    """Response-time summary for one task."""

    task: str
    count: int
    mean: float
    minimum: int
    maximum: int
    stdev: float

    @classmethod
    def from_jobs(cls, task: str, jobs: Sequence[Job]) -> "ResponseStats":
        values = [j.response_time for j in jobs if j.response_time is not None]
        if not values:
            raise ValueError(f"no finished jobs for task {task}")
        mean = statistics.fmean(values)
        # Float population variance: statistics.pstdev promotes int data
        # to exact Fractions, which dominates the metrics fold on large
        # runs; response times are cycle counts, floats lose nothing
        # that the stdev display precision keeps.
        variance = statistics.fmean((v - mean) ** 2 for v in values)
        return cls(
            task=task,
            count=len(values),
            mean=mean,
            minimum=min(values),
            maximum=max(values),
            stdev=math.sqrt(variance) if len(values) > 1 else 0.0,
        )


@dataclass
class ScheduleMetrics:
    """Aggregate outcome of one simulation run."""

    horizon: int
    finished_jobs: int
    deadline_misses: int
    preemptions: int
    migrations: int
    context_switches: int
    promotions: int
    response: Dict[str, ResponseStats] = field(default_factory=dict)
    per_cpu_busy: Dict[int, int] = field(default_factory=dict)

    def response_of(self, task: str) -> ResponseStats:
        try:
            return self.response[task]
        except KeyError:
            raise KeyError(
                f"no response stats for {task!r}; have {sorted(self.response)}"
            ) from None

    def cpu_utilization(self, cpu: int) -> float:
        if self.horizon <= 0:
            return 0.0
        return self.per_cpu_busy.get(cpu, 0) / self.horizon


def compute_metrics(
    finished: Iterable[Job],
    horizon: int,
    trace: Optional[TraceRecorder] = None,
    context_switches: int = 0,
) -> ScheduleMetrics:
    """Fold finished jobs (and optionally a trace) into metrics."""
    jobs = list(finished)
    by_task: Dict[str, List[Job]] = {}
    preemptions = 0
    migrations = 0
    promotions = 0
    misses = 0
    for job in jobs:
        by_task.setdefault(job.task.name, []).append(job)
        preemptions += job.preemptions
        migrations += job.migrations
        if job.is_periodic and job.promoted:
            promotions += 1
        if job.missed_deadline:
            misses += 1

    response = {
        task: ResponseStats.from_jobs(task, task_jobs)
        for task, task_jobs in by_task.items()
    }

    per_cpu_busy: Dict[int, int] = {}
    if trace is not None:
        for cpu, intervals in trace.busy_intervals(horizon).items():
            per_cpu_busy[cpu] = sum(end - start for start, end, _job in intervals)
        if context_switches == 0:
            context_switches = len(trace.of_kind("switch"))

    return ScheduleMetrics(
        horizon=horizon,
        finished_jobs=len(jobs),
        deadline_misses=misses,
        preemptions=preemptions,
        migrations=migrations,
        context_switches=context_switches,
        promotions=promotions,
        response=response,
        per_cpu_busy=per_cpu_busy,
    )
