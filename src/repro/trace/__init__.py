"""Trace recording, metrics extraction and ASCII Gantt rendering."""

from repro.trace.recorder import ListSink, TraceEvent, TraceRecorder, TraceSink
from repro.trace.metrics import ResponseStats, ScheduleMetrics, compute_metrics
from repro.trace.export import (
    metrics_to_json,
    trace_from_csv,
    trace_from_json,
    trace_to_csv,
    trace_to_json,
)
from repro.trace.gantt import render_gantt

__all__ = [
    "TraceRecorder",
    "TraceEvent",
    "TraceSink",
    "ListSink",
    "ScheduleMetrics",
    "ResponseStats",
    "compute_metrics",
    "render_gantt",
    "trace_to_json",
    "trace_from_json",
    "trace_to_csv",
    "trace_from_csv",
    "metrics_to_json",
]
