"""ASCII Gantt rendering of schedule traces.

Renders the kind of schedule the paper draws in Figure 3: one row per
processor, time flowing right, each slot labelled with the job that
occupied it.  Works from the ``busy_intervals`` reconstruction of a
:class:`~repro.trace.recorder.TraceRecorder`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.trace.recorder import TraceRecorder


def _short_label(job_name: Optional[str]) -> str:
    if not job_name:
        return "."
    base = job_name.split("#")[0]
    return base[:6]


def render_gantt(
    trace: TraceRecorder,
    horizon: int,
    slot: int,
    n_cpus: int,
    start: int = 0,
    ruler: bool = True,
) -> str:
    """Render the schedule between ``start`` and ``horizon``.

    ``slot`` is the number of cycles per character column.  Each column
    shows the job that held the cpu for the majority of that slot
    (first-started wins ties), '.' for idle.
    """
    if slot <= 0:
        raise ValueError("slot must be positive")
    if horizon <= start:
        raise ValueError("horizon must exceed start")
    intervals = trace.busy_intervals(horizon)
    n_cols = (horizon - start + slot - 1) // slot

    lines: List[str] = []
    label_width = 8
    for cpu in range(n_cpus):
        cells: List[str] = []
        cpu_intervals = intervals.get(cpu, [])
        for col in range(n_cols):
            col_start = start + col * slot
            col_end = min(horizon, col_start + slot)
            best_job, best_overlap = None, 0
            for ivl_start, ivl_end, job in cpu_intervals:
                overlap = min(ivl_end, col_end) - max(ivl_start, col_start)
                if overlap > best_overlap:
                    best_job, best_overlap = job, overlap
            cells.append(_short_label(best_job)[0].upper() if best_job else ".")
        lines.append(f"cpu{cpu:<2}".ljust(label_width) + "".join(cells))

    if ruler:
        marks = [" "] * n_cols
        step = max(1, n_cols // 10)
        for col in range(0, n_cols, step):
            marks[col] = "|"
        lines.append(" " * label_width + "".join(marks))
    return "\n".join(lines)


def render_legend(trace: TraceRecorder) -> str:
    """Map single-letter Gantt labels back to job names."""
    jobs = sorted(
        {e.job.split("#")[0] for e in trace.of_kind("dispatch") if e.job}
    )
    return "\n".join(f"  {name[:1].upper()} = {name}" for name in jobs)


def render_interval_table(
    trace: TraceRecorder, horizon: int, n_cpus: int
) -> str:
    """Explicit (start, end, job) rows per cpu -- the Figure 3 tables."""
    intervals = trace.busy_intervals(horizon)
    lines = []
    for cpu in range(n_cpus):
        lines.append(f"cpu{cpu}:")
        for start, end, job in intervals.get(cpu, []):
            lines.append(f"  [{start:>10} .. {end:>10})  {job}")
    return "\n".join(lines)
