"""Windowed performance counters ("pattern stabilization" evidence).

The paper explains the 4-processor behaviour with "the bus and memory
access patterns have stabilized".  This monitor samples the OPB
counters (and optionally per-core busy state) on a fixed window so a
run produces a *time series* of bus utilization, transaction rate and
grant-wait, from which stabilization -- the flattening of the series
under added load -- can actually be observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hw.bus import OPBBus
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class BusSample:
    """Counters over one sampling window."""

    start: int
    end: int
    busy_cycles: int
    transactions: int
    wait_cycles: int

    @property
    def utilization(self) -> float:
        """Busy fraction, clamped to 1.0 (a transaction straddling the
        window boundary is charged to the window it completes in)."""
        width = self.end - self.start
        return min(1.0, self.busy_cycles / width) if width > 0 else 0.0

    @property
    def mean_wait(self) -> float:
        return self.wait_cycles / self.transactions if self.transactions else 0.0


class BusMonitor:
    """Samples an OPB bus every ``window`` cycles.

    Start it before running the simulation; the samples accumulate in
    :attr:`samples`.  Derivative counters are window-differenced from
    the bus's cumulative statistics.
    """

    def __init__(self, sim: Simulator, bus: OPBBus, window: int):
        if window <= 0:
            raise ValueError("window must be positive")
        self.sim = sim
        self.bus = bus
        self.window = window
        self.samples: List[BusSample] = []
        self._last_busy = 0
        self._last_txn = 0
        self._last_wait = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            raise RuntimeError("monitor already running")
        self._running = True
        self._snapshot_baseline()
        self.sim.schedule(self.window, self._sample)

    def stop(self) -> None:
        self._running = False

    def _snapshot_baseline(self) -> None:
        self._last_busy = self.bus.stats.busy_cycles
        self._last_txn = self.bus.stats.transactions
        self._last_wait = sum(self.bus.stats.wait_cycles.values())

    def _sample(self) -> None:
        if not self._running:
            return
        busy = self.bus.stats.busy_cycles
        txn = self.bus.stats.transactions
        wait = sum(self.bus.stats.wait_cycles.values())
        self.samples.append(
            BusSample(
                start=self.sim.now - self.window,
                end=self.sim.now,
                busy_cycles=busy - self._last_busy,
                transactions=txn - self._last_txn,
                wait_cycles=wait - self._last_wait,
            )
        )
        self._last_busy, self._last_txn, self._last_wait = busy, txn, wait
        self.sim.schedule(self.window, self._sample)

    def fold_into(self, metrics, prefix: str = "bus") -> None:
        """Fold the sampled series into a metrics registry (peak and
        steady-state gauges plus a per-window utilization histogram)."""
        from repro.obs.report import fold_bus_monitor

        fold_bus_monitor(metrics, self, prefix=prefix)

    # ------------------------------------------------------------------ views
    def utilization_series(self) -> List[float]:
        return [s.utilization for s in self.samples]

    def peak_utilization(self) -> float:
        return max((s.utilization for s in self.samples), default=0.0)

    def steady_state_utilization(self, skip: int = 1) -> float:
        """Mean utilization after discarding ``skip`` warm-up windows."""
        tail = self.samples[skip:]
        if not tail:
            return 0.0
        return sum(s.utilization for s in tail) / len(tail)

    def sparkline(self, width: int = 60) -> str:
        """Tiny ASCII chart of the utilization series."""
        series = self.utilization_series()
        if not series:
            return "(no samples)"
        if len(series) > width:
            stride = len(series) / width
            series = [series[int(i * stride)] for i in range(width)]
        glyphs = " .:-=+*#%@"
        return "".join(
            glyphs[min(len(glyphs) - 1, int(value * (len(glyphs) - 1) + 0.5))]
            for value in series
        )
