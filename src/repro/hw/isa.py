"""A MicroBlaze-subset instruction set and cycle-counting executor.

The scheduling experiments use profile-driven execution, but the
substrate itself is instruction-accurate for small programs: this
module defines a 32-register RISC subset close to the MicroBlaze ISA
(3-operand ALU ops, immediate forms, word loads/stores, compare and
branch, unconditional branch, halt) and an executor that runs a
program on a :class:`~repro.hw.microblaze.MicroBlaze`, paying

- 1 cycle per issued instruction (the MicroBlaze 3-stage pipeline
  approximates CPI 1 for ALU work),
- a taken-branch penalty of 2 extra cycles (pipeline flush),
- instruction-cache lookup per fetch: hits are covered by the base
  cycle, misses refill a line from DDR over the arbitrated bus,
- data access time by region: local BRAM 1 cycle, DDR over the bus.

Used by the substrate unit tests, the MPIC/sync-engine integration
tests and the bus-contention calibration microbenchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hw.memory import DDRMemory, LocalBRAM, MemoryError_, WordStorage
from repro.hw.microblaze import MicroBlaze

#: Mask for 32-bit wrap-around arithmetic.
MASK32 = 0xFFFFFFFF


def _signed(value: int) -> int:
    """Interpret a 32-bit pattern as signed."""
    value &= MASK32
    return value - (1 << 32) if value & 0x8000_0000 else value


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    op: str
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0
    label: Optional[str] = None  # symbolic target before linking

    def __str__(self) -> str:
        return f"{self.op} rd=r{self.rd} ra=r{self.ra} rb=r{self.rb} imm={self.imm}"


#: opcode -> (operand signature) used by the assembler and executor.
#: signatures: R=register, I=immediate, L=label.
OPCODES: Dict[str, str] = {
    "add": "RRR",
    "sub": "RRR",   # rd = ra - rb
    "rsub": "RRR",  # rd = rb - ra (MicroBlaze style)
    "mul": "RRR",
    "and": "RRR",
    "or": "RRR",
    "xor": "RRR",
    "sll": "RRR",
    "srl": "RRR",
    "sra": "RRR",
    "cmp": "RRR",   # rd = sign(rb - ra) style signed compare
    "addi": "RRI",
    "subi": "RRI",
    "muli": "RRI",
    "andi": "RRI",
    "ori": "RRI",
    "xori": "RRI",
    "slli": "RRI",
    "srli": "RRI",
    "srai": "RRI",
    "lw": "RRR",    # rd = mem[ra + rb]
    "lwi": "RRI",   # rd = mem[ra + imm]
    "sw": "RRR",    # mem[ra + rb] = rd
    "swi": "RRI",   # mem[ra + imm] = rd
    "beqz": "RL",   # branch if rd == 0
    "bnez": "RL",
    "bltz": "RL",
    "blez": "RL",
    "bgtz": "RL",
    "bgez": "RL",
    "br": "L",
    "brl": "RL",   # branch-and-link: rd = return index, jump to label
    "jr": "R",     # jump to the instruction index held in rd
    "nop": "",
    "halt": "",
}

#: Extra cycles paid when a branch is taken (pipeline refill).
BRANCH_PENALTY = 2

#: ALU semantics, one callable per op (shared by the register and
#: immediate forms; ``<op>i`` uses the same entry as ``<op>``).
_ALU_FUNCS = {
    "add": lambda a, b: (a + b) & MASK32,
    "sub": lambda a, b: (a - b) & MASK32,
    "rsub": lambda a, b: (b - a) & MASK32,
    "mul": lambda a, b: (a * b) & MASK32,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: (a << (b & 31)) & MASK32,
    "srl": lambda a, b: (a & MASK32) >> (b & 31),
    "sra": lambda a, b: (_signed(a) >> (b & 31)) & MASK32,
    "cmp": lambda a, b: (_signed(b) - _signed(a)) & MASK32,
}

#: Branch-taken predicates over the signed register value.
_BRANCH_TESTS = {
    "beqz": lambda v: v == 0,
    "bnez": lambda v: v != 0,
    "bltz": lambda v: v < 0,
    "blez": lambda v: v <= 0,
    "bgtz": lambda v: v > 0,
    "bgez": lambda v: v >= 0,
}


class ISAError(Exception):
    """Decode or execution fault."""


@dataclass
class Program:
    """An assembled program: instructions plus initial data image.

    ``base`` is the load address of the text section (instruction i
    lives at ``base + 4*i`` for cache purposes).  ``data`` maps
    absolute word addresses to initial values.  ``lines`` (parallel to
    ``instructions``, when the assembler provides it) maps each
    instruction back to its source line for diagnostics.
    """

    instructions: List[Instruction]
    base: int = 0x4000_0000
    data: Dict[int, int] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    lines: Optional[List[int]] = None

    def __len__(self) -> int:
        return len(self.instructions)

    def address_of(self, index: int) -> int:
        return self.base + 4 * index


class CPUState:
    """Architectural state of one executing program."""

    def __init__(self):
        self.regs = [0] * 32
        self.pc = 0  # instruction index, not byte address
        self.halted = False
        self.instructions_retired = 0

    def read(self, reg: int) -> int:
        if not 0 <= reg < 32:
            raise ISAError(f"register r{reg} out of range")
        return 0 if reg == 0 else self.regs[reg]

    def write(self, reg: int, value: int) -> None:
        if not 0 <= reg < 32:
            raise ISAError(f"register r{reg} out of range")
        if reg != 0:  # r0 is hardwired to zero
            self.regs[reg] = value & MASK32


class ISAExecutor:
    """Runs a :class:`Program` on a core, cycle-accounted.

    Parameters
    ----------
    core:
        The MicroBlaze whose cache/bus/local memory are used.
    program:
        Assembled program.  Data words are loaded into DDR (or the
        region owning their address) before execution.
    trace:
        Optional :class:`~repro.trace.recorder.TraceRecorder`; when
        given, every *shared* (non-local) data access is recorded as an
        ``access`` event so the race checker in
        :mod:`repro.lint.concurrency` can analyse the run.
    count_pcs:
        When True, ``pc_counts`` maps each executed instruction index
        to its execution count, so static loop bounds
        (:mod:`repro.lint.absint`) can be cross-checked against actual
        iteration counts.  Off by default to keep the hot loop lean.
    """

    def __init__(
        self, core: MicroBlaze, program: Program, trace=None, count_pcs: bool = False
    ):
        self.core = core
        self.program = program
        self.trace = trace
        self.state = CPUState()
        self.cycles = 0
        self.icache_misses = 0
        self.data_accesses = 0
        self.pc_counts: Optional[Dict[int, int]] = {} if count_pcs else None
        for addr, value in program.data.items():
            self._region_for(addr).write_word(addr, value)

    # -------------------------------------------------------------- memory map
    def _region_for(self, addr: int) -> WordStorage:
        if self.core.local_mem.contains(addr):
            return self.core.local_mem
        if self.core.ddr.contains(addr):
            return self.core.ddr
        raise ISAError(f"address {addr:#x} maps to no memory region")

    def _data_access(self, addr: int, value: Optional[int] = None):
        """Generator: load (value None) or store through the right port."""
        region = self._region_for(addr)
        self.data_accesses += 1
        if isinstance(region, LocalBRAM):
            yield self.core.sim.timeout(region.access_latency(1))
            self.cycles += region.access_latency(1)
            if value is None:
                return region.read_word(addr)
            region.write_word(addr, value)
            return None
        # Shared DDR: arbitrated bus transaction.
        start = self.core.sim.now
        yield from self.core.bus.transfer(self.core.cpu_id, region, words=1)
        self.cycles += self.core.sim.now - start
        if self.trace is not None:
            self.trace.record(
                self.core.sim.now,
                "access",
                cpu=self.core.cpu_id,
                info=f"addr={addr:#x} op={'read' if value is None else 'write'}",
            )
        if value is None:
            return region.read_word(addr)
        region.write_word(addr, value)
        return None

    def _fetch(self, index: int):
        """Generator: instruction fetch with I-cache."""
        addr = self.program.address_of(index)
        if self.core.icache.lookup(addr):
            return
        self.icache_misses += 1
        start = self.core.sim.now
        yield from self.core.bus.transfer(
            self.core.cpu_id, self.core.ddr, words=self.core.icache.line_words
        )
        self.core.icache.fill_line(addr)
        self.cycles += self.core.sim.now - start

    # ---------------------------------------------------------------- execution
    # Opcode handlers.  Each returns the branch target (an instruction
    # index) for a *taken* control transfer, or None to fall through to
    # pc+1.  Memory handlers are generators and are flagged as such in
    # the dispatch table so the main loop only pays generator setup for
    # ops that actually touch the memory system.
    def _exec_nop(self, state: CPUState, instr: Instruction, payload) -> Optional[int]:
        return None

    def _exec_halt(self, state: CPUState, instr: Instruction, payload) -> Optional[int]:
        state.halted = True
        return None

    def _exec_alu(self, state: CPUState, instr: Instruction, func) -> Optional[int]:
        state.write(instr.rd, func(state.read(instr.ra), state.read(instr.rb)))
        return None

    def _exec_alui(self, state: CPUState, instr: Instruction, func) -> Optional[int]:
        state.write(instr.rd, func(state.read(instr.ra), instr.imm & MASK32))
        return None

    def _exec_load(self, state: CPUState, instr: Instruction, use_imm):
        offset = instr.imm if use_imm else state.read(instr.rb)
        addr = (state.read(instr.ra) + offset) & MASK32
        value = yield from self._data_access(addr)
        state.write(instr.rd, value)
        return None

    def _exec_store(self, state: CPUState, instr: Instruction, use_imm):
        offset = instr.imm if use_imm else state.read(instr.rb)
        addr = (state.read(instr.ra) + offset) & MASK32
        yield from self._data_access(addr, value=state.read(instr.rd))
        return None

    def _exec_branch(self, state: CPUState, instr: Instruction, test) -> Optional[int]:
        return instr.imm if test(_signed(state.read(instr.rd))) else None

    def _exec_br(self, state: CPUState, instr: Instruction, payload) -> Optional[int]:
        return instr.imm

    def _exec_brl(self, state: CPUState, instr: Instruction, payload) -> Optional[int]:
        state.write(instr.rd, state.pc + 1)
        return instr.imm

    def _exec_jr(self, state: CPUState, instr: Instruction, payload) -> Optional[int]:
        return state.read(instr.rd)

    #: op -> (handler, is_generator, payload); precomputed once at
    #: import (see _build_dispatch below) instead of a per-instruction
    #: string elif chain.
    _DISPATCH: Dict[str, Tuple] = {}

    def run(self, max_instructions: int = 1_000_000):
        """Generator: execute until halt or the instruction budget ends.

        Returns the CPUState (also available as ``self.state``).
        """
        state = self.state
        program = self.program
        instructions = program.instructions
        dispatch = self._DISPATCH
        timeout = self.core.sim.timeout
        counts = self.pc_counts
        while not state.halted:
            if state.instructions_retired >= max_instructions:
                raise ISAError(
                    f"instruction budget {max_instructions} exhausted at pc={state.pc}"
                )
            if not 0 <= state.pc < len(instructions):
                raise ISAError(f"pc {state.pc} outside program")
            if counts is not None:
                counts[state.pc] = counts.get(state.pc, 0) + 1
            yield from self._fetch(state.pc)
            instr = instructions[state.pc]
            yield timeout(1)
            self.cycles += 1
            state.instructions_retired += 1

            entry = dispatch.get(instr.op)
            if entry is None:  # pragma: no cover - decoder rejects unknown ops
                raise ISAError(f"unknown opcode {instr.op}")
            handler, is_generator, payload = entry
            if is_generator:
                target = yield from handler(self, state, instr, payload)
            else:
                target = handler(self, state, instr, payload)

            if target is None:
                state.pc += 1
            else:  # taken control transfer: pipeline refill
                yield timeout(BRANCH_PENALTY)
                self.cycles += BRANCH_PENALTY
                state.pc = target
        return state

    @staticmethod
    def _alu(op: str, a: int, b: int) -> int:
        func = _ALU_FUNCS.get(op)
        if func is None:
            raise ISAError(f"unknown ALU op {op}")
        return func(a, b)


def _build_dispatch() -> Dict[str, Tuple]:
    """Precompute the opcode method table from the semantic tables."""
    table: Dict[str, Tuple] = {
        "nop": (ISAExecutor._exec_nop, False, None),
        "halt": (ISAExecutor._exec_halt, False, None),
        "lw": (ISAExecutor._exec_load, True, False),
        "lwi": (ISAExecutor._exec_load, True, True),
        "sw": (ISAExecutor._exec_store, True, False),
        "swi": (ISAExecutor._exec_store, True, True),
        "br": (ISAExecutor._exec_br, False, None),
        "brl": (ISAExecutor._exec_brl, False, None),
        "jr": (ISAExecutor._exec_jr, False, None),
    }
    for op, func in _ALU_FUNCS.items():
        if op in OPCODES:
            table[op] = (ISAExecutor._exec_alu, False, func)
        if op + "i" in OPCODES:
            table[op + "i"] = (ISAExecutor._exec_alui, False, func)
    for op, test in _BRANCH_TESTS.items():
        table[op] = (ISAExecutor._exec_branch, False, test)
    return table


ISAExecutor._DISPATCH = _build_dispatch()
