"""A MicroBlaze-subset instruction set and cycle-counting executor.

The scheduling experiments use profile-driven execution, but the
substrate itself is instruction-accurate for small programs: this
module defines a 32-register RISC subset close to the MicroBlaze ISA
(3-operand ALU ops, immediate forms, word loads/stores, compare and
branch, unconditional branch, halt) and an executor that runs a
program on a :class:`~repro.hw.microblaze.MicroBlaze`, paying

- 1 cycle per issued instruction (the MicroBlaze 3-stage pipeline
  approximates CPI 1 for ALU work),
- a taken-branch penalty of 2 extra cycles (pipeline flush),
- instruction-cache lookup per fetch: hits are covered by the base
  cycle, misses refill a line from DDR over the arbitrated bus,
- data access time by region: local BRAM 1 cycle, DDR over the bus.

Two interpreters produce that timing model:

- ``"block"`` (the default): a predecoded basic-block interpreter.
  At load the program is decoded once into flat per-pc tuples (opcode
  kind, bound ALU/branch callable, register indices, cache line
  index/tag), so the hot loop chases no ``Instruction`` attributes and
  hits no dispatch dict.  Execution then *temporally decouples* from
  the event engine: core-private work (ALU ops, branches, not-taken
  fall-through) runs in a tight Python loop that only accumulates a
  cycle count, and a single coalesced ``advance(n)`` sleep is emitted
  at the next *interaction point* -- a data access, an I-cache miss
  refill, halt, or an execution fault.  Memory traffic, bus
  arbitration and trace events still happen at their exact
  per-instruction instants, so the observable schedule is bit-for-bit
  identical to the reference.  Transient faults
  (``WordStorage.flip_bit`` / ``MicroBlaze.register_upset``) landing
  inside a coalesced sleep invalidate the in-flight block: the
  executor rolls back to the block's entry checkpoint and replays it
  per-instruction across the fault instant.
- ``"reference"``: the original one-event-per-instruction loop,
  retained as the oracle the perf tier's ISA determinism sentinel
  replays every asmlib kernel against.  ``count_pcs=True`` forces this
  mode (per-pc execution counts are inherently per-instruction).

Used by the substrate unit tests, the MPIC/sync-engine integration
tests and the bus-contention calibration microbenchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hw.memory import DDRMemory, LocalBRAM, MemoryError_, WordStorage
from repro.hw.microblaze import MicroBlaze
from repro.sim.events import PENDING

#: Mask for 32-bit wrap-around arithmetic.
MASK32 = 0xFFFFFFFF

#: Interpreter implementations (see the module docstring).
ISA_MODES = ("block", "reference")


def _signed(value: int) -> int:
    """Interpret a 32-bit pattern as signed."""
    value &= MASK32
    return value - (1 << 32) if value & 0x8000_0000 else value


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    op: str
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0
    label: Optional[str] = None  # symbolic target before linking

    def __str__(self) -> str:
        return f"{self.op} rd=r{self.rd} ra=r{self.ra} rb=r{self.rb} imm={self.imm}"


#: opcode -> (operand signature) used by the assembler and executor.
#: signatures: R=register, I=immediate, L=label.
OPCODES: Dict[str, str] = {
    "add": "RRR",
    "sub": "RRR",   # rd = ra - rb
    "rsub": "RRR",  # rd = rb - ra (MicroBlaze style)
    "mul": "RRR",
    "and": "RRR",
    "or": "RRR",
    "xor": "RRR",
    "sll": "RRR",
    "srl": "RRR",
    "sra": "RRR",
    "cmp": "RRR",   # rd = sign(rb - ra) style signed compare
    "addi": "RRI",
    "subi": "RRI",
    "muli": "RRI",
    "andi": "RRI",
    "ori": "RRI",
    "xori": "RRI",
    "slli": "RRI",
    "srli": "RRI",
    "srai": "RRI",
    "lw": "RRR",    # rd = mem[ra + rb]
    "lwi": "RRI",   # rd = mem[ra + imm]
    "sw": "RRR",    # mem[ra + rb] = rd
    "swi": "RRI",   # mem[ra + imm] = rd
    "beqz": "RL",   # branch if rd == 0
    "bnez": "RL",
    "bltz": "RL",
    "blez": "RL",
    "bgtz": "RL",
    "bgez": "RL",
    "br": "L",
    "brl": "RL",   # branch-and-link: rd = return index, jump to label
    "jr": "R",     # jump to the instruction index held in rd
    "nop": "",
    "halt": "",
}

#: Extra cycles paid when a branch is taken (pipeline refill).
BRANCH_PENALTY = 2

#: ALU semantics, one callable per op (shared by the register and
#: immediate forms; ``<op>i`` uses the same entry as ``<op>``).
_ALU_FUNCS = {
    "add": lambda a, b: (a + b) & MASK32,
    "sub": lambda a, b: (a - b) & MASK32,
    "rsub": lambda a, b: (b - a) & MASK32,
    "mul": lambda a, b: (a * b) & MASK32,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: (a << (b & 31)) & MASK32,
    "srl": lambda a, b: (a & MASK32) >> (b & 31),
    "sra": lambda a, b: (_signed(a) >> (b & 31)) & MASK32,
    "cmp": lambda a, b: (_signed(b) - _signed(a)) & MASK32,
}

#: Branch-taken predicates over the signed register value.
_BRANCH_TESTS = {
    "beqz": lambda v: v == 0,
    "bnez": lambda v: v != 0,
    "bltz": lambda v: v < 0,
    "blez": lambda v: v <= 0,
    "bgtz": lambda v: v > 0,
    "bgez": lambda v: v >= 0,
}


class ISAError(Exception):
    """Decode or execution fault."""


@dataclass
class Program:
    """An assembled program: instructions plus initial data image.

    ``base`` is the load address of the text section (instruction i
    lives at ``base + 4*i`` for cache purposes).  ``data`` maps
    absolute word addresses to initial values.  ``lines`` (parallel to
    ``instructions``, when the assembler provides it) maps each
    instruction back to its source line for diagnostics.
    """

    instructions: List[Instruction]
    base: int = 0x4000_0000
    data: Dict[int, int] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    lines: Optional[List[int]] = None

    def __len__(self) -> int:
        return len(self.instructions)

    def address_of(self, index: int) -> int:
        return self.base + 4 * index


class CPUState:
    """Architectural state of one executing program."""

    def __init__(self):
        self.regs = [0] * 32
        self.pc = 0  # instruction index, not byte address
        self.halted = False
        self.instructions_retired = 0

    def read(self, reg: int) -> int:
        if not 0 <= reg < 32:
            raise ISAError(f"register r{reg} out of range")
        return 0 if reg == 0 else self.regs[reg]

    def write(self, reg: int, value: int) -> None:
        if not 0 <= reg < 32:
            raise ISAError(f"register r{reg} out of range")
        if reg != 0:  # r0 is hardwired to zero
            self.regs[reg] = value & MASK32


# ----------------------------------------------------------------- predecode
# Opcode kinds for the decoded form.  The numeric layout is load-bearing
# for the block interpreter's dispatch: memory ops are >= _K_LW, loads
# are <= _K_LWI among them, and immediate forms are odd.
_K_ALU = 0
_K_ALUI = 1
_K_CBR = 2
_K_BR = 3
_K_BRL = 4
_K_JR = 5
_K_NOP = 6
_K_HALT = 7
_K_LW = 8
_K_LWI = 9
_K_SW = 10
_K_SWI = 11

#: Decoded instruction tuple field layout:
#: ``(kind, payload, rd, ra, b, line_index, line_tag, fetch_addr)``
#: where ``payload`` is the bound ALU callable / branch predicate,
#: ``b`` is the rb index, masked immediate, raw memory offset or
#: branch-target index depending on ``kind``, and the last three
#: fields precompute the I-cache geometry for the fetch check.


def _decode_program(program: Program, icache) -> list:
    """Decode ``program`` into flat per-pc tuples for the block loop.

    All opcode and register validation happens here, once, so neither
    interpreter pays a per-instruction ``dispatch.get`` / range check;
    unknown opcodes and out-of-range register fields raise
    :class:`ISAError` naming the offending pc.  The decoded form
    depends on the I-cache geometry (line index/tag precomputation),
    so results are cached on the program keyed by that geometry.
    """
    key = (icache.line_bytes, icache.n_lines)
    cache = program.__dict__.setdefault("_decoded_cache", {})
    decoded = cache.get(key)
    if decoded is not None:
        return decoded
    line_bytes = icache.line_bytes
    n_lines = icache.n_lines
    decoded = []
    for index, instr in enumerate(program.instructions):
        op = instr.op
        for reg in (instr.rd, instr.ra, instr.rb):
            if not 0 <= reg < 32:
                raise ISAError(
                    f"register r{reg} out of range at pc={index} ({op})"
                )
        if op in _ALU_FUNCS:
            head = (_K_ALU, _ALU_FUNCS[op], instr.rd, instr.ra, instr.rb)
        elif op.endswith("i") and op[:-1] in _ALU_FUNCS:
            head = (_K_ALUI, _ALU_FUNCS[op[:-1]], instr.rd, instr.ra,
                    instr.imm & MASK32)
        elif op in _BRANCH_TESTS:
            head = (_K_CBR, _BRANCH_TESTS[op], instr.rd, 0, instr.imm)
        elif op == "lw":
            head = (_K_LW, None, instr.rd, instr.ra, instr.rb)
        elif op == "lwi":
            head = (_K_LWI, None, instr.rd, instr.ra, instr.imm)
        elif op == "sw":
            head = (_K_SW, None, instr.rd, instr.ra, instr.rb)
        elif op == "swi":
            head = (_K_SWI, None, instr.rd, instr.ra, instr.imm)
        elif op == "br":
            head = (_K_BR, None, 0, 0, instr.imm)
        elif op == "brl":
            head = (_K_BRL, None, instr.rd, 0, instr.imm)
        elif op == "jr":
            head = (_K_JR, None, instr.rd, 0, 0)
        elif op == "nop":
            head = (_K_NOP, None, 0, 0, 0)
        elif op == "halt":
            head = (_K_HALT, None, 0, 0, 0)
        else:
            raise ISAError(f"unknown opcode {op!r} at pc={index}")
        addr = program.base + 4 * index
        line_addr = addr // line_bytes
        decoded.append(head + (line_addr % n_lines, line_addr // n_lines, addr))
    cache[key] = decoded
    return decoded


# Window-terminating interaction points for the block interpreter.
_S_FILL = 1    # instruction fetch missed: refill a line over the bus
_S_LOCAL = 2   # local BRAM data access
_S_DDR = 3     # shared DDR data access (arbitrated bus transaction)
_S_HALT = 4
_S_ERROR = 5


class ISAExecutor:
    """Runs a :class:`Program` on a core, cycle-accounted.

    Parameters
    ----------
    core:
        The MicroBlaze whose cache/bus/local memory are used.
    program:
        Assembled program.  Data words are loaded into DDR (or the
        region owning their address) before execution.
    trace:
        Optional :class:`~repro.trace.recorder.TraceRecorder`; when
        given, every *shared* (non-local) data access is recorded as an
        ``access`` event so the race checker in
        :mod:`repro.lint.concurrency` can analyse the run.
    count_pcs:
        When True, ``pc_counts`` maps each executed instruction index
        to its execution count, so static loop bounds
        (:mod:`repro.lint.absint`) can be cross-checked against actual
        iteration counts.  Forces ``mode="reference"`` (per-pc counts
        are per-instruction accounting by definition).
    mode:
        ``"block"`` or ``"reference"`` (see the module docstring).
        Defaults to the core's ``isa_mode``.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; block-mode
        runs record ``isa_windows_total`` / ``isa_window_instructions_total``
        / ``isa_block_replays_total`` counters labelled by cpu.
    """

    def __init__(
        self,
        core: MicroBlaze,
        program: Program,
        trace=None,
        count_pcs: bool = False,
        mode: Optional[str] = None,
        metrics=None,
    ):
        self.core = core
        self.program = program
        self.trace = trace
        self.state = CPUState()
        self.cycles = 0
        self.icache_misses = 0
        self.data_accesses = 0
        self.pc_counts: Optional[Dict[int, int]] = {} if count_pcs else None
        resolved = mode or getattr(core, "isa_mode", "block")
        if resolved not in ISA_MODES:
            raise ValueError(f"unknown isa_mode {resolved!r}")
        if count_pcs:
            resolved = "reference"
        self.mode = resolved
        self.metrics = metrics
        # Decode (and validate) once for both interpreters.
        self._decoded = _decode_program(program, core.icache)
        # Block-interpreter observability: executed windows, the
        # instructions they coalesced, and fault-invalidated replays.
        self.windows = 0
        self.window_instructions = 0
        self.replays = 0
        self._sleep = None
        self._window_broken = False
        for addr, value in program.data.items():
            self._region_for(addr).write_word(addr, value)

    # -------------------------------------------------------------- memory map
    def _region_for(self, addr: int) -> WordStorage:
        if self.core.local_mem.contains(addr):
            return self.core.local_mem
        if self.core.ddr.contains(addr):
            return self.core.ddr
        raise ISAError(f"address {addr:#x} maps to no memory region")

    def _data_access(self, addr: int, value: Optional[int] = None):
        """Generator: load (value None) or store through the right port."""
        region = self._region_for(addr)
        self.data_accesses += 1
        if isinstance(region, LocalBRAM):
            yield self.core.sim.timeout(region.access_latency(1))
            self.cycles += region.access_latency(1)
            if value is None:
                return region.read_word(addr)
            region.write_word(addr, value)
            return None
        # Shared DDR: arbitrated bus transaction.
        start = self.core.sim.now
        yield from self.core.bus.transfer(self.core.cpu_id, region, words=1)
        self.cycles += self.core.sim.now - start
        if self.trace is not None:
            self.trace.record(
                self.core.sim.now,
                "access",
                cpu=self.core.cpu_id,
                info=f"addr={addr:#x} op={'read' if value is None else 'write'}",
            )
        if value is None:
            return region.read_word(addr)
        region.write_word(addr, value)
        return None

    def _fetch(self, index: int):
        """Generator: instruction fetch with I-cache."""
        addr = self.program.address_of(index)
        if self.core.icache.lookup(addr):
            return
        self.icache_misses += 1
        start = self.core.sim.now
        yield from self.core.bus.transfer(
            self.core.cpu_id, self.core.ddr, words=self.core.icache.line_words
        )
        self.core.icache.fill_line(addr)
        self.cycles += self.core.sim.now - start

    # ---------------------------------------------------------------- execution
    # Opcode handlers (reference interpreter).  Each returns the branch
    # target (an instruction index) for a *taken* control transfer, or
    # None to fall through to pc+1.  Memory handlers are generators and
    # are flagged as such in the dispatch table so the main loop only
    # pays generator setup for ops that actually touch the memory
    # system.
    def _exec_nop(self, state: CPUState, instr: Instruction, payload) -> Optional[int]:
        return None

    def _exec_halt(self, state: CPUState, instr: Instruction, payload) -> Optional[int]:
        state.halted = True
        return None

    def _exec_alu(self, state: CPUState, instr: Instruction, func) -> Optional[int]:
        state.write(instr.rd, func(state.read(instr.ra), state.read(instr.rb)))
        return None

    def _exec_alui(self, state: CPUState, instr: Instruction, func) -> Optional[int]:
        state.write(instr.rd, func(state.read(instr.ra), instr.imm & MASK32))
        return None

    def _exec_load(self, state: CPUState, instr: Instruction, use_imm):
        offset = instr.imm if use_imm else state.read(instr.rb)
        addr = (state.read(instr.ra) + offset) & MASK32
        value = yield from self._data_access(addr)
        state.write(instr.rd, value)
        return None

    def _exec_store(self, state: CPUState, instr: Instruction, use_imm):
        offset = instr.imm if use_imm else state.read(instr.rb)
        addr = (state.read(instr.ra) + offset) & MASK32
        yield from self._data_access(addr, value=state.read(instr.rd))
        return None

    def _exec_branch(self, state: CPUState, instr: Instruction, test) -> Optional[int]:
        return instr.imm if test(_signed(state.read(instr.rd))) else None

    def _exec_br(self, state: CPUState, instr: Instruction, payload) -> Optional[int]:
        return instr.imm

    def _exec_brl(self, state: CPUState, instr: Instruction, payload) -> Optional[int]:
        state.write(instr.rd, state.pc + 1)
        return instr.imm

    def _exec_jr(self, state: CPUState, instr: Instruction, payload) -> Optional[int]:
        return state.read(instr.rd)

    #: op -> (handler, is_generator, payload); precomputed once at
    #: import (see _build_dispatch below) instead of a per-instruction
    #: string elif chain.
    _DISPATCH: Dict[str, Tuple] = {}

    def run(self, max_instructions: int = 1_000_000):
        """Generator: execute until halt or the instruction budget ends.

        Returns the CPUState (also available as ``self.state``).
        """
        if self.mode == "reference":
            return (yield from self._run_reference(max_instructions))
        return (yield from self._run_block(max_instructions))

    # ------------------------------------------------------ reference oracle
    def _run_reference(self, max_instructions: int):
        """The per-instruction interpreter (one engine event per cycle)."""
        state = self.state
        program = self.program
        instructions = program.instructions
        dispatch = self._DISPATCH
        timeout = self.core.sim.timeout
        counts = self.pc_counts
        while not state.halted:
            if state.instructions_retired >= max_instructions:
                raise ISAError(
                    f"instruction budget {max_instructions} exhausted at pc={state.pc}"
                )
            if not 0 <= state.pc < len(instructions):
                raise ISAError(f"pc {state.pc} outside program")
            if counts is not None:
                counts[state.pc] = counts.get(state.pc, 0) + 1
            yield from self._fetch(state.pc)
            instr = instructions[state.pc]
            yield timeout(1)
            self.cycles += 1
            state.instructions_retired += 1

            # Opcodes were validated at predecode: direct index.
            handler, is_generator, payload = dispatch[instr.op]
            if is_generator:
                target = yield from handler(self, state, instr, payload)
            else:
                target = handler(self, state, instr, payload)

            if target is None:
                state.pc += 1
            else:  # taken control transfer: pipeline refill
                yield timeout(BRANCH_PENALTY)
                self.cycles += BRANCH_PENALTY
                state.pc = target
        return state

    # --------------------------------------------------- block interpreter
    def _on_fault(self, *_fault) -> None:
        """Fault listener: invalidate the in-flight coalesced block.

        Registered on the core's memories (``flip_bit``) and register
        file (``register_upset``) while a block run is live.  Waking
        the sleep early makes the executor roll back to the block's
        entry checkpoint and replay it per-instruction, so the fault
        lands against reference-exact architectural state.
        """
        sleep = self._sleep
        if sleep is not None and sleep._state == PENDING:
            self._window_broken = True
            sleep.succeed()

    def _run_block(self, max_instructions: int):
        """Basic-block interpreter: one coalesced sleep per window.

        A *window* is the run of core-private instructions (ALU,
        branches, nop) from one interaction point to the next.  The
        inner loop executes a window against local register state,
        accumulating its cycle cost in ``pending``; the single
        ``advance(pending)`` sleep at the window boundary replaces the
        reference interpreter's per-instruction timeouts.  Everything
        another bus master or a trace consumer could observe -- DDR
        transactions, I-cache refills, local-memory effects, halt, and
        execution faults -- happens at the same absolute instant the
        reference interpreter produces.
        """
        state = self.state
        if state.halted:
            return state
        core = self.core
        sim = core.sim
        icache = core.icache
        local_mem = core.local_mem
        ddr = core.ddr
        bus = core.bus
        cpu_id = core.cpu_id
        local_base = local_mem.base
        local_top = local_mem.base + local_mem.size
        local_latency = local_mem.access_latency(1)
        ddr_base = ddr.base
        ddr_top = ddr.base + ddr.size
        decoded = self._decoded
        n = len(decoded)
        regs = state.regs
        metrics = self.metrics
        fuel = max_instructions - state.instructions_retired
        filled_pc = -1
        sleep = None
        pc = state.pc
        # Fault hooks: any flip/upset must invalidate the live window.
        local_mem.add_fault_listener(self._on_fault)
        ddr.add_fault_listener(self._on_fault)
        core.add_upset_listener(self._on_fault)
        try:
            while True:
                tags = icache._tags  # re-read per window: invalidate() rebinds
                ck_pc = pc
                ck_fuel = fuel
                ck_skip = filled_pc
                ck_regs = regs[:]
                pending = 0
                hits = 0
                sync = 0
                err: Optional[ISAError] = None
                op: tuple = ()
                addr = 0
                # ---- the window: core-private ops, no engine events
                while True:
                    if fuel <= 0:
                        err = ISAError(
                            f"instruction budget {max_instructions} "
                            f"exhausted at pc={pc}"
                        )
                        sync = _S_ERROR
                        break
                    if pc < 0 or pc >= n:
                        err = ISAError(f"pc {pc} outside program")
                        sync = _S_ERROR
                        break
                    op = decoded[pc]
                    if pc == filled_pc:
                        filled_pc = -1  # the refill covers this fetch
                    elif tags[op[5]] == op[6]:
                        hits += 1
                    else:
                        sync = _S_FILL
                        break
                    fuel -= 1
                    kind = op[0]
                    if kind == 1:  # alui
                        pending += 1
                        rd = op[2]
                        if rd:
                            regs[rd] = op[1](regs[op[3]], op[4])
                        pc += 1
                    elif kind == 0:  # alu
                        pending += 1
                        rd = op[2]
                        if rd:
                            regs[rd] = op[1](regs[op[3]], regs[op[4]])
                        pc += 1
                    elif kind == 2:  # conditional branch
                        v = regs[op[2]]
                        if op[1](v - 0x1_0000_0000 if v & 0x8000_0000 else v):
                            pending += 1 + BRANCH_PENALTY
                            pc = op[4]
                        else:
                            pending += 1
                            pc += 1
                    elif kind >= 8:  # memory: interaction point
                        pending += 1
                        offset = op[4] if kind & 1 else regs[op[4]]
                        addr = (regs[op[3]] + offset) & MASK32
                        if local_base <= addr < local_top:
                            pending += local_latency
                            sync = _S_LOCAL
                        elif ddr_base <= addr < ddr_top:
                            sync = _S_DDR
                        else:
                            err = ISAError(
                                f"address {addr:#x} maps to no memory region"
                            )
                            sync = _S_ERROR
                        break
                    elif kind == 6:  # nop
                        pending += 1
                        pc += 1
                    elif kind == 7:  # halt
                        pending += 1
                        sync = _S_HALT
                        break
                    elif kind == 3:  # br
                        pending += 1 + BRANCH_PENALTY
                        pc = op[4]
                    elif kind == 4:  # brl
                        pending += 1 + BRANCH_PENALTY
                        rd = op[2]
                        if rd:
                            regs[rd] = pc + 1
                        pc = op[4]
                    else:  # kind == 5: jr
                        pending += 1 + BRANCH_PENALTY
                        pc = regs[op[2]]

                # ---- window boundary: bulk-apply counters, one sleep
                state.pc = pc
                state.instructions_retired = max_instructions - fuel
                self.windows += 1
                self.window_instructions += ck_fuel - fuel
                self.cycles += pending
                icache.hits += hits
                if pending:
                    flush_start = sim.now
                    sleep = sim.advance(pending, sleep)
                    self._sleep = sleep
                    yield sleep
                    self._sleep = None
                    if self._window_broken:
                        # A fault landed inside the coalesced sleep.
                        # The early-woken sleep leaves a stale queue
                        # entry behind; never re-arm it.
                        self._window_broken = False
                        sleep = None
                        self.replays += 1
                        regs[:] = ck_regs
                        self.cycles -= pending
                        icache.hits -= hits
                        state.pc = ck_pc
                        state.instructions_retired = max_instructions - ck_fuel
                        state.halted = False
                        yield from self._replay(
                            ck_pc, ck_skip, sim.now - flush_start, pending
                        )
                        if (state.pc != pc
                                or state.instructions_retired
                                != max_instructions - fuel):  # pragma: no cover
                            raise ISAError("block replay diverged from window")

                # ---- the interaction point, at its exact instant
                if sync == _S_LOCAL:
                    self.data_accesses += 1
                    if op[0] <= 9:  # load
                        value = local_mem.read_word(addr)
                        rd = op[2]
                        if rd:
                            regs[rd] = value
                    else:
                        local_mem.write_word(addr, regs[op[2]])
                    pc += 1
                    state.pc = pc
                elif sync == _S_DDR:
                    self.data_accesses += 1
                    start = sim.now
                    yield from bus.transfer(cpu_id, ddr, words=1)
                    self.cycles += sim.now - start
                    load = op[0] <= 9
                    if self.trace is not None:
                        self.trace.record(
                            sim.now,
                            "access",
                            cpu=cpu_id,
                            info=f"addr={addr:#x} "
                                 f"op={'read' if load else 'write'}",
                        )
                    if load:
                        value = ddr.read_word(addr)
                        rd = op[2]
                        if rd:
                            regs[rd] = value
                    else:
                        ddr.write_word(addr, regs[op[2]])
                    pc += 1
                    state.pc = pc
                elif sync == _S_FILL:
                    icache.misses += 1
                    self.icache_misses += 1
                    start = sim.now
                    yield from bus.transfer(cpu_id, ddr,
                                            words=icache.line_words)
                    icache.fill_line(op[7])
                    self.cycles += sim.now - start
                    filled_pc = pc
                elif sync == _S_HALT:
                    pc += 1
                    state.pc = pc
                    state.halted = True
                    if metrics is not None:
                        self._record_metrics(metrics)
                    return state
                else:  # _S_ERROR
                    if metrics is not None:
                        self._record_metrics(metrics)
                    raise err
        finally:
            self._sleep = None
            local_mem.remove_fault_listener(self._on_fault)
            ddr.remove_fault_listener(self._on_fault)
            core.remove_upset_listener(self._on_fault)

    def _replay(self, pc: int, skip: int, credit: int, pending: int):
        """Re-run a rolled-back window per-instruction across a fault.

        ``credit`` cycles of the window's coalesced sleep had already
        elapsed when the fault broke it, so the instants the reference
        interpreter has already passed apply instantly and the
        remainder sleeps at per-instruction granularity.  Windows carry
        no memory traffic, so the replay re-traces the identical path
        from the checkpointed registers; the terminal interaction
        point's cost is slept here but its *effect* stays with the
        caller (at the exact boundary instant, after the fault).
        """
        state = self.state
        regs = state.regs
        decoded = self._decoded
        icache = self.core.icache
        timeout = self.core.sim.timeout
        local_mem = self.core.local_mem
        local_base = local_mem.base
        local_top = local_mem.base + local_mem.size
        local_latency = local_mem.access_latency(1)
        done = 0
        first = True
        while done < pending:
            op = decoded[pc]
            kind = op[0]
            if not (first and pc == skip):
                icache.hits += 1
            first = False
            taken = False
            if kind == 2:
                v = regs[op[2]]
                taken = op[1](v - 0x1_0000_0000 if v & 0x8000_0000 else v)
                cost = 1 + BRANCH_PENALTY if taken else 1
            elif kind >= 8:
                offset = op[4] if kind & 1 else regs[op[4]]
                addr = (regs[op[3]] + offset) & MASK32
                cost = 1
                if local_base <= addr < local_top:
                    cost += local_latency
            elif kind in (3, 4, 5):
                cost = 1 + BRANCH_PENALTY
            else:
                cost = 1
            if credit >= cost:
                credit -= cost
            else:
                yield timeout(cost - credit)
                credit = 0
            done += cost
            self.cycles += cost
            state.instructions_retired += 1
            if kind == 1:
                rd = op[2]
                if rd:
                    regs[rd] = op[1](regs[op[3]], op[4])
                pc += 1
            elif kind == 0:
                rd = op[2]
                if rd:
                    regs[rd] = op[1](regs[op[3]], regs[op[4]])
                pc += 1
            elif kind == 2:
                pc = op[4] if taken else pc + 1
            elif kind == 3:
                pc = op[4]
            elif kind == 4:
                rd = op[2]
                if rd:
                    regs[rd] = pc + 1
                pc = op[4]
            elif kind == 5:
                pc = regs[op[2]]
            elif kind == 6:
                pc += 1
            # halt (7) and memory (>= 8): cost slept above, effect and
            # pc advance handled by the caller at the boundary instant.
            state.pc = pc

    def _record_metrics(self, metrics) -> None:
        """Flush block counters into an obs metrics registry."""
        labels = {"cpu": self.core.cpu_id}
        metrics.counter(
            "isa_windows_total",
            help="coalesced basic-block windows executed",
            labels=labels,
        ).inc(self.windows)
        metrics.counter(
            "isa_window_instructions_total",
            help="instructions retired inside coalesced windows",
            labels=labels,
        ).inc(self.window_instructions)
        metrics.counter(
            "isa_block_replays_total",
            help="windows invalidated by faults and replayed",
            labels=labels,
        ).inc(self.replays)


def _build_dispatch() -> Dict[str, Tuple]:
    """Precompute the opcode method table from the semantic tables."""
    table: Dict[str, Tuple] = {
        "nop": (ISAExecutor._exec_nop, False, None),
        "halt": (ISAExecutor._exec_halt, False, None),
        "lw": (ISAExecutor._exec_load, True, False),
        "lwi": (ISAExecutor._exec_load, True, True),
        "sw": (ISAExecutor._exec_store, True, False),
        "swi": (ISAExecutor._exec_store, True, True),
        "br": (ISAExecutor._exec_br, False, None),
        "brl": (ISAExecutor._exec_brl, False, None),
        "jr": (ISAExecutor._exec_jr, False, None),
    }
    for op, func in _ALU_FUNCS.items():
        if op in OPCODES:
            table[op] = (ISAExecutor._exec_alu, False, func)
        if op + "i" in OPCODES:
            table[op + "i"] = (ISAExecutor._exec_alui, False, func)
    for op, test in _BRANCH_TESTS.items():
        table[op] = (ISAExecutor._exec_branch, False, test)
    return table


ISAExecutor._DISPATCH = _build_dispatch()
