"""The system timer that paces the scheduling cycle.

"It forwards the signal triggered by the system timer, that determines
the scheduling period and starts the scheduling cycle, to an available
processor."  The timer raises a *distributed* interrupt through the
MPIC every ``period`` cycles (0.1 s at 50 MHz in the evaluation), so
whichever processor is free runs the scheduler while the others keep
working.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.intc import InterruptMode, MultiprocessorInterruptController
from repro.sim.engine import Simulator


class SystemTimer:
    """Periodic interrupt generator wired into the MPIC."""

    def __init__(
        self,
        sim: Simulator,
        intc: MultiprocessorInterruptController,
        period: int,
        name: str = "system-timer",
        mode: InterruptMode = InterruptMode.DISTRIBUTE,
    ):
        if period <= 0:
            raise ValueError("timer period must be positive")
        self.sim = sim
        self.intc = intc
        self.period = period
        self.ticks = 0
        self.glitches = 0
        self._suppress = 0
        self._running = False
        #: Absolute cycle of the next pending tick (None while stopped).
        #: Cores use this as the adaptive-chunking preemption hint: no
        #: scheduler-driven preemption can land before the next tick,
        #: so an execution slice may safely extend up to it.
        self.next_tick: Optional[int] = None
        self.source = intc.add_source(name, mode=mode)

    def start(self, first_tick: Optional[int] = None) -> None:
        """Begin ticking; the first tick fires at ``first_tick`` (default
        one full period from now)."""
        if self._running:
            raise RuntimeError("timer already running")
        self._running = True
        delay = self.period if first_tick is None else max(0, first_tick - self.sim.now)
        self.next_tick = self.sim.now + delay
        self.sim.schedule(delay, self._tick)

    def stop(self) -> None:
        """Stop after the current tick (pending tick is suppressed)."""
        self._running = False
        self.next_tick = None

    def glitch(self, ticks: int = 1) -> None:
        """Transient-fault surface: swallow the next ``ticks`` tick(s).

        A glitched tick keeps the period cadence (``next_tick`` still
        advances, so chunking hints stay honest) but raises no
        interrupt -- the scheduling cycle it would have triggered is
        simply lost, as with an EMI-suppressed timer line.
        """
        if ticks < 1:
            raise ValueError("ticks must be >= 1")
        self._suppress += ticks

    def _tick(self) -> None:
        if not self._running:
            self.next_tick = None
            return
        self.next_tick = self.sim.now + self.period
        if self._suppress > 0:
            self._suppress -= 1
            self.glitches += 1
            self.sim.schedule(self.period, self._tick)
            return
        self.ticks += 1
        self.intc.raise_interrupt(self.source, payload={"kind": "timer", "tick": self.ticks})
        self.sim.schedule(self.period, self._tick)
