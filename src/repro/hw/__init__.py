"""Cycle-approximate model of the paper's FPGA multiprocessor (Fig. 1).

The architecture: several MicroBlaze soft cores on a shared On-chip
Peripheral Bus (OPB), each with a private local BRAM (1-cycle) and a
direct-mapped instruction cache (hit 1 cycle / miss 12 to DDR), a
shared DDR memory and boot BRAM behind the bus, a Synchronization
Engine coprocessor (hardware locks/barriers), a crossbar for small
inter-processor transfers, a system timer, CAN-style peripherals, and
the multiprocessor interrupt controller (MPIC) that distributes
interrupts, supports booking, multicast/broadcast and IPIs with a
fixed-priority-with-timeout scheme.

Everything here runs on the discrete-event kernel in :mod:`repro.sim`
with integer cycle timestamps.
"""

from repro.hw.bus import BusStats, BusTarget, OPBBus
from repro.hw.cache import DirectMappedICache
from repro.hw.crossbar import Crossbar
from repro.hw.intc import (
    InterruptMode,
    InterruptSource,
    MultiprocessorInterruptController,
)
from repro.hw.ipcore import IPCore, OffloadJob
from repro.hw.memory import DDRMemory, LocalBRAM, SharedBRAM
from repro.hw.microblaze import MicroBlaze
from repro.hw.monitor import BusMonitor, BusSample
from repro.hw.peripherals import CANInterface, InterruptingPeripheral
from repro.hw.soc import SoC, SoCConfig
from repro.hw.sync_engine import SynchronizationEngine
from repro.hw.timer import SystemTimer

__all__ = [
    "OPBBus",
    "BusTarget",
    "BusStats",
    "LocalBRAM",
    "SharedBRAM",
    "DDRMemory",
    "DirectMappedICache",
    "MultiprocessorInterruptController",
    "InterruptSource",
    "InterruptMode",
    "SynchronizationEngine",
    "Crossbar",
    "SystemTimer",
    "CANInterface",
    "InterruptingPeripheral",
    "MicroBlaze",
    "IPCore",
    "OffloadJob",
    "BusMonitor",
    "BusSample",
    "SoC",
    "SoCConfig",
]
