"""Offloadable IP cores with booked completion interrupts.

Section 3.2's motivation for *booking*: "if a processor offloads a
function to an intellectual property core, we may want that the same
processor that started the computation manage the read-back of the
results.  Thus, with booking the interrupt that signals the end of the
IP core work is propagated only to a designated processor."

This models such an accelerator: a processor writes a job descriptor
over the bus, the core computes for a configurable latency, and raises
its (booked) interrupt when the results are ready for read-back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.hw.bus import OPBBus, RegisterTarget
from repro.hw.intc import InterruptMode, MultiprocessorInterruptController
from repro.sim.engine import Simulator


@dataclass
class OffloadJob:
    """One accelerator invocation."""

    job_id: int
    submitted_by: int
    submitted_at: int
    latency: int
    payload: Any = None
    completed_at: Optional[int] = None
    result: Any = None

    @property
    def done(self) -> bool:
        return self.completed_at is not None


class IPCore:
    """A fixed-function accelerator on the OPB.

    Parameters
    ----------
    compute:
        Optional function payload -> result evaluated at completion
        (models the accelerated function, e.g. an FFT or a CRC).
    latency:
        Cycles from submission to completion interrupt.
    """

    #: Words written to submit a descriptor / read back the results.
    DESCRIPTOR_WORDS = 4
    RESULT_WORDS = 4

    def __init__(
        self,
        sim: Simulator,
        bus: OPBBus,
        intc: MultiprocessorInterruptController,
        name: str = "ip-core",
        latency: int = 2_000,
        compute: Optional[Callable[[Any], Any]] = None,
    ):
        if latency <= 0:
            raise ValueError("latency must be positive")
        self.sim = sim
        self.bus = bus
        self.intc = intc
        self.name = name
        self.latency = latency
        self.compute = compute
        self.registers = RegisterTarget(name=name, latency=3)
        self.source = intc.add_source(name, mode=InterruptMode.DISTRIBUTE)
        self.jobs: List[OffloadJob] = []
        self._busy = False
        self._next_id = 0

    @property
    def busy(self) -> bool:
        """True while a job is in flight (single-context core)."""
        return self._busy

    def submit(self, cpu: int, payload: Any = None):
        """Offload a job from ``cpu``; returns a generator to drive.

        Books the completion interrupt to the submitting processor,
        writes the descriptor over the bus, and starts the computation.
        The generator returns the :class:`OffloadJob` handle.

        The busy check and reservation happen *at call time*, not on
        first iteration, so a double-submit while a job is in flight
        (or two submits created back-to-back before either runs) fails
        loudly instead of clobbering the in-flight job.
        """
        if self._busy:
            raise RuntimeError(
                f"{self.name} is busy; single-context core "
                f"(wait for the completion interrupt before resubmitting)"
            )
        self._busy = True
        return self._submit(cpu, payload)

    def _submit(self, cpu: int, payload: Any):
        self.intc.book(self.source, cpu)
        yield from self.bus.transfer(cpu, self.registers, self.DESCRIPTOR_WORDS)
        job = OffloadJob(
            job_id=self._next_id,
            submitted_by=cpu,
            submitted_at=self.sim.now,
            latency=self.latency,
            payload=payload,
        )
        self._next_id += 1
        self.jobs.append(job)
        self.sim.schedule(self.latency, lambda: self._complete(job))
        return job

    def _complete(self, job: OffloadJob) -> None:
        job.completed_at = self.sim.now
        if self.compute is not None:
            job.result = self.compute(job.payload)
        self._busy = False
        self.intc.raise_interrupt(
            self.source,
            payload={"kind": "ipcore", "core": self.name, "job": job.job_id},
        )

    def read_back(self, cpu: int, job: OffloadJob):
        """Generator: fetch the results over the bus (the booked
        processor's interrupt handler calls this)."""
        if not job.done:
            raise RuntimeError(f"job {job.job_id} not completed yet")
        yield from self.bus.transfer(cpu, self.registers, self.RESULT_WORDS)
        return job.result
