"""A small library of reusable assembly routines.

Calling convention (MicroBlaze-flavoured):

- ``brl r15, <routine>`` calls; routines return with ``jr r15``
  (leaf routines only -- there is no stack discipline here);
- arguments in r5..r7, result in r3;
- r3..r10 are caller-saved scratch.

:func:`link` concatenates a main program with the routines it names,
so small assembly applications can be composed without a real linker.

Routine sources carry ``#@`` contract annotations (parsed by
:mod:`repro.lint.absint`, invisible to the assembler): ``#@ param rN in
LO..HI`` bounds an argument register for standalone verification, and a
trailing ``#@ bound=N`` on a loop-header label asserts its maximum trip
count.  The absint audit cross-checks every bound against the inferred
trip counts and the executor's measured iteration counts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.hw.assembler import assemble
from repro.hw.isa import Program

#: r5 = src byte address, r6 = dst byte address, r7 = word count.
MEMCPY_WORDS = """
#@ param r5 in 0x40000000..0x40FFFF00
#@ param r6 in 0x40000000..0x40FFFF00
#@ param r7 in 0..64
memcpy_words:
    beqz r7, memcpy_done
    addi r8, r5, 0
    addi r9, r6, 0
    addi r10, r7, 0
memcpy_loop:            #@ bound=64
    lwi  r3, r8, 0
    swi  r3, r9, 0
    addi r8, r8, 4
    addi r9, r9, 4
    addi r10, r10, -1
    bnez r10, memcpy_loop
memcpy_done:
    jr   r15
"""

#: r5 = array byte address, r6 = word count; r3 = sum (mod 2^32).
ARRAY_SUM = """
#@ param r5 in 0x40000000..0x40FFFF00
#@ param r6 in 0..64
array_sum:
    addi r3, r0, 0
    beqz r6, array_sum_done
    addi r8, r5, 0
    addi r9, r6, 0
array_sum_loop:         #@ bound=64
    lwi  r4, r8, 0
    add  r3, r3, r4
    addi r8, r8, 4
    addi r9, r9, -1
    bnez r9, array_sum_loop
array_sum_done:
    jr   r15
"""

#: r5 = value; r3 = population count (SWAR, branch-free).
POPCOUNT32 = """
popcount32:
    srli r4, r5, 1
    andi r4, r4, 0x55555555
    sub  r3, r5, r4
    andi r4, r3, 0x33333333
    srli r3, r3, 2
    andi r3, r3, 0x33333333
    add  r3, r4, r3
    srli r4, r3, 4
    add  r3, r3, r4
    andi r3, r3, 0x0F0F0F0F
    muli r3, r3, 0x01010101
    srli r3, r3, 24
    jr   r15
"""

#: r5 = value, r6 = current crc; r3 = updated crc (bitwise CRC-32/LSB,
#: polynomial 0xEDB88320, one 32-bit word folded in).
CRC32_WORD = """
crc32_word:
    xor  r3, r6, r5
    addi r9, r0, 32
crc32_bit:              #@ bound=32
    andi r4, r3, 1
    srli r3, r3, 1
    beqz r4, crc32_noxor
    xori r3, r3, 0xEDB88320
crc32_noxor:
    addi r9, r9, -1
    bnez r9, crc32_bit
    jr   r15
"""

#: r5 = value (unsigned); r3 = integer square root (Newton).
ISQRT32 = """
isqrt32:
    addi r3, r5, 0
    addi r4, r5, 1
    srli r4, r4, 1
isqrt_loop:             #@ bound=64
    cmp  r8, r4, r3          # r3 - r4 ; loop while y < x
    blez r8, isqrt_done
    addi r3, r4, 0
    addi r9, r5, 0           # dividend
    addi r10, r0, 0          # quotient
isqrt_div:              #@ bound=65537
    cmp  r8, r3, r9          # r9 - r3
    bltz r8, isqrt_divdone
    sub  r9, r9, r3
    addi r10, r10, 1
    br   isqrt_div
isqrt_divdone:
    add  r4, r3, r10
    srli r4, r4, 1
    br   isqrt_loop
isqrt_done:
    jr   r15
"""

ROUTINES: Dict[str, str] = {
    "memcpy_words": MEMCPY_WORDS,
    "array_sum": ARRAY_SUM,
    "popcount32": POPCOUNT32,
    "crc32_word": CRC32_WORD,
    "isqrt32": ISQRT32,
}


def link_source(main_source: str, routines: Iterable[str]) -> str:
    """Combined source text: the main program then the named routines.

    Callers that need a ``.data`` section must place it *after* the
    routines (the routines do not re-open ``.text``), which is why this
    textual form exists alongside :func:`link`.
    """
    parts: List[str] = [main_source]
    seen = set()
    for name in routines:
        if name in seen:
            continue
        seen.add(name)
        try:
            parts.append(ROUTINES[name])
        except KeyError:
            raise KeyError(
                f"unknown routine {name!r}; available: {sorted(ROUTINES)}"
            ) from None
    return "\n".join(parts)


def link(main_source: str, routines: Iterable[str], text_base: int = 0x4000_0000) -> Program:
    """Assemble a main program followed by the named library routines.

    The main program must end in ``halt`` on every path; routines are
    appended after it so fall-through cannot reach them.
    """
    return assemble(link_source(main_source, routines), text_base=text_base)
