"""Two-pass assembler for the MicroBlaze-subset ISA.

Syntax
------
::

    # comment
    .text 0x40000000        ; text base (optional, default DDR base)
    .data 0x40010000        ; switch to data emission at address
    table: .word 5 3 8 1    ; labelled data words
    .text                   ; back to code
    start:
        addi  r3, r0, 0     ; r3 = 0
        lwi   r4, r0, table ; label as immediate
        beqz  r4, done
        br    start
    done:
        halt

Labels can be used as branch targets (instruction index) and as
immediates (absolute byte address for data labels, instruction address
for code labels used via ``la``-style addi).
"""

from __future__ import annotations

import difflib
import re
from typing import Dict, List, Optional, Tuple

from repro.hw.isa import Instruction, ISAError, OPCODES, Program

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class AssemblerError(Exception):
    """Syntax or linkage error, annotated with the source line."""


def _suggest(name: str, candidates) -> str:
    """" (did you mean 'x'?)" when a close label name exists."""
    close = difflib.get_close_matches(name, list(candidates), n=1, cutoff=0.6)
    return f" (did you mean {close[0]!r}?)" if close else ""


def _parse_register(token: str, line_no: int) -> int:
    token = token.strip().lower()
    if not token.startswith("r"):
        raise AssemblerError(f"line {line_no}: expected register, got {token!r}")
    try:
        reg = int(token[1:])
    except ValueError:
        raise AssemblerError(f"line {line_no}: bad register {token!r}") from None
    if not 0 <= reg < 32:
        raise AssemblerError(f"line {line_no}: register {token!r} out of range")
    return reg


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"line {line_no}: bad integer {token!r}") from None


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, text_base: int = 0x4000_0000):
        self.text_base = text_base

    def assemble(self, source: str) -> Program:
        lines = source.splitlines()
        instructions: List[Tuple[int, str, List[str]]] = []  # (line_no, op, operands)
        code_labels: Dict[str, int] = {}
        data_labels: Dict[str, int] = {}
        label_lines: Dict[str, int] = {}  # label -> defining source line
        data: Dict[int, int] = {}
        text_base = self.text_base
        mode = "text"
        data_cursor: Optional[int] = None

        # ---------------------------------------------------------- first pass
        for line_no, raw in enumerate(lines, start=1):
            line = raw.split("#")[0].split(";")[0].strip()
            if not line:
                continue

            while True:  # consume leading labels (possibly several)
                match = re.match(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$", line)
                if not match:
                    break
                label, line = match.group(1), match.group(2).strip()
                if label in code_labels or label in data_labels:
                    raise AssemblerError(
                        f"line {line_no}: duplicate label {label!r} "
                        f"(first defined on line {label_lines[label]})"
                    )
                label_lines[label] = line_no
                if mode == "text":
                    code_labels[label] = len(instructions)
                else:
                    if data_cursor is None:
                        raise AssemblerError(f"line {line_no}: .data needs an address")
                    data_labels[label] = data_cursor
            if not line:
                continue

            if line.startswith(".text"):
                parts = line.split()
                if len(parts) > 1:
                    text_base = _parse_int(parts[1], line_no)
                mode = "text"
                continue
            if line.startswith(".data"):
                parts = line.split()
                if len(parts) > 1:
                    data_cursor = _parse_int(parts[1], line_no)
                elif data_cursor is None:
                    raise AssemblerError(f"line {line_no}: first .data needs an address")
                mode = "data"
                continue
            if line.startswith(".word"):
                if mode != "data" or data_cursor is None:
                    raise AssemblerError(f"line {line_no}: .word outside .data")
                for token in line.split()[1:]:
                    data[data_cursor] = _parse_int(token, line_no) & 0xFFFFFFFF
                    data_cursor += 4
                continue
            if line.startswith(".space"):
                if mode != "data" or data_cursor is None:
                    raise AssemblerError(f"line {line_no}: .space outside .data")
                count = _parse_int(line.split()[1], line_no)
                data_cursor += 4 * count
                continue

            if mode != "text":
                raise AssemblerError(f"line {line_no}: instruction in .data section")
            tokens = line.replace(",", " ").split()
            op, operands = tokens[0].lower(), tokens[1:]
            if op not in OPCODES:
                raise AssemblerError(f"line {line_no}: unknown opcode {op!r}")
            instructions.append((line_no, op, operands))

        # --------------------------------------------------------- second pass
        def resolve_imm(token: str, line_no: int) -> int:
            if _LABEL_RE.match(token):
                if token in data_labels:
                    return data_labels[token]
                if token in code_labels:
                    return text_base + 4 * code_labels[token]
                raise AssemblerError(
                    f"line {line_no}: undefined label {token!r}"
                    + _suggest(token, set(data_labels) | set(code_labels))
                )
            return _parse_int(token, line_no)

        def resolve_branch(token: str, line_no: int) -> int:
            if _LABEL_RE.match(token):
                if token in code_labels:
                    return code_labels[token]
                if token in data_labels:
                    raise AssemblerError(
                        f"line {line_no}: branch target {token!r} is a data "
                        f"label (defined on line {label_lines[token]}), not code"
                    )
                raise AssemblerError(
                    f"line {line_no}: undefined code label {token!r}"
                    + _suggest(token, code_labels)
                )
            return _parse_int(token, line_no)

        decoded: List[Instruction] = []
        source_lines: List[int] = []
        for line_no, op, operands in instructions:
            source_lines.append(line_no)
            signature = OPCODES[op]
            if signature == "" and operands:
                raise AssemblerError(f"line {line_no}: {op} takes no operands")
            if signature == "RRR":
                if len(operands) != 3:
                    raise AssemblerError(f"line {line_no}: {op} needs 3 registers")
                rd = _parse_register(operands[0], line_no)
                ra = _parse_register(operands[1], line_no)
                rb = _parse_register(operands[2], line_no)
                decoded.append(Instruction(op=op, rd=rd, ra=ra, rb=rb))
            elif signature == "RRI":
                if len(operands) != 3:
                    raise AssemblerError(f"line {line_no}: {op} needs rd, ra, imm")
                rd = _parse_register(operands[0], line_no)
                ra = _parse_register(operands[1], line_no)
                imm = resolve_imm(operands[2], line_no)
                decoded.append(Instruction(op=op, rd=rd, ra=ra, imm=imm))
            elif signature == "RL":
                if len(operands) != 2:
                    raise AssemblerError(f"line {line_no}: {op} needs rd, label")
                rd = _parse_register(operands[0], line_no)
                target = resolve_branch(operands[1], line_no)
                decoded.append(Instruction(op=op, rd=rd, imm=target, label=operands[1]))
            elif signature == "R":
                if len(operands) != 1:
                    raise AssemblerError(f"line {line_no}: {op} needs a register")
                rd = _parse_register(operands[0], line_no)
                decoded.append(Instruction(op=op, rd=rd))
            elif signature == "L":
                if len(operands) != 1:
                    raise AssemblerError(f"line {line_no}: {op} needs a label")
                target = resolve_branch(operands[0], line_no)
                decoded.append(Instruction(op=op, imm=target, label=operands[0]))
            elif signature == "":
                decoded.append(Instruction(op=op))
            else:  # pragma: no cover
                raise AssemblerError(f"line {line_no}: bad signature {signature}")

        symbols = dict(data_labels)
        symbols.update({k: text_base + 4 * v for k, v in code_labels.items()})
        return Program(
            instructions=decoded,
            base=text_base,
            data=data,
            symbols=symbols,
            lines=source_lines,
        )


def assemble(source: str, text_base: int = 0x4000_0000) -> Program:
    """Module-level convenience wrapper."""
    return Assembler(text_base=text_base).assemble(source)
