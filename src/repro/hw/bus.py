"""The shared On-chip Peripheral Bus (OPB) with fixed-priority arbitration.

Single-master-at-a-time: every shared-memory access, peripheral
register access and MPIC configuration access serialises here, which is
exactly the contention the paper measures against the theoretical
simulator.  Masters are granted in fixed priority order (lower cpu id
wins), FIFO among equal priorities.

Two usage styles:

- ``yield from bus.transfer(master, target, words)`` inside a
  :class:`~repro.sim.engine.Process` -- fine-grained, arbitrated.
- ``bus.stats`` exposes utilization counters that the analytic
  contention model in :mod:`repro.hw.contention` is calibrated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

from repro.sim.engine import Simulator
from repro.sim.resources import PriorityResource


class BusTarget(Protocol):
    """Anything reachable over the bus: memories, device registers."""

    name: str

    def access_latency(self, words: int = 1) -> int:
        """Cycles the bus is held for a ``words``-beat transaction."""
        ...


@dataclass
class BusStats:
    """Aggregate bus accounting (per master and total)."""

    busy_cycles: int = 0
    transactions: int = 0
    wait_cycles: Dict[int, int] = field(default_factory=dict)
    transfer_cycles: Dict[int, int] = field(default_factory=dict)
    per_target: Dict[str, int] = field(default_factory=dict)
    stalls_injected: int = 0
    stall_cycles: int = 0

    def utilization(self, elapsed: int) -> float:
        """Fraction of elapsed cycles the bus was occupied."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)

    def mean_wait(self, master: int) -> float:
        """Average grant delay in cycles seen by ``master``."""
        waits = self.wait_cycles.get(master, 0)
        count = self.transfer_cycles.get(master, 0)
        return waits / count if count else 0.0


class OPBBus:
    """Fixed-priority arbitrated shared bus.

    Parameters
    ----------
    sim:
        The discrete-event simulator.
    name:
        Label for traces.
    """

    def __init__(self, sim: Simulator, name: str = "opb"):
        self.sim = sim
        self.name = name
        self._arbiter = PriorityResource(sim, capacity=1, name=f"{name}-arbiter")
        self.stats = BusStats()

    def transfer(self, master: int, target: BusTarget, words: int = 1):
        """Generator: arbitrate, hold the bus, release.

        Yields inside a Process.  Returns the total cycles spent
        (waiting + transferring) so callers can account time.
        """
        start = self.sim.now
        request = self._arbiter.request(priority=master)
        try:
            yield request
            waited = self.sim.now - start
            latency = target.access_latency(words)
            yield self.sim.timeout(latency)
        finally:
            # An interrupt thrown into the caller mid-transaction must
            # not leave the bus granted forever; the abandoned cycles
            # are charged to the interrupt latency instead.
            self._arbiter.release(request)

        self.stats.busy_cycles += latency
        self.stats.transactions += 1
        self.stats.wait_cycles[master] = self.stats.wait_cycles.get(master, 0) + waited
        self.stats.transfer_cycles[master] = (
            self.stats.transfer_cycles.get(master, 0) + 1
        )
        self.stats.per_target[target.name] = (
            self.stats.per_target.get(target.name, 0) + latency
        )
        return waited + latency

    #: Arbitration priority of injected stalls: beats every real master
    #: (lower wins), modelling a glitching device that hogs grant.
    STALL_PRIORITY = -1

    def stall(self, cycles: int):
        """Generator: transient-fault surface -- occupy the bus.

        Run inside a ``sim.process``; grabs the arbiter at a priority
        above every master and holds it for ``cycles``, so real
        transfers queue behind the burst exactly as behind a misbehaving
        peripheral.  Accounted separately from useful traffic in
        ``stats.stall_cycles``.
        """
        if cycles <= 0:
            raise ValueError("stall cycles must be positive")
        request = self._arbiter.request(priority=self.STALL_PRIORITY)
        try:
            yield request
            yield self.sim.timeout(cycles)
        finally:
            self._arbiter.release(request)
        self.stats.busy_cycles += cycles
        self.stats.stalls_injected += 1
        self.stats.stall_cycles += cycles

    def read_word(self, master: int, target, addr: int):
        """Generator: arbitrated single-word read returning the value."""
        yield from self.transfer(master, target, words=1)
        return target.read_word(addr)

    def write_word(self, master: int, target, addr: int, value: int):
        """Generator: arbitrated single-word write."""
        yield from self.transfer(master, target, words=1)
        target.write_word(addr, value)

    @property
    def queue_length(self) -> int:
        """Masters currently waiting for grant (diagnostic)."""
        return self._arbiter.queue_length

    @property
    def busy(self) -> bool:
        return self._arbiter.busy


def analytic_txn_wait(
    shares: List[float],
    latencies: List[float],
    master: int,
    gain: float = 1.0,
    skew: float = 0.0,
) -> float:
    """Expected arbitration wait per transaction, in cycles.

    Closed-form stand-in for the arbiter above, used by the
    transaction-level simulator (:mod:`repro.simulators.tlm`) where
    individual transfers are folded into timed blocks:

        wait = gain * R * (1 + R) * mean(other latencies),

    where ``R`` is the combined duty cycle (``latency/period`` share)
    of the *other* masters.  The linear term is the classic
    mean-residual collision cost -- the chance some other master
    occupies the bus on arrival times its mean remaining service; the
    quadratic term models queue buildup as the bus approaches and
    passes saturation.  Unlike an M/G/1 ``R/(1-R)`` pole this stays
    finite for R >= 1, which matters here: the automotive profiles
    carry per-core duty cycles of 0.2-0.75, so three concurrent cores
    routinely push combined demand past 1 and the observed effect is a
    graceful slide into bus-limited progress (per-core stretch 1.1-1.8
    in prototype measurements), not a divergence.  ``gain`` is the
    calibration knob fitted against prototype runs
    (``repro-perf calibrate-tlm``); it absorbs burst clustering (cores
    issue their chunk's transactions back to back) and the
    burst clustering of the chunked cores.

    ``skew`` models the fixed-priority order of the real arbiter
    (lower cpu id wins): the wait is tilted linearly across the active
    masters, ``(1 - skew)`` at the highest-priority one through
    ``(1 + skew)`` at the lowest, keeping the mean wait unchanged.
    Prototype measurements show the effect is strong -- per-core
    stretch spans 1.16 to 1.80 on a loaded 4-cpu cell -- and it shapes
    per-task response times directly because promoted tasks execute
    pinned to their home processor.

    ``shares``/``latencies`` carry one entry per master (0.0 for idle
    processors); entries are order-aligned with cpu ids.
    """
    if gain < 0:
        raise ValueError("gain must be non-negative")
    if not 0.0 <= skew <= 1.0:
        raise ValueError("skew must be in [0, 1]")
    others = [
        (share, latency)
        for cpu, (share, latency) in enumerate(zip(shares, latencies))
        if cpu != master and share > 0.0
    ]
    if not others:
        return 0.0
    load = sum(share for share, _ in others)
    mean_latency = sum(latency for _, latency in others) / len(others)
    wait = gain * load * (1.0 + load) * mean_latency
    if skew:
        active = sorted(
            cpu for cpu, share in enumerate(shares)
            if share > 0.0 or cpu == master
        )
        if len(active) > 1:
            rank = active.index(master)
            wait *= 1.0 + skew * (2.0 * rank / (len(active) - 1) - 1.0)
    return wait


def analytic_txn_waits(
    shares: List[float],
    latencies: List[float],
    gain: float = 1.0,
    skew: float = 0.0,
) -> List[float]:
    """Per-master analytic waits for every master in one pass.

    Semantically :func:`analytic_txn_wait` evaluated at each master,
    but the shared sums are computed once -- this is the TLM hot path
    (one call per distinct running set).  The per-master loads are
    derived by subtracting the master's own contribution from the
    totals, which can differ from the scalar function's direct
    summation by a final-ulp rounding; the calibration is run against
    this function, so the fitted residual covers it.
    """
    if gain < 0:
        raise ValueError("gain must be non-negative")
    if not 0.0 <= skew <= 1.0:
        raise ValueError("skew must be in [0, 1]")
    n = len(shares)
    active = []
    total_share = 0.0
    total_latency = 0.0
    for cpu in range(n):
        share = shares[cpu]
        if share > 0.0:
            active.append(cpu)
            total_share += share
            total_latency += latencies[cpu]
    waits = [0.0] * n
    for master in range(n):
        if shares[master] > 0.0:
            k_others = len(active) - 1
            load = total_share - shares[master]
            latency_sum = total_latency - latencies[master]
        else:
            k_others = len(active)
            load = total_share
            latency_sum = total_latency
        if k_others <= 0 or load <= 0.0:
            continue
        wait = gain * load * (1.0 + load) * (latency_sum / k_others)
        if skew:
            group = active if shares[master] > 0.0 else sorted(active + [master])
            if len(group) > 1:
                rank = group.index(master)
                wait *= 1.0 + skew * (2.0 * rank / (len(group) - 1) - 1.0)
        waits[master] = wait
    return waits


@dataclass
class RegisterTarget:
    """A simple device register block on the bus (e.g. MPIC registers).

    Register accesses on the OPB cost a few cycles; the paper's MPIC is
    configured and acknowledged through such accesses under mutual
    exclusion ("controller management is sequential").
    """

    name: str
    latency: int = 3

    def access_latency(self, words: int = 1) -> int:
        return self.latency * words
