"""The MicroBlaze soft-core model.

A core executes *nominal* work cycles -- the standalone, uncontended
execution time of a task -- while reproducing the shared-bus traffic
that execution implies.  The paper's measured slowdown comes from two
physical effects that this model carries:

1. every shared-memory transaction (instruction-cache refills and
   shared-data accesses, both served by the DDR behind the OPB) must
   win arbitration against the other cores, so waiting cycles stretch
   real time beyond nominal time;
2. context switches move register files and stacks through shared
   memory (see :mod:`repro.kernel.context`), adding both latency and
   more bus traffic.

The core also exposes the single MicroBlaze interrupt input wired to
the MPIC, with the enable/disable semantics the controller's
fixed-priority-timeout scheme relies on.

Execution comes in two flavours:

- :meth:`execute` -- profile-driven nominal-cycle segments used by the
  microkernel (interruptible, chunked);
- :meth:`run_program` -- instruction-accurate execution of
  :mod:`repro.hw.isa` programs, used by the substrate tests and the
  calibration microbenchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.hw.bus import OPBBus
from repro.hw.cache import DirectMappedICache
from repro.hw.memory import DDRMemory, LocalBRAM
from repro.sim.engine import Simulator
from repro.sim.events import Event


@dataclass(frozen=True)
class ExecutionProfile:
    """Shared-memory traffic characterisation of a task.

    ``access_period``: one shared (DDR) transaction every this many
    nominal cycles.  ``access_words``: words moved per transaction
    (cache-line refills and shared-data bursts folded together).  The
    nominal bus occupancy a core imposes is therefore
    ``latency(access_words) / access_period``.
    """

    access_period: int = 100
    access_words: int = 4

    def __post_init__(self):
        if self.access_period <= 0:
            raise ValueError("access_period must be positive")
        if self.access_words <= 0:
            raise ValueError("access_words must be positive")

    def nominal_bus_share(self, ddr: DDRMemory) -> float:
        """Fraction of the bus one core at this profile keeps busy."""
        return ddr.access_latency(self.access_words) / self.access_period


#: Default profile for code that was not characterised.
DEFAULT_PROFILE = ExecutionProfile(access_period=120, access_words=4)

#: Adaptive chunking expands an execution slice at most this many times
#: past ``chunk_cycles``.  A slice issues its shared-memory traffic in
#: one burst, so an unbounded slice (up to a whole 5M-cycle tick) would
#: serialise bus contention into long quiet stretches punctuated by
#: bursts and distort the slowdown the model exists to measure; 8x
#: keeps the contention granularity close to the fixed stride while
#: cutting per-tick wake-ups by the same factor.
ADAPTIVE_CAP_MULT = 8


class SegmentResult:
    """Progress report for an (possibly interrupted) execute() call."""

    def __init__(self):
        self.nominal_done = 0
        self.real_cycles = 0
        self.wait_cycles = 0
        self.completed = False


class MicroBlaze:
    """One soft core: interrupt input, caches, private memory, bus port."""

    def __init__(
        self,
        sim: Simulator,
        cpu_id: int,
        bus: OPBBus,
        ddr: DDRMemory,
        local_mem: Optional[LocalBRAM] = None,
        icache: Optional[DirectMappedICache] = None,
        chunk_cycles: int = 2_000,
        isa_mode: str = "block",
    ):
        if chunk_cycles <= 0:
            raise ValueError("chunk_cycles must be positive")
        if isa_mode not in ("block", "reference"):
            raise ValueError(f"unknown isa_mode {isa_mode!r}")
        self.sim = sim
        self.cpu_id = cpu_id
        self.bus = bus
        self.ddr = ddr
        self.local_mem = local_mem or LocalBRAM(cpu_id)
        self.icache = icache or DirectMappedICache(cpu_id)
        self.chunk_cycles = chunk_cycles
        #: Interpreter used by :class:`~repro.hw.isa.ISAExecutor` for
        #: programs on this core: ``"block"`` (predecoded basic-block,
        #: coalesced engine events) or ``"reference"`` (one event per
        #: instruction, the sentinel oracle).
        self.isa_mode = isa_mode
        #: Optional callable returning the absolute cycle of the next
        #: known preemption point (the SoC wires it to the system
        #: timer's ``next_tick``).  When set, :meth:`execute` expands
        #: its slice up to that boundary instead of stepping in fixed
        #: ``chunk_cycles`` strides -- promotions are tick-granular and
        #: asynchronous IRQs interrupt a slice mid-flight anyway, so
        #: the coarser stride only removes wake-ups, never preemption
        #: opportunities.
        self.preemption_hint: Optional[Callable[[], Optional[int]]] = None

        # Interrupt input (single line, like the real MicroBlaze).
        self.interrupts_enabled = True
        self.line_asserted = False
        self._irq_waiters: List[Event] = []
        self._enable_listeners: List[Callable[[bool], None]] = []

        # Statistics.
        self.busy_cycles = 0
        self.idle_cycles = 0
        self.nominal_cycles = 0
        self.stall_cycles = 0
        self._access_residue = 0.0
        self.register_upsets = 0
        # Fault observers: notified after each register upset so a
        # temporally decoupled ISA interpreter can invalidate the
        # basic-block window the upset landed inside.
        self._upset_listeners: List[Callable[[], None]] = []

    def add_upset_listener(self, listener: Callable[[], None]) -> None:
        """Register a callable invoked on every :meth:`register_upset`."""
        self._upset_listeners.append(listener)

    def remove_upset_listener(self, listener: Callable[[], None]) -> None:
        """Detach a listener registered with :meth:`add_upset_listener`."""
        if listener in self._upset_listeners:
            self._upset_listeners.remove(listener)

    def register_upset(self) -> int:
        """Transient-fault surface: record a register-file bit-flip.

        At the scheduling abstraction there is no architectural
        register file to corrupt, so the upset is accounted here and
        its *effect* -- silently corrupted task output, detected at
        completion -- is mapped by the injector onto the job currently
        running on this core (see :mod:`repro.faults.injector`).
        Returns the running total.
        """
        self.register_upsets += 1
        for listener in list(self._upset_listeners):
            listener()
        return self.register_upsets

    # -------------------------------------------------------------- interrupts
    def on_interrupt_line(self, asserted: bool) -> None:
        """Wired to the MPIC: the controller drives the line."""
        self.line_asserted = asserted
        if asserted and self.interrupts_enabled:
            self._wake_irq_waiters()

    def enable_interrupts(self) -> None:
        self.interrupts_enabled = True
        for listener in self._enable_listeners:
            listener(True)
        if self.line_asserted:
            self._wake_irq_waiters()

    def disable_interrupts(self) -> None:
        self.interrupts_enabled = False
        for listener in self._enable_listeners:
            listener(False)

    def add_enable_listener(self, listener: Callable[[bool], None]) -> None:
        """The MPIC mirrors the core's IE bit through this hook."""
        self._enable_listeners.append(listener)

    def irq_event(self) -> Event:
        """Event that fires when an interrupt is deliverable.

        Fires immediately if the line is already asserted with
        interrupts enabled.
        """
        event = Event(self.sim, name=f"cpu{self.cpu_id}.irq")
        if self.line_asserted and self.interrupts_enabled:
            event.succeed()
        else:
            self._irq_waiters.append(event)
        return event

    def _wake_irq_waiters(self) -> None:
        waiters, self._irq_waiters = self._irq_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    # ---------------------------------------------------------------- execution
    def execute(
        self,
        nominal_cycles: int,
        profile: ExecutionProfile = DEFAULT_PROFILE,
        result: Optional[SegmentResult] = None,
    ):
        """Generator: execute ``nominal_cycles`` of task work.

        Splits work into chunks; each chunk spends its local-compute
        portion as a plain timeout and issues its shared-memory
        transactions through the arbitrated bus.  Progress lands in
        ``result`` after every chunk, so an interrupting caller can see
        exactly how much nominal work completed (chunks are atomic).
        """
        if nominal_cycles < 0:
            raise ValueError("nominal_cycles must be non-negative")
        if result is None:
            result = SegmentResult()
        txn_latency = self.ddr.access_latency(profile.access_words)
        remaining = nominal_cycles
        while remaining > 0:
            chunk = min(self.chunk_cycles, remaining)
            hint = self.preemption_hint
            if hint is not None and not self.line_asserted:
                boundary = hint()
                if boundary is not None:
                    # Adaptive chunking: no scheduler event can land
                    # before ``boundary``, so run up to it, capped at
                    # ADAPTIVE_CAP_MULT strides to keep bus-contention
                    # granularity (an asserted line or an async IRQ
                    # still preempts the slice through the except path
                    # below).
                    headroom = boundary - self.sim.now
                    cap = self.chunk_cycles * ADAPTIVE_CAP_MULT
                    if headroom > cap:
                        headroom = cap
                    if headroom > chunk:
                        chunk = headroom if headroom < remaining else remaining
            exact = chunk / profile.access_period + self._access_residue
            n_txn = int(exact)
            self._access_residue = exact - n_txn
            bus_nominal = n_txn * txn_latency
            local = max(0, chunk - bus_nominal)
            start = self.sim.now
            try:
                if local:
                    yield self.sim.timeout(local)
                for _ in range(n_txn):
                    yield from self.bus.transfer(
                        self.cpu_id, self.ddr, profile.access_words
                    )
            except BaseException:
                # Interrupted mid-chunk: credit the nominal progress the
                # elapsed time represents (a real core loses only the
                # in-flight instruction, not the whole quantum).
                elapsed = self.sim.now - start
                done = min(chunk, elapsed)
                result.nominal_done += done
                result.real_cycles += elapsed
                result.wait_cycles += max(0, elapsed - done)
                self.busy_cycles += elapsed
                self.nominal_cycles += done
                self.stall_cycles += max(0, elapsed - done)
                raise
            elapsed = self.sim.now - start
            remaining -= chunk
            result.nominal_done += chunk
            result.real_cycles += elapsed
            result.wait_cycles += max(0, elapsed - chunk)
            self.busy_cycles += elapsed
            self.nominal_cycles += chunk
            self.stall_cycles += max(0, elapsed - chunk)
        result.completed = True
        return result

    def idle(self, cycles: int):
        """Generator: sit idle (accounted separately from busy time)."""
        start = self.sim.now
        yield self.sim.timeout(cycles)
        self.idle_cycles += self.sim.now - start

    # ----------------------------------------------------------------- queries
    @property
    def utilization_stats(self) -> dict:
        """Busy/idle/stall split of this core so far."""
        return {
            "cpu": self.cpu_id,
            "busy": self.busy_cycles,
            "idle": self.idle_cycles,
            "nominal": self.nominal_cycles,
            "stall": self.stall_cycles,
        }

    def __repr__(self) -> str:
        return f"<MicroBlaze cpu{self.cpu_id}>"
