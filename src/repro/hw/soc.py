"""System-on-chip assembly: Figure 1 of the paper in one object.

``SoC`` wires N MicroBlaze cores (each with local BRAM and I-cache) to
the shared OPB, the DDR, the boot BRAM, the Synchronization Engine,
the crossbar, the system timer and the multiprocessor interrupt
controller, exactly mirroring the block diagram.  The microkernel in
:mod:`repro.kernel` takes an SoC and runs on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hw.bus import OPBBus
from repro.hw.cache import DirectMappedICache
from repro.hw.crossbar import Crossbar
from repro.hw.intc import InterruptMode, MultiprocessorInterruptController
from repro.hw.memory import DDRMemory, LocalBRAM, SharedBRAM
from repro.hw.microblaze import MicroBlaze
from repro.hw.peripherals import CANInterface
from repro.hw.sync_engine import SynchronizationEngine
from repro.hw.timer import SystemTimer
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class SoCConfig:
    """Build-time parameters of the prototype.

    Defaults follow the paper: 50 MHz clock, scheduling tick 0.1 s
    (= 5,000,000 cycles), per-core I-cache, DDR latency 12 cycles.
    ``scale`` divides all *workload* times (not the structure) so that
    full experiments stay tractable in pure Python while every ratio
    the paper reports is preserved; scale=1 is the full-size system.
    """

    n_cpus: int = 2
    clock_hz: int = 50_000_000
    tick_cycles: int = 5_000_000
    mpic_ack_timeout: int = 500
    icache_lines: int = 256
    icache_line_words: int = 8
    local_mem_bytes: int = 64 * 1024
    ddr_bytes: int = 16 * 1024 * 1024
    chunk_cycles: int = 2_000
    #: When True (the default), cores expand execution slices up to the
    #: system timer's next tick (see ``MicroBlaze.preemption_hint``)
    #: instead of stepping in fixed ``chunk_cycles`` strides.  Set
    #: False to reproduce the fixed-stride bus-interleaving granularity.
    adaptive_chunking: bool = True
    #: ISA interpreter for ``run_program``-style execution on the
    #: cores: ``"block"`` (predecoded basic-block interpreter with
    #: coalesced engine events, the default) or ``"reference"`` (one
    #: event per instruction; the oracle the perf tier's ISA
    #: determinism sentinel compares against).
    isa_mode: str = "block"

    def __post_init__(self):
        if self.n_cpus < 1:
            raise ValueError("n_cpus must be >= 1")
        if self.tick_cycles <= 0:
            raise ValueError("tick_cycles must be positive")
        if self.isa_mode not in ("block", "reference"):
            raise ValueError(f"unknown isa_mode {self.isa_mode!r}")


class SoC:
    """The assembled multiprocessor."""

    def __init__(self, config: SoCConfig, sim: Optional[Simulator] = None,
                 metrics=None):
        self.config = config
        self.sim = sim or Simulator()
        self.metrics = metrics

        self.bus = OPBBus(self.sim, name="opb")
        self.ddr = DDRMemory(size=config.ddr_bytes)
        self.boot_bram = SharedBRAM()
        self.sync_engine = SynchronizationEngine(self.sim, metrics=metrics)
        self.crossbar = Crossbar(self.sim, n_ports=config.n_cpus)
        self.intc = MultiprocessorInterruptController(
            self.sim, n_cpus=config.n_cpus, ack_timeout=config.mpic_ack_timeout,
            metrics=metrics,
        )

        self.cores: List[MicroBlaze] = []
        for cpu in range(config.n_cpus):
            core = MicroBlaze(
                self.sim,
                cpu_id=cpu,
                bus=self.bus,
                ddr=self.ddr,
                local_mem=LocalBRAM(cpu, size=config.local_mem_bytes),
                icache=DirectMappedICache(
                    cpu,
                    n_lines=config.icache_lines,
                    line_words=config.icache_line_words,
                ),
                chunk_cycles=config.chunk_cycles,
                isa_mode=config.isa_mode,
            )
            self.intc.connect_cpu(cpu, core.on_interrupt_line)
            core.add_enable_listener(
                lambda enabled, cpu=cpu: self.intc.set_enabled(cpu, enabled)
            )
            self.cores.append(core)

        self.timer = SystemTimer(
            self.sim, self.intc, period=config.tick_cycles, name="system-timer"
        )
        if config.adaptive_chunking:
            timer = self.timer
            for core in self.cores:
                core.preemption_hint = lambda: timer.next_tick
        self.peripherals: Dict[str, CANInterface] = {}

    # -------------------------------------------------------------- builders
    def add_can_interface(self, name: str, task_name: Optional[str] = None) -> CANInterface:
        """Attach a CAN controller whose frames release ``task_name``."""
        if name in self.peripherals:
            raise ValueError(f"peripheral {name!r} already present")
        can = CANInterface(self.sim, self.intc, name=name, task_name=task_name)
        self.peripherals[name] = can
        return can

    # ---------------------------------------------------------------- queries
    def core(self, cpu: int) -> MicroBlaze:
        return self.cores[cpu]

    def utilization_report(self) -> List[dict]:
        """Per-core busy/idle/stall plus bus utilization."""
        rows = [core.utilization_stats for core in self.cores]
        rows.append(
            {
                "cpu": "bus",
                "busy": self.bus.stats.busy_cycles,
                "transactions": self.bus.stats.transactions,
                "utilization": self.bus.stats.utilization(max(1, self.sim.now)),
            }
        )
        return rows

    def seconds(self, cycles: int) -> float:
        """Convert cycles to wall seconds at the configured clock."""
        return cycles / self.config.clock_hz
