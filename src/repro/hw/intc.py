"""The multiprocessor interrupt controller (MPIC).

Reproduces the controller of Tumeo et al. (SAMOS 2007) that the paper
builds the microkernel on.  Features, quoting Section 3.2:

- *distribution*: an interrupt from a peripheral is offered to a free
  processor so several service routines can run in parallel;
- *fixed priority with timeout*: the offer goes to processors in fixed
  priority order; if the target does not acknowledge within the
  timeout (its interrupt reception is disabled while it handles
  another interrupt), the offer moves to the next processor;
- *booking*: a peripheral can be bound to one processor which is then
  the only one to receive its interrupts;
- *multicast/broadcast*: one signal propagated to several processors
  (e.g. a global timer);
- *inter-processor interrupts* (IPIs): any processor can interrupt any
  other (used to start context switches).

Processors interact with the controller through bus register accesses
(acknowledge, end-of-interrupt); the controller itself is sequential
("controller management is sequential, but the execution of the
interrupt handlers is parallel"), modelled by routing those register
accesses over the shared OPB.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.hw.bus import RegisterTarget
from repro.sim.engine import Simulator


class InterruptMode(enum.Enum):
    """Delivery policy for one interrupt source."""

    DISTRIBUTE = "distribute"
    BOOKED = "booked"
    MULTICAST = "multicast"
    BROADCAST = "broadcast"


@dataclass
class InterruptSource:
    """Configuration of one interrupt input line."""

    source_id: int
    name: str
    mode: InterruptMode = InterruptMode.DISTRIBUTE
    booked_cpu: Optional[int] = None
    multicast_cpus: Set[int] = field(default_factory=set)

    def __post_init__(self):
        if self.mode is InterruptMode.BOOKED and self.booked_cpu is None:
            raise ValueError(f"{self.name}: booked source needs booked_cpu")
        if self.mode is InterruptMode.MULTICAST and not self.multicast_cpus:
            raise ValueError(f"{self.name}: multicast source needs target cpus")


@dataclass
class PendingInterrupt:
    """One raised interrupt travelling through the controller."""

    source: InterruptSource
    payload: Any
    raised_at: int
    offered_to: Optional[int] = None
    attempts: int = 0
    delivered_at: Optional[int] = None


class MultiprocessorInterruptController:
    """The MPIC state machine.

    Parameters
    ----------
    sim:
        Simulator.
    n_cpus:
        Number of MicroBlaze cores attached.
    ack_timeout:
        Cycles a distributed offer waits for an acknowledge before
        moving to the next processor in the priority list.
    """

    #: Bus register block (acks/EOIs/configuration go through the OPB).
    REGISTERS = RegisterTarget(name="mpic", latency=3)

    def __init__(self, sim: Simulator, n_cpus: int, ack_timeout: int = 500,
                 metrics=None):
        if n_cpus < 1:
            raise ValueError("n_cpus must be >= 1")
        if ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        self.sim = sim
        self.n_cpus = n_cpus
        self.ack_timeout = ack_timeout
        # Observability: delivery-latency histograms (IPIs tracked
        # separately -- their raise->acknowledge path is the context
        # switch trigger the paper cares about) and per-source
        # distribution counters.  ``metrics=None`` keeps every hot
        # path at a single attribute check.
        self.metrics = metrics
        self._m_latency = self._m_ipi_latency = self._m_timeouts = None
        if metrics is not None:
            self._m_latency = metrics.histogram(
                "mpic_delivery_cycles",
                help="cycles between interrupt raise and acknowledge",
            )
            self._m_ipi_latency = metrics.histogram(
                "ipi_delivery_cycles",
                help="cycles between IPI send and acknowledge",
            )
            self._m_timeouts = metrics.counter(
                "mpic_timeouts_total",
                help="distributed offers re-routed after ack timeout",
            )

        self.sources: Dict[int, InterruptSource] = {}
        self._next_source_id = 0
        # Per-cpu offers awaiting acknowledge, FIFO.
        self._offers: List[Deque[PendingInterrupt]] = [deque() for _ in range(n_cpus)]
        # Interrupt currently being serviced by each cpu (None = free).
        self._in_service: List[Optional[PendingInterrupt]] = [None] * n_cpus
        # Per-cpu "reception enabled" flag (MicroBlaze IE bit).
        self._enabled: List[bool] = [True] * n_cpus
        # Distributed interrupts that found no free processor yet.
        self._parked: Deque[PendingInterrupt] = deque()
        # Line-change callbacks into the cores.
        self._line_callbacks: List[Optional[Callable[[bool], None]]] = [None] * n_cpus

        # Statistics.
        self.delivered = 0
        self.timeouts = 0
        self.ipis_sent = 0
        self.max_parallel_handlers = 0

        # Transient-fault surface (armed by repro.faults).  ``None`` on
        # the fault-free path, so delivery pays one attribute check.
        self._ipi_fault: Optional[tuple] = None  # (mode, until, arg)
        self.ipis_dropped = 0
        self.ipis_duplicated = 0
        self.ipis_delayed = 0

    # ----------------------------------------------------------- configuration
    def connect_cpu(self, cpu: int, line_callback: Callable[[bool], None]) -> None:
        """Attach a core's interrupt line (called with True/False)."""
        self._line_callbacks[cpu] = line_callback

    def add_source(
        self,
        name: str,
        mode: InterruptMode = InterruptMode.DISTRIBUTE,
        booked_cpu: Optional[int] = None,
        multicast_cpus: Optional[Set[int]] = None,
    ) -> InterruptSource:
        """Register a peripheral interrupt input."""
        source = InterruptSource(
            source_id=self._next_source_id,
            name=name,
            mode=mode,
            booked_cpu=booked_cpu,
            multicast_cpus=set(multicast_cpus or ()),
        )
        self.sources[source.source_id] = source
        self._next_source_id += 1
        return source

    def book(self, source: InterruptSource, cpu: int) -> None:
        """Book a source so only ``cpu`` receives it from now on."""
        if not 0 <= cpu < self.n_cpus:
            raise ValueError(f"cpu {cpu} out of range")
        source.mode = InterruptMode.BOOKED
        source.booked_cpu = cpu

    def unbook(self, source: InterruptSource) -> None:
        """Return a booked source to distributed delivery."""
        source.mode = InterruptMode.DISTRIBUTE
        source.booked_cpu = None

    # -------------------------------------------------------------- interrupts
    def raise_interrupt(self, source: InterruptSource, payload: Any = None) -> None:
        """A peripheral asserts its interrupt line."""
        if source.source_id not in self.sources:
            raise ValueError(f"unknown source {source.name}")
        if source.mode is InterruptMode.BROADCAST:
            targets = range(self.n_cpus)
        elif source.mode is InterruptMode.MULTICAST:
            targets = sorted(source.multicast_cpus)
        elif source.mode is InterruptMode.BOOKED:
            targets = [source.booked_cpu]
        else:
            targets = None

        if targets is None:
            pending = PendingInterrupt(source, payload, raised_at=self.sim.now)
            self._distribute(pending, first_cpu=0)
        else:
            # Multicast/broadcast/booked: one pending entry per target,
            # no timeout re-routing (the target is fixed by design).
            for cpu in targets:
                pending = PendingInterrupt(
                    source, payload, raised_at=self.sim.now, offered_to=cpu
                )
                self._offers[cpu].append(pending)
                self._update_line(cpu)

    def send_ipi(self, from_cpu: int, to_cpu: int, payload: Any = None) -> None:
        """Inter-processor interrupt: fixed target, no re-routing."""
        if not 0 <= to_cpu < self.n_cpus:
            raise ValueError(f"ipi target {to_cpu} out of range")
        self.ipis_sent += 1
        source = self._ipi_source(from_cpu)
        pending = PendingInterrupt(source, payload, raised_at=self.sim.now, offered_to=to_cpu)
        if self._ipi_fault is not None and not self._apply_ipi_fault(pending, to_cpu):
            return
        self._offers[to_cpu].append(pending)
        self._update_line(to_cpu)

    # -------------------------------------------------------- fault injection
    def inject_ipi_fault(self, mode: str, until: int, arg: int = 0) -> None:
        """Arm an IPI delivery-fault window (transient-fault surface).

        Every IPI sent while ``sim.now <= until`` is affected:
        ``"drop"`` loses it, ``"duplicate"`` delivers it twice,
        ``"delay"`` defers delivery by ``arg`` cycles.  The window
        disarms itself on the first send past ``until``; only one
        window can be active at a time (last call wins).
        """
        if mode not in ("drop", "duplicate", "delay"):
            raise ValueError(f"unknown ipi fault mode {mode!r}")
        if mode == "delay" and arg <= 0:
            raise ValueError("delay faults need arg > 0 cycles")
        self._ipi_fault = (mode, until, arg)

    def clear_ipi_fault(self) -> None:
        """Disarm any active IPI fault window."""
        self._ipi_fault = None

    def _apply_ipi_fault(self, pending: PendingInterrupt, to_cpu: int) -> bool:
        """Apply the armed fault; returns True when normal delivery
        should still happen (window expired, or duplicate mode)."""
        mode, until, arg = self._ipi_fault
        if self.sim.now > until:
            self._ipi_fault = None
            return True
        if mode == "drop":
            self.ipis_dropped += 1
            return False
        if mode == "duplicate":
            self.ipis_duplicated += 1
            dup = PendingInterrupt(
                pending.source, pending.payload,
                raised_at=self.sim.now, offered_to=to_cpu,
            )
            self._offers[to_cpu].append(dup)
            return True
        # delay: enqueue after ``arg`` cycles instead of now.
        self.ipis_delayed += 1

        def deliver(pending=pending, to_cpu=to_cpu):
            self._offers[to_cpu].append(pending)
            self._update_line(to_cpu)

        self.sim.schedule(arg, deliver)
        return False

    _ipi_sources: Dict[int, InterruptSource] = None  # set lazily per instance

    def _ipi_source(self, from_cpu: int) -> InterruptSource:
        if self._ipi_sources is None:
            self._ipi_sources = {}
        if from_cpu not in self._ipi_sources:
            self._ipi_sources[from_cpu] = self.add_source(
                f"ipi-from-cpu{from_cpu}", mode=InterruptMode.BOOKED, booked_cpu=from_cpu
            )
        return self._ipi_sources[from_cpu]

    # -------------------------------------------------------- core-side access
    def set_enabled(self, cpu: int, enabled: bool) -> None:
        """Mirror of the core's interrupt-enable bit."""
        self._enabled[cpu] = enabled
        self._update_line(cpu)
        if enabled:
            self._retry_parked()

    def cpu_is_free(self, cpu: int) -> bool:
        """Free = reception enabled and not servicing an interrupt."""
        return self._enabled[cpu] and self._in_service[cpu] is None

    def acknowledge(self, cpu: int) -> Tuple[InterruptSource, Any]:
        """The core's handler claims the highest-pending offer.

        Models the OPB register read; returns (source, payload).
        Raises if nothing is pending (spurious interrupt).
        """
        if not self._offers[cpu]:
            raise RuntimeError(f"cpu {cpu}: spurious interrupt acknowledge")
        pending = self._offers[cpu].popleft()
        pending.delivered_at = self.sim.now
        self._in_service[cpu] = pending
        self.delivered += 1
        busy = sum(1 for entry in self._in_service if entry is not None)
        self.max_parallel_handlers = max(self.max_parallel_handlers, busy)
        if self.metrics is not None:
            latency = self.sim.now - pending.raised_at
            is_ipi = pending.source.name.startswith("ipi-from-cpu")
            (self._m_ipi_latency if is_ipi else self._m_latency).observe(latency)
            self.metrics.counter(
                "mpic_delivered_total",
                labels={"source": pending.source.name},
                help="interrupts delivered, by source",
            ).inc()
        self._update_line(cpu)
        return pending.source, pending.payload

    def complete(self, cpu: int) -> None:
        """End-of-interrupt: the cpu becomes free again."""
        if self._in_service[cpu] is None:
            raise RuntimeError(f"cpu {cpu}: EOI without in-service interrupt")
        self._in_service[cpu] = None
        self._update_line(cpu)
        self._retry_parked()

    def pending_for(self, cpu: int) -> int:
        """Offers currently asserted towards ``cpu`` (diagnostic)."""
        return len(self._offers[cpu])

    # ---------------------------------------------------------------- internals
    def _distribute(self, pending: PendingInterrupt, first_cpu: int) -> None:
        """Offer a distributed interrupt to the first free processor at
        or after ``first_cpu`` in the fixed priority order."""
        for cpu in list(range(first_cpu, self.n_cpus)) + list(range(0, first_cpu)):
            if self.cpu_is_free(cpu) and not self._offers[cpu]:
                pending.offered_to = cpu
                pending.attempts += 1
                self._offers[cpu].append(pending)
                self._update_line(cpu)
                self._arm_timeout(pending, cpu)
                return
        # Nobody free: park until a cpu completes.
        pending.offered_to = None
        self._parked.append(pending)

    def _arm_timeout(self, pending: PendingInterrupt, cpu: int) -> None:
        def on_timeout() -> None:
            # Still sitting unclaimed in this cpu's offer queue?
            if pending.delivered_at is None and pending in self._offers[cpu]:
                self._offers[cpu].remove(pending)
                self._update_line(cpu)
                self.timeouts += 1
                if self._m_timeouts is not None:
                    self._m_timeouts.inc()
                self._distribute(pending, first_cpu=(cpu + 1) % self.n_cpus)

        self.sim.schedule(self.ack_timeout, on_timeout)

    def _retry_parked(self) -> None:
        parked, self._parked = self._parked, deque()
        for pending in parked:
            self._distribute(pending, first_cpu=0)

    def _update_line(self, cpu: int) -> None:
        callback = self._line_callbacks[cpu]
        if callback is None:
            return
        asserted = bool(self._offers[cpu]) and self._enabled[cpu]
        callback(asserted)
