"""Peripheral models that raise aperiodic interrupts.

"Peripherals can be interfaces to sensors and data acquisition
systems, like for example Controller Area Networks (CANs) interfaces,
widely used in automotive applications."  A peripheral here is a
programmable interrupt generator: it raises its MPIC source at given
instants (or from a stochastic arrival process fixed by seed) and
carries a payload naming the aperiodic task to release -- exactly the
camera/CAN event path that triggers the susan workload in the paper.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, List, Optional, Sequence

from repro.hw.bus import RegisterTarget
from repro.hw.intc import InterruptMode, MultiprocessorInterruptController
from repro.sim.engine import Simulator


class InterruptingPeripheral:
    """Base: raises its interrupt source at programmed instants."""

    def __init__(
        self,
        sim: Simulator,
        intc: MultiprocessorInterruptController,
        name: str,
        register_latency: int = 3,
    ):
        self.sim = sim
        self.intc = intc
        self.name = name
        self.registers = RegisterTarget(name=name, latency=register_latency)
        self.source = intc.add_source(name, mode=InterruptMode.DISTRIBUTE)
        self.events_raised = 0

    def program_events(self, times: Iterable[int], payload_factory=None) -> None:
        """Schedule interrupt assertions at absolute cycle times."""
        for time in sorted(times):
            payload = payload_factory(time) if payload_factory else {"peripheral": self.name, "time": time}
            self.sim.schedule_at(time, lambda p=payload: self._fire(p))

    def _fire(self, payload: Any) -> None:
        self.events_raised += 1
        self.intc.raise_interrupt(self.source, payload=payload)


class CANInterface(InterruptingPeripheral):
    """A CAN controller delivering frames that trigger aperiodic tasks.

    Frames arrive either at explicit times (deterministic experiments,
    as in Figure 4 where a single aperiodic release is measured) or as
    a Poisson process with a seeded RNG (ablation studies).
    """

    def __init__(
        self,
        sim: Simulator,
        intc: MultiprocessorInterruptController,
        name: str = "can0",
        task_name: Optional[str] = None,
    ):
        super().__init__(sim, intc, name)
        self.task_name = task_name
        self.frames: List[int] = []

    def program_frames(self, times: Sequence[int]) -> None:
        """Deliver one frame (one aperiodic release) per instant."""
        self.frames = sorted(times)
        self.program_events(
            self.frames,
            payload_factory=lambda t: {
                "peripheral": self.name,
                "kind": "aperiodic",
                "task": self.task_name,
                "time": t,
            },
        )

    def program_poisson(
        self, rate_per_cycle: float, horizon: int, seed: int
    ) -> List[int]:
        """Poisson frame arrivals over [0, horizon); returns the times."""
        if rate_per_cycle <= 0:
            raise ValueError("rate must be positive")
        rng = random.Random(seed)
        times: List[int] = []
        t = 0.0
        while True:
            t += rng.expovariate(rate_per_cycle)
            if t >= horizon:
                break
            times.append(int(t))
        self.program_frames(times)
        return times
