"""Memory models: local BRAM, shared boot BRAM, external DDR.

Latencies follow the paper: local memories and cache hits cost 1
cycle; uncached accesses over the OPB to the DDR cost 12 cycles (the
paper: "bringing down access latency from 12 to 1 clock cycle in case
of hit").  Word-granular storage is provided so the ISA substrate can
actually load/store data, while the scheduling-level models only use
the latency interface.
"""

from __future__ import annotations

from typing import Dict, Optional


class MemoryError_(Exception):
    """Access outside a region or misaligned (name avoids builtin)."""


class WordStorage:
    """Sparse word-addressable storage (4-byte words, byte addresses)."""

    def __init__(self, base: int, size: int, name: str):
        if size <= 0 or size % 4:
            raise ValueError(f"{name}: size must be a positive multiple of 4")
        if base % 4:
            raise ValueError(f"{name}: base must be word aligned")
        self.base = base
        self.size = size
        self.name = name
        self._words: Dict[int, int] = {}
        self.bitflips = 0
        # Fault observers: called (addr, bit) *before* a flip_bit
        # mutation lands, so temporally decoupled executors can
        # invalidate work speculated past the fault instant.
        self._fault_listeners: list = []

    def add_fault_listener(self, listener) -> None:
        """Register ``listener(addr, bit)``, called before each flip."""
        self._fault_listeners.append(listener)

    def remove_fault_listener(self, listener) -> None:
        """Detach a listener registered with :meth:`add_fault_listener`."""
        if listener in self._fault_listeners:
            self._fault_listeners.remove(listener)

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def _index(self, addr: int) -> int:
        if addr % 4:
            raise MemoryError_(f"{self.name}: misaligned access at {addr:#x}")
        if not self.contains(addr):
            raise MemoryError_(
                f"{self.name}: address {addr:#x} outside "
                f"[{self.base:#x}, {self.base + self.size:#x})"
            )
        return (addr - self.base) // 4

    def read_word(self, addr: int) -> int:
        """32-bit read; uninitialised words read as zero."""
        return self._words.get(self._index(addr), 0)

    def write_word(self, addr: int, value: int) -> None:
        """32-bit write (value truncated to 32 bits)."""
        self._words[self._index(addr)] = value & 0xFFFFFFFF

    def load(self, addr: int, words) -> None:
        """Bulk initialisation from an iterable of words."""
        for i, word in enumerate(words):
            self.write_word(addr + 4 * i, word)

    def flip_bit(self, addr: int, bit: int) -> int:
        """Transient-fault surface: XOR one bit of the stored word.

        Models an SEU in the memory array.  Returns the corrupted
        value.  Address checking is the same as a normal access; the
        flip itself is free (it is an environmental event, not a bus
        transaction).
        """
        if not 0 <= bit < 32:
            raise ValueError("bit must be in [0, 32)")
        for listener in list(self._fault_listeners):
            listener(addr, bit)
        value = self.read_word(addr) ^ (1 << bit)
        self._words[self._index(addr)] = value
        self.bitflips += 1
        return value


class LocalBRAM(WordStorage):
    """Per-processor private memory (stack/heap of the running thread).

    Not connected to the OPB: accesses cost ``LATENCY`` cycles and never
    contend.  The kernel relocates a task's stack here on context switch.
    """

    LATENCY = 1

    def __init__(self, cpu_id: int, size: int = 64 * 1024, base: int = 0x0000_0000):
        super().__init__(base, size, name=f"lmb{cpu_id}")
        self.cpu_id = cpu_id

    def access_latency(self, words: int = 1) -> int:
        return self.LATENCY * words


class SharedBRAM(WordStorage):
    """On-bus BRAM used for boot code; modest latency, contended."""

    FIRST_WORD = 2
    PER_WORD = 1

    def __init__(self, size: int = 16 * 1024, base: int = 0x8000_0000):
        super().__init__(base, size, name="boot-bram")

    def access_latency(self, words: int = 1) -> int:
        if words < 1:
            raise ValueError("words must be >= 1")
        return self.FIRST_WORD + self.PER_WORD * (words - 1)


class DDRMemory(WordStorage):
    """External DDR holding shared instructions and data.

    First access in a transaction pays the full 12-cycle penalty; burst
    continuation beats stream at ``PER_WORD`` cycles, matching the
    cache-line refill behaviour of the OPB DDR controller.
    """

    FIRST_WORD = 12
    PER_WORD = 2

    def __init__(self, size: int = 16 * 1024 * 1024, base: int = 0x4000_0000):
        super().__init__(base, size, name="ddr")

    def access_latency(self, words: int = 1) -> int:
        if words < 1:
            raise ValueError("words must be >= 1")
        return self.FIRST_WORD + self.PER_WORD * (words - 1)
