"""The Synchronization Engine coprocessor.

The paper's architecture "adopts an ad-hoc coprocessor (Synchronization
Engine) that provides hardware support for lock and barrier
synchronization primitives".  Lock/barrier state lives in the
coprocessor, so acquiring a free lock costs a single register access
instead of a shared-memory spin; contended acquires block without bus
traffic (the engine notifies the waiting core when the lock is handed
over).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.hw.bus import RegisterTarget
from repro.sim.engine import Simulator
from repro.sim.events import Event


class SynchronizationEngine:
    """Hardware lock and barrier coprocessor.

    When given a ``trace`` recorder the engine emits the concurrency
    event vocabulary (``acquire`` at grant time, ``unlock``,
    ``barrier`` per arrival) that the race/deadlock checker in
    :mod:`repro.lint.concurrency` consumes.  When given a ``metrics``
    registry it observes lock wait time (request -> grant) and hold
    time (grant -> release) distributions.
    """

    REGISTERS = RegisterTarget(name="sync-engine", latency=2)

    def __init__(self, sim: Simulator, n_locks: int = 32, n_barriers: int = 8,
                 trace=None, metrics=None):
        if n_locks < 1 or n_barriers < 0:
            raise ValueError("need at least one lock")
        self.sim = sim
        self.trace = trace
        self.n_locks = n_locks
        self.n_barriers = n_barriers
        self._owners: List[Optional[int]] = [None] * n_locks
        self._waiters: List[Deque[tuple]] = [deque() for _ in range(n_locks)]
        self._granted_at: List[Optional[int]] = [None] * n_locks
        self._barrier_width: Dict[int, int] = {}
        self._barrier_arrived: Dict[int, List[Event]] = {}
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self._m_wait = self._m_hold = None
        if metrics is not None:
            self._m_wait = metrics.histogram(
                "sync_lock_wait_cycles",
                help="cycles between a lock request and its grant",
            )
            self._m_hold = metrics.histogram(
                "sync_lock_hold_cycles",
                help="cycles a granted lock was held before release",
            )

    def _record(self, kind: str, cpu: int, info: str) -> None:
        if self.trace is not None:
            self.trace.record(self.sim.now, kind, cpu=cpu, info=info)

    # ------------------------------------------------------------------- locks
    def acquire(self, lock_id: int, cpu: int) -> Event:
        """Request a lock; the returned event fires when it is granted."""
        self._check_lock(lock_id)
        event = Event(self.sim, name=f"lock{lock_id}.grant")
        if self._owners[lock_id] is None:
            self._owners[lock_id] = cpu
            self.acquisitions += 1
            self._grant_metrics(lock_id, waited=0)
            self._record("acquire", cpu, f"lock={lock_id}")
            event.succeed(lock_id)
        else:
            if self._owners[lock_id] == cpu:
                raise RuntimeError(f"cpu {cpu} re-acquiring held lock {lock_id}")
            self.contended_acquisitions += 1
            self._waiters[lock_id].append((cpu, event, self.sim.now))
        return event

    def _grant_metrics(self, lock_id: int, waited: int) -> None:
        self._granted_at[lock_id] = self.sim.now
        if self._m_wait is not None:
            self._m_wait.observe(waited)

    def try_acquire(self, lock_id: int, cpu: int) -> bool:
        """Non-blocking acquire; True when the lock was free."""
        self._check_lock(lock_id)
        if self._owners[lock_id] is None:
            self._owners[lock_id] = cpu
            self.acquisitions += 1
            self._grant_metrics(lock_id, waited=0)
            self._record("acquire", cpu, f"lock={lock_id}")
            return True
        return False

    def release(self, lock_id: int, cpu: int) -> None:
        """Release; the oldest waiter (FIFO) is granted immediately."""
        self._check_lock(lock_id)
        if self._owners[lock_id] != cpu:
            raise RuntimeError(
                f"cpu {cpu} releasing lock {lock_id} owned by {self._owners[lock_id]}"
            )
        if self._m_hold is not None and self._granted_at[lock_id] is not None:
            self._m_hold.observe(self.sim.now - self._granted_at[lock_id])
        self._granted_at[lock_id] = None
        self._record("unlock", cpu, f"lock={lock_id}")
        if self._waiters[lock_id]:
            next_cpu, event, requested_at = self._waiters[lock_id].popleft()
            self._owners[lock_id] = next_cpu
            self.acquisitions += 1
            self._grant_metrics(lock_id, waited=self.sim.now - requested_at)
            self._record("acquire", next_cpu, f"lock={lock_id}")
            event.succeed(lock_id)
        else:
            self._owners[lock_id] = None

    def owner(self, lock_id: int) -> Optional[int]:
        self._check_lock(lock_id)
        return self._owners[lock_id]

    def _check_lock(self, lock_id: int) -> None:
        if not 0 <= lock_id < self.n_locks:
            raise ValueError(f"lock {lock_id} out of range 0..{self.n_locks - 1}")

    # ----------------------------------------------------------------- barriers
    def configure_barrier(self, barrier_id: int, width: int) -> None:
        """Set how many arrivals release the barrier."""
        if not 0 <= barrier_id < self.n_barriers:
            raise ValueError(f"barrier {barrier_id} out of range")
        if width < 1:
            raise ValueError("barrier width must be >= 1")
        self._barrier_width[barrier_id] = width
        self._barrier_arrived.setdefault(barrier_id, [])

    def barrier_wait(self, barrier_id: int, cpu: int) -> Event:
        """Arrive at the barrier; the event fires when all have arrived."""
        if barrier_id not in self._barrier_width:
            raise RuntimeError(f"barrier {barrier_id} not configured")
        event = Event(self.sim, name=f"barrier{barrier_id}.release")
        arrived = self._barrier_arrived[barrier_id]
        arrived.append(event)
        self._record(
            "barrier", cpu,
            f"barrier={barrier_id} width={self._barrier_width[barrier_id]}",
        )
        if len(arrived) >= self._barrier_width[barrier_id]:
            self._barrier_arrived[barrier_id] = []
            for waiter in arrived:
                waiter.succeed(barrier_id)
        return event

    def barrier_count(self, barrier_id: int) -> int:
        """How many cores are currently parked at the barrier."""
        return len(self._barrier_arrived.get(barrier_id, []))
