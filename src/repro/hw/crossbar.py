"""The crossbar for small inter-processor data passing.

The paper: "a Cross-Bar module that allows inter processor
communication for small data passing without using the shared bus."
Modelled as an NxN mesh of word-FIFO channels with a fixed per-word
transfer latency and no arbitration against the OPB (that is its whole
point).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.resources import Store


class Crossbar:
    """NxN word-granular message crossbar."""

    #: Cycles to move one word between two ports.
    WORD_LATENCY = 2

    def __init__(self, sim: Simulator, n_ports: int):
        if n_ports < 1:
            raise ValueError("n_ports must be >= 1")
        self.sim = sim
        self.n_ports = n_ports
        self._channels: Dict[Tuple[int, int], Store] = {
            (src, dst): Store(sim, name=f"xbar{src}->{dst}")
            for src in range(n_ports)
            for dst in range(n_ports)
            if src != dst
        }
        self.words_sent = 0

    def _channel(self, src: int, dst: int) -> Store:
        if src == dst:
            raise ValueError("crossbar has no loopback channels")
        try:
            return self._channels[(src, dst)]
        except KeyError:
            raise ValueError(f"port pair ({src}, {dst}) out of range") from None

    def send(self, src: int, dst: int, word: Any):
        """Generator: push one word src->dst after the port latency."""
        channel = self._channel(src, dst)
        yield self.sim.timeout(self.WORD_LATENCY)
        channel.put(word)
        self.words_sent += 1

    def receive(self, src: int, dst: int) -> Event:
        """Event firing with the next word on the src->dst channel."""
        return self._channel(src, dst).get()

    def depth(self, src: int, dst: int) -> int:
        """Words currently queued on a channel."""
        return len(self._channel(src, dst))
