"""Direct-mapped instruction cache.

The paper: "Instruction cache is implemented for each processor,
bringing down access latency from 12 to 1 clock cycle in case of hit."
The cache refills whole lines from DDR over the OPB, so misses both
delay the core and add bus traffic (the contention the paper blames for
the real-vs-simulated gap).

Two interfaces:

- address-accurate :meth:`lookup` / :meth:`fill_line` for the ISA
  substrate;
- a statistical :meth:`miss_count` helper used by the quantum-level
  task execution model, which converts a compute segment into the
  number of line refills it implies at the task's characterised miss
  rate (deterministic rounding keeps runs reproducible).
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class DirectMappedICache:
    """A direct-mapped cache with ``n_lines`` lines of ``line_words`` words."""

    def __init__(self, cpu_id: int, n_lines: int = 256, line_words: int = 8):
        if n_lines <= 0 or line_words <= 0:
            raise ValueError("n_lines and line_words must be positive")
        if n_lines & (n_lines - 1):
            raise ValueError("n_lines must be a power of two")
        self.cpu_id = cpu_id
        self.n_lines = n_lines
        self.line_words = line_words
        self.line_bytes = line_words * 4
        self._tags: List[Optional[int]] = [None] * n_lines
        self.hits = 0
        self.misses = 0
        self._miss_residue = 0.0

    # ----------------------------------------------------------- address mode
    def _split(self, addr: int) -> Tuple[int, int]:
        line_addr = addr // self.line_bytes
        index = line_addr % self.n_lines
        tag = line_addr // self.n_lines
        return index, tag

    def lookup(self, addr: int) -> bool:
        """True on hit; updates hit/miss counters."""
        index, tag = self._split(addr)
        if self._tags[index] == tag:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill_line(self, addr: int) -> None:
        """Install the line containing ``addr``."""
        index, tag = self._split(addr)
        self._tags[index] = tag

    def invalidate(self) -> None:
        """Flush the whole cache (used across context switches when the
        incoming task's code footprint displaces the old one)."""
        self._tags = [None] * self.n_lines

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------- statistical mode
    def miss_count(self, instructions: int, miss_rate: float) -> int:
        """Deterministic number of misses in a segment of instructions.

        Carries fractional residue across calls so that arbitrarily
        sliced segments produce the same total miss count as one big
        segment (a conservation property the tests check).
        """
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        if not 0.0 <= miss_rate <= 1.0:
            raise ValueError("miss_rate must be within [0, 1]")
        exact = instructions * miss_rate + self._miss_residue
        misses = int(exact)
        self._miss_residue = exact - misses
        self.misses += misses
        self.hits += instructions - misses
        return misses
