"""``repro-verify``: one command that runs every repo health gate.

The repo's correctness story is spread over two surfaces: the tier-1
pytest suite (``tests/``, fast by construction) and the four
subsystem CLIs' ``--self-check`` modes (``repro-lint``,
``repro-perf``, ``repro-obs``, ``repro-faults``), each of which
smoke-runs its machinery against built-in fixtures and enforces the
determinism invariants the test suite samples.  ``repro-verify`` runs
all of them and exits non-zero if *any* fails -- the single command a
pre-push hook or CI job needs::

    repro-verify                  # tier-1 pytest + all four self-checks
    repro-verify --skip-tier1     # self-checks only (seconds)
    repro-verify --only perf obs  # a subset of the self-checks
    repro-verify --list           # show what would run

The tier-1 suite runs as a ``python -m pytest`` subprocess with
``PYTHONPATH=src`` prepended, matching the repo's documented
invocation; the self-checks run in-process (they are plain functions
returning an exit code).
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import __version__

__all__ = ["CHECKS", "run_tier1", "main"]


def _lint_check(out=None) -> int:
    from repro.lint.cli import self_check
    return self_check(out=out)


def _perf_check(out=None) -> int:
    from repro.perf.cli import self_check
    return self_check(out=out)


def _obs_check(out=None) -> int:
    from repro.obs.cli import self_check
    return self_check(out=out)


def _faults_check(out=None) -> int:
    from repro.faults.cli import self_check
    return self_check(out=out)


#: Name -> in-process self-check callable, in run order.
CHECKS: Dict[str, Callable[..., int]] = {
    "lint": _lint_check,
    "perf": _perf_check,
    "obs": _obs_check,
    "faults": _faults_check,
}


def run_tier1(pytest_args: Optional[Sequence[str]] = None,
              repo_root: Optional[str] = None) -> int:
    """The tier-1 pytest suite as a subprocess; returns its exit code.

    A subprocess (not ``pytest.main``) keeps the suite's imports,
    fixtures and monkeypatching out of this process -- self-checks
    that ran before or after see a pristine interpreter.
    """
    root = repo_root or os.getcwd()
    env = dict(os.environ)
    src = os.path.join(root, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    command = [sys.executable, "-m", "pytest", "-q"]
    command.extend(pytest_args or [])
    completed = subprocess.run(command, cwd=root, env=env)
    return completed.returncode


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="run the tier-1 test suite and every subsystem "
        "self-check; exit non-zero if any fails",
    )
    parser.add_argument("--skip-tier1", action="store_true",
                        help="run only the subsystem self-checks")
    parser.add_argument("--only", nargs="+", choices=sorted(CHECKS),
                        metavar="CHECK", default=None,
                        help=f"run only these self-checks "
                        f"({', '.join(CHECKS)})")
    parser.add_argument("--list", action="store_true",
                        help="list the gates that would run and exit")
    parser.add_argument("--pytest-args", nargs=argparse.REMAINDER,
                        default=None,
                        help="everything after this goes to pytest "
                        "verbatim (e.g. --pytest-args -x -k obs)")
    args = parser.parse_args(argv)

    selected = list(args.only) if args.only else list(CHECKS)
    if args.list:
        if not args.skip_tier1 and not args.only:
            print("tier1   : PYTHONPATH=src python -m pytest -q")
        for name in selected:
            print(f"{name:<8}: repro-{name} --self-check")
        return 0

    failures: List[str] = []
    timings: List[Tuple[str, float, int]] = []

    def run_gate(name: str, runner: Callable[[], int]) -> None:
        print(f"=== {name} ===")
        started = time.perf_counter()
        code = runner()
        elapsed = time.perf_counter() - started
        timings.append((name, elapsed, code))
        if code != 0:
            failures.append(name)
        print()

    if not args.skip_tier1 and not args.only:
        run_gate("tier1 (pytest)",
                 lambda: run_tier1(pytest_args=args.pytest_args))
    for name in selected:
        run_gate(f"{name} --self-check", CHECKS[name])

    print(f"repro-verify {__version__}")
    for name, elapsed, code in timings:
        verdict = "PASS" if code == 0 else f"FAIL (exit {code})"
        print(f"  {name:<24} {elapsed:7.1f} s  {verdict}")
    if failures:
        print(f"verify: FAIL ({len(failures)} gate(s) failed: "
              f"{', '.join(failures)})")
        return 1
    print("verify: PASS")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
