"""Synthetic task-set generation (UUniFast and friends).

Used by the property tests and the ablation benchmarks to exercise the
analysis and the schedulers over a wide parameter space with explicit
seeds (determinism is a package-wide rule).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.core.task import AperiodicTask, PeriodicTask, TaskSet


def uunifast(n: int, total_utilization: float, rng: random.Random) -> List[float]:
    """Bini & Buttazzo's UUniFast: n utilizations summing to the total.

    Produces an unbiased uniform sample over the simplex, the standard
    generator in the real-time literature.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if total_utilization <= 0:
        raise ValueError("total utilization must be positive")
    utilizations = []
    remaining = total_utilization
    for i in range(1, n):
        next_remaining = remaining * rng.random() ** (1.0 / (n - i))
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations


def random_periods(
    n: int,
    rng: random.Random,
    minimum: int = 10_000,
    maximum: int = 1_000_000,
    granularity: int = 1_000,
) -> List[int]:
    """Log-uniform periods rounded to ``granularity`` cycles.

    Log-uniform sampling avoids the unrealistically harmonic sets a
    plain uniform draw tends to produce.
    """
    if minimum <= 0 or maximum < minimum:
        raise ValueError("need 0 < minimum <= maximum")
    import math

    periods = []
    for _ in range(n):
        value = math.exp(rng.uniform(math.log(minimum), math.log(maximum)))
        period = max(granularity, int(round(value / granularity)) * granularity)
        periods.append(period)
    return periods


def random_taskset(
    n_periodic: int,
    total_utilization: float,
    seed: int,
    n_aperiodic: int = 0,
    aperiodic_wcet: Optional[int] = None,
    deadline_factor: float = 1.0,
    min_period: int = 10_000,
    max_period: int = 1_000_000,
) -> TaskSet:
    """A reproducible random task set.

    Parameters
    ----------
    deadline_factor:
        D_i = max(C_i, deadline_factor * T_i); 1.0 gives implicit
        deadlines, smaller values constrained deadlines.
    """
    if not 0 < deadline_factor <= 1.0:
        raise ValueError("deadline_factor must be in (0, 1]")
    rng = random.Random(seed)
    utilizations = uunifast(n_periodic, total_utilization, rng)
    periods = random_periods(n_periodic, rng, minimum=min_period, maximum=max_period)
    periodic = []
    for i, (u, period) in enumerate(zip(utilizations, periods)):
        wcet = max(1, int(round(u * period)))
        if wcet > period:  # extreme draw; clamp to a feasible task
            wcet = period
        deadline = max(wcet, min(period, int(round(period * deadline_factor))))
        periodic.append(
            PeriodicTask(
                name=f"p{i}",
                wcet=wcet,
                period=period,
                deadline=deadline,
            )
        )
    aperiodic = []
    for i in range(n_aperiodic):
        wcet = aperiodic_wcet or max(1, int(rng.uniform(0.05, 0.3) * min_period))
        aperiodic.append(AperiodicTask(name=f"a{i}", wcet=wcet))
    return TaskSet(periodic, aperiodic).with_deadline_monotonic_priorities()


def poisson_arrivals(
    rate_per_cycle: float,
    horizon: int,
    rng: random.Random,
) -> List[int]:
    """Poisson arrival instants in [0, horizon) at the given rate."""
    if rate_per_cycle <= 0:
        raise ValueError("rate must be positive")
    arrivals = []
    t = 0.0
    while True:
        t += rng.expovariate(rate_per_cycle)
        if t >= horizon:
            break
        arrivals.append(int(t))
    return arrivals
