"""Command-line front end for the offline analysis ("in-house tool").

Reads a task table (CSV: name,wcet,period,deadline), partitions it on
N processors, computes promotion times, and prints the task tables with
processor assignments -- the same artefact the paper feeds to both the
FPGA prototype and the simulator.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import List, Optional

from repro.analysis.partitioning import partition
from repro.analysis.promotion import assign_promotions, promotion_table
from repro.analysis.schedulability import analyse_taskset
from repro.core.task import PeriodicTask, TaskSet
from repro.lint.diagnostics import LintError, require_ok
from repro.lint.tasks import lint_task_rows, lint_taskset


def load_task_csv(path: str) -> TaskSet:
    """Parse ``name,wcet,period[,deadline]`` rows into a TaskSet.

    Rows are linted (``TASK001``/``TASK009``) before task construction,
    so a malformed table fails with every offending row named instead of
    the first constructor ValueError.
    """
    rows: List[dict] = []
    with open(path, newline="") as handle:
        for row in csv.reader(handle):
            if not row or row[0].startswith("#") or row[0] == "name":
                continue
            rows.append(
                {
                    "name": row[0],
                    "wcet": row[1] if len(row) > 1 else None,
                    "period": row[2] if len(row) > 2 else None,
                    "deadline": row[3] if len(row) > 3 and row[3] else None,
                }
            )
    require_ok(lint_task_rows(rows), subject=path)
    periodic = [
        PeriodicTask(
            name=row["name"],
            wcet=int(row["wcet"]),
            period=int(row["period"]),
            deadline=int(row["deadline"]) if row["deadline"] else None,
        )
        for row in rows
    ]
    return TaskSet(periodic).with_deadline_monotonic_priorities()


def run_analysis(
    taskset: TaskSet,
    n_cpus: int,
    heuristic: str = "worst-fit",
    tick: Optional[int] = None,
):
    """Partition, analyse and promote; returns (taskset, report, rows)."""
    assigned = partition(taskset, n_cpus, heuristic=heuristic)
    report = analyse_taskset(assigned, n_cpus)
    analysed = assign_promotions(assigned, n_cpus, tick=tick)
    rows = promotion_table(analysed, n_cpus)
    return analysed, report, rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="MPDP offline analysis: partitioning, WCRT, promotions"
    )
    parser.add_argument("csv", help="task table: name,wcet,period[,deadline]")
    parser.add_argument("--cpus", type=int, default=2, help="number of processors")
    parser.add_argument(
        "--heuristic",
        default="worst-fit",
        choices=["first-fit", "best-fit", "worst-fit"],
    )
    parser.add_argument(
        "--tick", type=int, default=None, help="round promotions down to this tick"
    )
    args = parser.parse_args(argv)

    try:
        taskset = load_task_csv(args.csv)
    except LintError as exc:
        print(exc.report.format(header=f"lint: {args.csv}"), file=sys.stderr)
        return 1
    try:
        analysed, report, rows = run_analysis(
            taskset, args.cpus, heuristic=args.heuristic, tick=args.tick
        )
    except Exception as exc:  # surface analysis failures as exit codes
        print(f"analysis failed: {exc}", file=sys.stderr)
        return 1

    lint_report = lint_taskset(analysed, args.cpus, tick=args.tick)
    if not lint_report.clean:
        print(lint_report.format(header="task-set lint"), file=sys.stderr)
        if not lint_report.ok:
            return 1

    print(report.format())
    print()
    header = f"{'task':<14}{'cpu':>4}{'C':>12}{'T':>12}{'D':>12}{'W':>12}{'U=D-W':>12}"
    print(header)
    for row in rows:
        wcrt = row["wcrt"] if row["wcrt"] is not None else "-"
        prom = row["promotion"] if row["promotion"] is not None else "-"
        print(
            f"{row['task']:<14}{row['cpu']:>4}{row['wcet']:>12}{row['period']:>12}"
            f"{row['deadline']:>12}{wcrt:>12}{prom:>12}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
