"""Worst-case response time analysis (Audsley et al., fixed priority).

The paper (Section 4.1) computes the length W_i of a priority-level
busy period with the recurrence

    w^{m+1}_i = C_i + sum_{j in hp(i)} ceil(w^m_i / T_j) * C_j

starting from w^0_i = 0, stopping when w^{m+1} == w^m (converged) or
w^{m+1} > D_i - U_i ... in the dual-priority setting the task is run at
its *upper band* priority during the busy period, so hp(i) is the set
of tasks with a higher upper-band priority **on the same processor**.
Convergence is guaranteed when per-processor utilization < 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.task import PeriodicTask


class RecurrenceDivergenceError(RuntimeError):
    """The W_i recurrence hit its iteration guard without converging.

    This is the signature of a task group whose utilization is at (or
    numerically indistinguishable from) 1: each iteration grows w by a
    little and the fixpoint never arrives before the divergence bound
    does.  The message carries the interferer utilization so the caller
    can report an actionable diagnostic instead of spinning.
    """


@dataclass(frozen=True)
class ResponseTimeResult:
    """Outcome of the W_i recurrence for one task.

    ``wcrt`` is the converged busy-period length (worst-case response
    time at upper-band priority); ``schedulable`` is False when the
    recurrence exceeded the deadline before converging; ``iterations``
    counts recurrence steps (reported by the analysis benchmarks).
    """

    task: str
    wcrt: Optional[int]
    schedulable: bool
    iterations: int

    @property
    def value(self) -> int:
        """The WCRT; raises if the task was unschedulable."""
        if not self.schedulable or self.wcrt is None:
            raise ValueError(f"{self.task} is unschedulable; no WCRT")
        return self.wcrt


def higher_priority_tasks(
    task: PeriodicTask, local_tasks: Iterable[PeriodicTask]
) -> List[PeriodicTask]:
    """hp(i): same-processor tasks with greater upper-band priority.

    Ties are broken by name so that two tasks never interfere with each
    other symmetrically (a strict priority order is required by the
    analysis; the schedulers break ties deterministically too).
    """
    key = (task.high_priority, task.name)
    return [
        other
        for other in local_tasks
        if other.name != task.name
        and (other.high_priority, other.name) > key
    ]


def busy_period_recurrence(
    wcet: int,
    interferers: Sequence[PeriodicTask],
    limit: int,
    max_iterations: int = 10_000,
    blocking: int = 0,
    jitter: Optional[dict] = None,
    w0: int = 0,
) -> ResponseTimeResult:
    """Iterate w = C + B + sum(ceil((w + J_j)/T_j) C_j) to a fixpoint.

    Parameters
    ----------
    wcet:
        C_i of the task under analysis.
    interferers:
        hp(i), the interfering higher-priority tasks.
    limit:
        Divergence bound; exceeding it declares unschedulability (the
        paper uses D_i).
    blocking:
        Worst-case lower-priority blocking B_i (priority-inversion
        bound, e.g. from non-preemptable kernel sections).  Zero in
        the paper's pure-preemptive setting.
    jitter:
        Optional per-interferer release jitter J_j (task name -> J),
        the classical Audsley/Tindell extension: an interferer whose
        release wobbles by J_j can hit the busy period ceil((w+J)/T)
        times.
    max_iterations:
        Hard guard on recurrence steps.  Convergence before ``limit``
        is only guaranteed when the group's utilization is < 1; at
        utilization >= 1 with a large ``limit`` the recurrence would
        crawl upward one interferer job at a time, so exceeding the
        guard raises :class:`RecurrenceDivergenceError` with the
        offending utilization instead of looping.
    w0:
        Warm-start value for the iteration.  Must not exceed the least
        fixpoint or the result would be conservative; any lower bound
        on W_i is safe because the recurrence is monotone, so
        iteration from ``w0 <= W_i`` still converges to exactly
        ``W_i``.  :func:`response_time_table` passes the converged W
        of the next-higher-priority task, a valid lower bound (that
        task's whole busy period, plus at least one job of it, fits
        inside ours).
    """
    if wcet <= 0:
        raise ValueError("wcet must be positive")
    if limit <= 0:
        raise ValueError("limit must be positive")
    if blocking < 0:
        raise ValueError("blocking must be non-negative")
    if w0 < 0:
        raise ValueError("w0 must be non-negative")
    jitter = jitter or {}
    if any(value < 0 for value in jitter.values()):
        raise ValueError("jitter values must be non-negative")
    w = w0
    for iteration in range(1, max_iterations + 1):
        w_next = wcet + blocking + sum(
            math.ceil((w + jitter.get(other.name, 0)) / other.period) * other.wcet
            for other in interferers
        )
        if w_next > limit:
            return ResponseTimeResult(
                task="", wcrt=None, schedulable=False, iterations=iteration
            )
        if w_next == w:
            return ResponseTimeResult(
                task="", wcrt=w, schedulable=True, iterations=iteration
            )
        w = w_next
    interferer_util = sum(t.wcet / t.period for t in interferers)
    raise RecurrenceDivergenceError(
        f"response-time recurrence did not converge in {max_iterations} "
        f"iterations (w={w}, limit={limit}); interferer utilization is "
        f"{interferer_util:.3f} -- at per-processor utilization >= 1 the busy "
        "period never closes; shed load from this processor or lower the "
        "divergence limit"
    )


def fault_aware_response_time(
    task: PeriodicTask,
    local_tasks: Sequence[PeriodicTask],
    min_interarrival: int,
    recovery_cost: Optional[int] = None,
    max_iterations: int = 10_000,
) -> ResponseTimeResult:
    """W_i under a transient-fault arrival assumption (docs/FAULTS.md).

    Burns/Punnekkat-style extension of the busy-period recurrence: with
    at most one fault every ``min_interarrival`` (F) cycles, a busy
    period of length w suffers ``1 + floor(w / F)`` faults, each
    costing one recovery:

        w = C_i + (1 + floor(w / F)) * C_rec
                + sum_{j in hp(i)} ceil(w / T_j) * C_j

    ``recovery_cost`` (C_rec) defaults to the re-execution model: the
    largest WCET among the task and its higher-priority interferers
    (any job in the busy period may be the one re-executed).  The term
    is monotone in w, so the iteration converges to the least fixpoint
    exactly like the fault-free recurrence.
    """
    if min_interarrival <= 0:
        raise ValueError("min_interarrival must be positive")
    if recovery_cost is not None and recovery_cost < 0:
        raise ValueError("recovery_cost must be non-negative")
    interferers = higher_priority_tasks(task, local_tasks)
    cost = recovery_cost
    if cost is None:
        cost = max([task.wcet] + [other.wcet for other in interferers])
    limit = task.deadline
    w = 0
    for iteration in range(1, max_iterations + 1):
        faults = 1 + w // min_interarrival
        w_next = task.wcet + faults * cost + sum(
            math.ceil(w / other.period) * other.wcet for other in interferers
        )
        if w_next > limit:
            return ResponseTimeResult(
                task=task.name, wcrt=None, schedulable=False,
                iterations=iteration,
            )
        if w_next == w:
            return ResponseTimeResult(
                task=task.name, wcrt=w, schedulable=True,
                iterations=iteration,
            )
        w = w_next
    interferer_util = sum(t.wcet / t.period for t in interferers)
    raise RecurrenceDivergenceError(
        f"fault-aware recurrence did not converge in {max_iterations} "
        f"iterations (w={w}, limit={limit}); interferer utilization is "
        f"{interferer_util:.3f} and the fault term adds "
        f"{cost}/{min_interarrival} -- the effective load is at or above 1"
    )


def worst_case_response_time(
    task: PeriodicTask, local_tasks: Sequence[PeriodicTask]
) -> ResponseTimeResult:
    """W_i of ``task`` among ``local_tasks`` (same processor).

    The busy period starts with the task promoted (worst case: it could
    not execute at all in the lower band), so only upper-band
    interference applies.
    """
    interferers = higher_priority_tasks(task, local_tasks)
    result = busy_period_recurrence(task.wcet, interferers, limit=task.deadline)
    return ResponseTimeResult(
        task=task.name,
        wcrt=result.wcrt,
        schedulable=result.schedulable,
        iterations=result.iterations,
    )


def response_time_table(
    local_tasks: Sequence[PeriodicTask],
) -> List[ResponseTimeResult]:
    """WCRT of every task in a single-processor group.

    Produces exactly the per-task results of
    :func:`worst_case_response_time` (modulo the diagnostic
    ``iterations`` count) but shares work across the group:

    - the per-task hp(i) filtering is replaced by one descending sort
      on the priority key -- each task's interferers are then simply
      the prefix of strictly-higher-priority tasks;
    - each recurrence warm-starts from the last converged W further up
      the priority order.  hp(k) ⊂ hp(i) for k above i, so i's busy
      period contains k's whole busy period plus at least one job of k
      itself: W_k <= W_i, and the monotone recurrence started at W_k
      converges to the identical least fixpoint while skipping the
      ramp-up iterations (the bulk of the cost on high-utilization
      groups, where W grows one interferer job per step from zero).
    """
    ordered = sorted(
        local_tasks,
        key=lambda t: (t.high_priority, t.name),
        reverse=True,
    )
    by_name = {}
    warm = 0
    for index, task in enumerate(ordered):
        interferers = ordered[:index]
        result = busy_period_recurrence(
            task.wcet, interferers, limit=task.deadline, w0=warm
        )
        by_name[task.name] = ResponseTimeResult(
            task=task.name,
            wcrt=result.wcrt,
            schedulable=result.schedulable,
            iterations=result.iterations,
        )
        if result.schedulable and result.wcrt is not None:
            warm = result.wcrt
    return [by_name[task.name] for task in local_tasks]
