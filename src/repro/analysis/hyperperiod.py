"""Exact schedulability verification by hyperperiod simulation.

The response-time test is sufficient and (for synchronous release)
exact per processor, but it cannot account for implementation
variations such as tick-quantised promotions.  This module provides
the brute-force complement: simulate the analysed set with the real
MPDP policy for one full hyperperiod (plus the longest deadline) under
zero overhead and verify that no deadline is missed.  For synchronous
periodic task sets this is a *necessary and sufficient* test of the
implemented policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.task import TaskSet
from repro.simulators.theoretical import TheoreticalSimulator


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of a hyperperiod verification run."""

    schedulable: bool
    horizon: int
    jobs_checked: int
    misses: List[str]
    worst_response_ratio: float  # max over jobs of response / deadline

    def __bool__(self) -> bool:  # truthiness = verdict
        return self.schedulable


def verify_by_simulation(
    taskset: TaskSet,
    n_cpus: int,
    tick: int,
    max_horizon: int = 500_000_000,
    hyperperiods: int = 1,
) -> VerificationResult:
    """Simulate ``hyperperiods`` hyperperiods and check every deadline.

    Raises
    ------
    ValueError
        When the hyperperiod is too large to simulate exactly
        (``max_horizon`` guards against pathological period sets).
    """
    if hyperperiods < 1:
        raise ValueError("hyperperiods must be >= 1")
    taskset.require_analysed()
    longest_deadline = max((t.deadline for t in taskset.periodic), default=0)
    horizon = taskset.hyperperiod * hyperperiods + longest_deadline
    if horizon > max_horizon:
        raise ValueError(
            f"hyperperiod horizon {horizon} exceeds max_horizon {max_horizon}; "
            "use the response-time test instead"
        )

    sim = TheoreticalSimulator(taskset, n_cpus, tick=tick, overhead=0.0)
    sim.run(horizon)

    misses: List[str] = []
    worst_ratio = 0.0
    checked = 0
    for job in sim.finished_jobs:
        if not job.is_periodic:
            continue
        checked += 1
        ratio = job.response_time / job.task.deadline
        worst_ratio = max(worst_ratio, ratio)
        if job.missed_deadline:
            misses.append(job.name)
    # Unfinished periodic jobs released more than a deadline before the
    # horizon are misses too.
    for job in list(sim.policy.periodic_ready) + [
        j for j in sim.policy.running if j is not None and j.is_periodic
    ]:
        if job.release + job.task.deadline <= horizon:
            misses.append(job.name)
            checked += 1

    return VerificationResult(
        schedulable=not misses,
        horizon=horizon,
        jobs_checked=checked,
        misses=sorted(misses),
        worst_response_ratio=worst_ratio,
    )


def cross_check(
    taskset: TaskSet,
    n_cpus: int,
    tick: int,
    max_horizon: int = 500_000_000,
) -> Optional[bool]:
    """Compare the analytical verdict with the simulated one.

    Returns True when both agree schedulable, False when both agree
    unschedulable, and raises AssertionError when the analysis said
    "schedulable" but the simulation found a miss (the analysis must
    be safe).  Returns None when the hyperperiod is too large to
    simulate.
    """
    from repro.analysis.schedulability import analyse_taskset

    report = analyse_taskset(taskset, n_cpus)
    try:
        simulated = verify_by_simulation(taskset, n_cpus, tick, max_horizon=max_horizon)
    except ValueError:
        return None
    if report.schedulable and not simulated.schedulable:
        raise AssertionError(
            "analysis claimed schedulable but simulation missed deadlines: "
            f"{simulated.misses}"
        )
    return report.schedulable and simulated.schedulable
