"""Verified WCETs as C_i inputs to the schedulability pipeline.

The offline tool of the paper takes worst-case execution times as
*given* inputs.  PR 1's ``repro.lint.asm`` bounded them from annotated
loop bounds; :mod:`repro.lint.absint` now derives tighter, *verified*
bounds (inferred loop bounds, infeasible paths pruned).  This module
closes the loop: it builds task sets whose C_i come from either source
and runs the standard response-time analysis over them, so experiments
can quantify what the tighter bounds buy in admitted utilization.

The default spec set binds each asmlib kernel driver to a period chosen
so that the *annotated* bounds overload two processors while the
*verified* bounds fit comfortably -- the headline effect of the
abstract-interpretation pass.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.analysis.partitioning import PartitioningError, partition
from repro.analysis.promotion import assign_promotions
from repro.analysis.schedulability import SchedulabilityReport, analyse_taskset
from repro.core.task import PeriodicTask, TaskSet

#: Accepted values for the ``wcet_source`` switch.
WCET_SOURCES = ("verified", "annotated")


@dataclass(frozen=True)
class KernelTaskSpec:
    """A periodic task whose C_i comes from a lint WCET bound.

    ``kernel`` names an ``hw/asmlib`` routine; the WCET is that of its
    generated driver program (routine plus call/IO harness), so the
    bound covers everything a job of this task would execute.
    """

    name: str
    kernel: str
    period: int
    deadline: Optional[int] = None
    seed: int = 1


#: Periods tuned so annotated bounds overload 2 CPUs (U ~ 2.05) while
#: verified bounds fit easily (U < 1).  isqrt32's data-dependent loops
#: carry huge annotation bounds, so it is deliberately not in the set.
DEFAULT_SPECS: Tuple[KernelTaskSpec, ...] = (
    KernelTaskSpec(name="copy-frame", kernel="memcpy_words", period=16_000),
    KernelTaskSpec(name="sum-sensors", kernel="array_sum", period=14_000),
    KernelTaskSpec(name="crc-frame", kernel="crc32_word", period=12_000),
    KernelTaskSpec(name="count-flags", kernel="popcount32", period=4_000),
)


def scale_periods(
    specs: Sequence[KernelTaskSpec], factor: float
) -> Tuple[KernelTaskSpec, ...]:
    """Specs with every period (and deadline) scaled by ``factor``."""
    scaled = []
    for spec in specs:
        scaled.append(
            replace(
                spec,
                period=max(1, int(round(spec.period * factor))),
                deadline=(
                    max(1, int(round(spec.deadline * factor)))
                    if spec.deadline is not None
                    else None
                ),
            )
        )
    return tuple(scaled)


@dataclass
class KernelWCET:
    """Both WCET bounds for one kernel driver, for use as C_i."""

    kernel: str
    verified: int
    annotated: int

    def cycles(self, wcet_source: str) -> int:
        if wcet_source not in WCET_SOURCES:
            raise ValueError(f"wcet_source must be one of {WCET_SOURCES}")
        return self.verified if wcet_source == "verified" else self.annotated


def verified_wcets(
    kernels: Iterable[str], seed: int = 1
) -> Dict[str, KernelWCET]:
    """Verified and annotated WCET bounds per kernel driver.

    Raises ``ValueError`` when a driver's WCET is unbounded or its
    value analysis fails -- an unverified C_i must never silently feed
    the schedulability analysis.
    """
    from repro.hw.assembler import assemble
    from repro.lint.absint import kernel_driver_source, parse_annotations, verified_wcet

    bounds: Dict[str, KernelWCET] = {}
    for kernel in kernels:
        source = kernel_driver_source(kernel, seed=seed)
        wcet = verified_wcet(
            assemble(source), annotations=parse_annotations(source)
        )
        if not wcet.absint.ok:
            rules = ", ".join(d.rule for d in wcet.absint.report.errors)
            raise ValueError(f"{kernel}: value analysis failed ({rules})")
        if wcet.verified_cycles is None or wcet.annotated_cycles is None:
            raise ValueError(f"{kernel}: WCET unbounded")
        bounds[kernel] = KernelWCET(
            kernel=kernel,
            verified=wcet.verified_cycles,
            annotated=wcet.annotated_cycles,
        )
    return bounds


def verified_taskset(
    specs: Sequence[KernelTaskSpec] = DEFAULT_SPECS,
    wcet_source: str = "verified",
    seed: int = 1,
) -> TaskSet:
    """A task set with C_i drawn from the chosen WCET bound."""
    if wcet_source not in WCET_SOURCES:
        raise ValueError(f"wcet_source must be one of {WCET_SOURCES}")
    bounds = verified_wcets({spec.kernel for spec in specs}, seed=seed)
    return TaskSet(
        [
            PeriodicTask(
                name=spec.name,
                wcet=bounds[spec.kernel].cycles(wcet_source),
                period=spec.period,
                deadline=spec.deadline,
            )
            for spec in specs
        ]
    ).with_deadline_monotonic_priorities()


@dataclass
class VerifiedAnalysis:
    """Schedulability verdict for one choice of WCET source."""

    wcet_source: str
    wcets: Dict[str, KernelWCET]
    schedulable: bool
    report: Optional[SchedulabilityReport]
    error: Optional[str] = None

    @property
    def total_utilization(self) -> float:
        if self.report is not None:
            return self.report.total_utilization
        return float("nan")


def analyse_verified(
    specs: Sequence[KernelTaskSpec] = DEFAULT_SPECS,
    n_cpus: int = 2,
    wcet_source: str = "verified",
    seed: int = 1,
    tick: Optional[int] = None,
    fault_model=None,
) -> VerifiedAnalysis:
    """Partition + response-time analysis with lint-derived C_i.

    When the partitioner cannot even place the tasks (per-CPU
    utilization above 1), the verdict is "not schedulable" with the
    partitioning error recorded rather than an exception -- the sweep
    over period scales deliberately crosses that boundary.

    ``fault_model`` (a :class:`repro.analysis.schedulability.FaultModel`)
    additionally charges re-execution overhead per assumed transient
    fault, answering "still schedulable with the verified C_i *and* a
    fault every F cycles?".
    """
    bounds = verified_wcets({spec.kernel for spec in specs}, seed=seed)
    try:
        # Construction can already fail (C_i > D_i is rejected by
        # PeriodicTask) -- that too is a "not schedulable" verdict here.
        taskset = verified_taskset(specs, wcet_source=wcet_source, seed=seed)
        taskset = partition(taskset, n_cpus)
        taskset = assign_promotions(taskset, n_cpus, tick=tick)
    except (PartitioningError, ValueError) as exc:
        return VerifiedAnalysis(
            wcet_source=wcet_source,
            wcets=bounds,
            schedulable=False,
            report=None,
            error=str(exc),
        )
    report = analyse_taskset(taskset, n_cpus, fault_model=fault_model)
    return VerifiedAnalysis(
        wcet_source=wcet_source,
        wcets=bounds,
        schedulable=report.schedulable,
        report=report,
    )
