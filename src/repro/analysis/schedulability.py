"""Schedulability tests for the partitioned periodic load.

MPDP guarantees periodic deadlines iff each per-processor group is
schedulable under fixed-priority preemptive scheduling at the
upper-band priorities -- exactly the classical uniprocessor tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.response_time import (
    fault_aware_response_time,
    response_time_table,
)
from repro.core.task import PeriodicTask, TaskSet


@dataclass(frozen=True)
class FaultModel:
    """Transient-fault arrival assumption for fault-aware RTA.

    ``min_interarrival`` (F) bounds the arrival rate: at most one
    fault per F cycles hits any processor.  ``recovery_cost`` is the
    cycles one recovery costs; None selects the re-execution model
    (the largest WCET among the task under analysis and its
    higher-priority set).  See docs/FAULTS.md for the math and for how
    campaign plans are matched against a model
    (:meth:`repro.faults.plan.FaultPlan.min_interarrival`).
    """

    min_interarrival: int
    recovery_cost: Optional[int] = None

    def __post_init__(self):
        if self.min_interarrival <= 0:
            raise ValueError("min_interarrival must be positive")
        if self.recovery_cost is not None and self.recovery_cost < 0:
            raise ValueError("recovery_cost must be non-negative")


def liu_layland_bound(n: int) -> float:
    """The Liu & Layland utilization bound n(2^{1/n} - 1)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return n * (2 ** (1.0 / n) - 1.0)


def utilization_test(tasks: Sequence[PeriodicTask]) -> bool:
    """Sufficient (not necessary) Liu & Layland test for one processor.

    Only valid for implicit deadlines; with constrained deadlines it is
    applied to C/D as a conservative approximation.
    """
    if not tasks:
        return True
    usage = sum(t.wcet / min(t.deadline, t.period) for t in tasks)
    return usage <= liu_layland_bound(len(tasks))


@dataclass
class SchedulabilityReport:
    """Verdict for a partitioned task set.

    ``per_cpu`` maps processor -> list of (task, wcrt, schedulable)
    entries; ``schedulable`` is the conjunction over all tasks.
    """

    n_cpus: int
    schedulable: bool
    per_cpu: Dict[int, List[dict]] = field(default_factory=dict)
    total_utilization: float = 0.0
    per_cpu_utilization: List[float] = field(default_factory=list)

    def failing_tasks(self) -> List[str]:
        return [
            row["task"]
            for rows in self.per_cpu.values()
            for row in rows
            if not row["schedulable"]
        ]

    def format(self) -> str:
        lines = [
            f"processors: {self.n_cpus}   total U: {self.total_utilization:.3f}   "
            f"schedulable: {self.schedulable}"
        ]
        for cpu in sorted(self.per_cpu):
            lines.append(
                f"  cpu {cpu} (U={self.per_cpu_utilization[cpu]:.3f}):"
            )
            for row in self.per_cpu[cpu]:
                wcrt = row["wcrt"] if row["wcrt"] is not None else "-"
                lines.append(
                    f"    {row['task']:<14} C={row['wcet']:<10} D={row['deadline']:<10} "
                    f"W={wcrt:<10} ok={row['schedulable']}"
                )
        return "\n".join(lines)


def analyse_taskset(
    taskset: TaskSet,
    n_cpus: int,
    fault_model: Optional[FaultModel] = None,
) -> SchedulabilityReport:
    """Exact (response-time based) schedulability of the partition.

    With a ``fault_model`` each row additionally carries
    ``wcrt_faulty`` -- the worst-case response time including
    re-execution overhead under the model's fault arrival rate -- and
    the verdict is the conjunction of fault-free and fault-aware
    schedulability (the fault-aware term dominates, but both are
    reported so headroom is visible).
    """
    groups: Dict[int, List[PeriodicTask]] = {cpu: [] for cpu in range(n_cpus)}
    for task in taskset.periodic:
        if not 0 <= task.cpu < n_cpus:
            raise ValueError(f"{task.name}: cpu {task.cpu} outside 0..{n_cpus - 1}")
        groups[task.cpu].append(task)

    report = SchedulabilityReport(
        n_cpus=n_cpus,
        schedulable=True,
        total_utilization=taskset.utilization,
        per_cpu_utilization=taskset.utilization_per_cpu(n_cpus),
    )
    for cpu, tasks in groups.items():
        rows = []
        for result, task in zip(response_time_table(tasks), tasks):
            row = {
                "task": task.name,
                "wcet": task.wcet,
                "deadline": task.deadline,
                "wcrt": result.wcrt,
                "schedulable": result.schedulable,
            }
            if fault_model is not None:
                faulty = fault_aware_response_time(
                    task,
                    tasks,
                    min_interarrival=fault_model.min_interarrival,
                    recovery_cost=fault_model.recovery_cost,
                )
                row["wcrt_faulty"] = faulty.wcrt
                row["schedulable"] = row["schedulable"] and faulty.schedulable
            rows.append(row)
            if not row["schedulable"]:
                report.schedulable = False
        report.per_cpu[cpu] = rows
    return report


def verify_partition(taskset: TaskSet, n_cpus: int) -> None:
    """Raise ValueError with details when the partition is infeasible."""
    report = analyse_taskset(taskset, n_cpus)
    if not report.schedulable:
        raise ValueError(
            "partition not schedulable; failing tasks: "
            + ", ".join(report.failing_tasks())
        )


def breakdown_utilization(
    tasks: Sequence[PeriodicTask], step: float = 0.01
) -> float:
    """Largest uniform period-scaling utilization that stays schedulable.

    Periods are shrunk (utilization grown) until the response-time test
    fails; used by the ablation benchmarks to characterise headroom.
    """
    if not tasks:
        return 0.0
    base = sum(t.utilization for t in tasks)
    low_factor, high_factor = 0.05, 1.0

    def feasible(factor: float) -> bool:
        scaled = []
        for t in tasks:
            period = max(t.wcet, int(round(t.period * factor)))
            deadline = max(t.wcet, min(period, int(round(t.deadline * factor))))
            scaled.append(
                PeriodicTask(
                    name=t.name,
                    wcet=t.wcet,
                    period=period,
                    deadline=deadline,
                    low_priority=t.low_priority,
                    high_priority=t.high_priority,
                    cpu=t.cpu,
                )
            )
        return all(r.schedulable for r in response_time_table(scaled))

    if not feasible(high_factor):
        return 0.0
    # Binary search the smallest feasible scale factor.
    for _ in range(40):
        mid = (low_factor + high_factor) / 2
        if feasible(mid):
            high_factor = mid
        else:
            low_factor = mid
        if high_factor - low_factor < 1e-6:
            break
    return min(1.0, base / high_factor)
