"""WCET sensitivity analysis: how much margin does each task have?

For a schedulable partition, the *scaling factor* of a task is the
largest multiplier its WCET budget tolerates before some deadline test
on its processor fails (everything else held fixed).  This quantifies
robustness against the exact failure mode the failure-injection tests
exercise (optimistic WCETs), and gives designers the per-task headroom
the paper's padded budgets ("taking in account an overhead") spend.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.response_time import response_time_table
from repro.core.task import PeriodicTask, TaskSet


def _group_schedulable(tasks: Sequence[PeriodicTask]) -> bool:
    return all(result.schedulable for result in response_time_table(tasks))


def wcet_scaling_factor(
    task: PeriodicTask,
    local_tasks: Sequence[PeriodicTask],
    precision: float = 1e-3,
    upper: float = 64.0,
) -> float:
    """Largest factor f such that scaling ``task.wcet`` by f keeps the
    whole same-processor group schedulable.

    Returns a value >= 1.0 for schedulable groups (1.0 = no headroom);
    raises when the group is not schedulable to begin with.
    """
    if not _group_schedulable(local_tasks):
        raise ValueError("group is not schedulable at the nominal WCETs")

    def feasible(factor: float) -> bool:
        wcet = int(task.wcet * factor)
        if wcet <= 0:
            return True
        if wcet > task.deadline:
            return False
        scaled = [
            t if t.name != task.name else t._replace(wcet=wcet, acet=None)
            for t in local_tasks
        ]
        return _group_schedulable(scaled)

    low, high = 1.0, upper
    if feasible(high):
        return high
    while high - low > precision:
        mid = (low + high) / 2
        if feasible(mid):
            low = mid
        else:
            high = mid
    return low


def sensitivity_report(taskset: TaskSet, n_cpus: int) -> List[Dict]:
    """Per-task scaling factors over the whole partition."""
    groups: Dict[int, List[PeriodicTask]] = {}
    for task in taskset.periodic:
        if not 0 <= task.cpu < n_cpus:
            raise ValueError(f"{task.name}: cpu {task.cpu} outside 0..{n_cpus - 1}")
        groups.setdefault(task.cpu, []).append(task)
    rows: List[Dict] = []
    for task in taskset.periodic:
        factor = wcet_scaling_factor(task, groups[task.cpu])
        rows.append(
            {
                "task": task.name,
                "cpu": task.cpu,
                "wcet": task.wcet,
                "scaling_factor": round(factor, 3),
                "headroom_cycles": int(task.wcet * (factor - 1.0)),
            }
        )
    return rows


def critical_tasks(taskset: TaskSet, n_cpus: int, threshold: float = 1.1) -> List[str]:
    """Tasks whose budgets tolerate less than ``threshold`` x growth."""
    return [
        row["task"]
        for row in sensitivity_report(taskset, n_cpus)
        if row["scaling_factor"] < threshold
    ]
