"""Static task-to-processor assignment.

MPDP partitions the *periodic* load offline; aperiodic work is global.
The paper does not prescribe a heuristic, so the classical bin-packing
family is provided (first/best/worst-fit on decreasing utilization),
each validated by the exact response-time test so the returned
partition is guaranteed feasible.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.response_time import response_time_table
from repro.core.task import PeriodicTask, TaskSet


class PartitioningError(ValueError):
    """No feasible assignment was found by the chosen heuristic."""


def _fits(task: PeriodicTask, group: List[PeriodicTask]) -> bool:
    """Exact test: does ``group + [task]`` stay schedulable?"""
    candidate = group + [task]
    return all(result.schedulable for result in response_time_table(candidate))


def _choose_first_fit(task, groups, loads):
    for cpu, group in enumerate(groups):
        if _fits(task, group):
            return cpu
    return None


def _choose_best_fit(task, groups, loads):
    best_cpu, best_load = None, -1.0
    for cpu, group in enumerate(groups):
        if _fits(task, group) and loads[cpu] > best_load:
            best_cpu, best_load = cpu, loads[cpu]
    return best_cpu


def _choose_worst_fit(task, groups, loads):
    best_cpu, best_load = None, 2.0
    for cpu, group in enumerate(groups):
        if _fits(task, group) and loads[cpu] < best_load:
            best_cpu, best_load = cpu, loads[cpu]
    return best_cpu


_HEURISTICS: Dict[str, Callable] = {
    "first-fit": _choose_first_fit,
    "best-fit": _choose_best_fit,
    "worst-fit": _choose_worst_fit,
}


def partition(
    taskset: TaskSet,
    n_cpus: int,
    heuristic: str = "worst-fit",
) -> TaskSet:
    """Assign every periodic task a home processor.

    Tasks are considered in decreasing utilization order (the usual
    "-decreasing" variants).  ``worst-fit`` is the default because MPDP
    benefits from balanced per-processor slack: aperiodic jobs run in
    the holes the periodic load leaves in the lower band, and balance
    maximises the worst hole.

    Raises
    ------
    PartitioningError
        When some task fits on no processor.
    """
    if n_cpus < 1:
        raise ValueError("n_cpus must be >= 1")
    try:
        choose = _HEURISTICS[heuristic]
    except KeyError:
        raise ValueError(
            f"unknown heuristic {heuristic!r}; pick one of {sorted(_HEURISTICS)}"
        )

    order = sorted(taskset.periodic, key=lambda t: (-t.utilization, t.name))
    groups: List[List[PeriodicTask]] = [[] for _ in range(n_cpus)]
    loads = [0.0] * n_cpus
    placement: Dict[str, int] = {}
    for task in order:
        cpu = choose(task, groups, loads)
        if cpu is None:
            raise PartitioningError(
                f"{task.name} (U={task.utilization:.3f}) fits on no processor "
                f"with {heuristic}; total U={taskset.utilization:.3f}, n_cpus={n_cpus}"
            )
        groups[cpu].append(task)
        loads[cpu] += task.utilization
        placement[task.name] = cpu

    periodic = [t.with_cpu(placement[t.name]) for t in taskset.periodic]
    return taskset.with_tasks(periodic)
