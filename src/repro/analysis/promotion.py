"""Promotion time computation: U_i = D_i - W_i.

Promotions are the load-bearing idea of dual priority: a periodic task
can linger in the lower band (letting aperiodic work through) for at
most U_i cycles after release and is then promoted; the offline W_i
guarantees it still meets D_i even with worst-case upper-band
interference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.response_time import worst_case_response_time
from repro.core.task import PeriodicTask, TaskSet


def promotion_time(task: PeriodicTask, local_tasks: Sequence[PeriodicTask]) -> int:
    """U_i = D_i - W_i for ``task`` among its same-processor peers.

    Raises
    ------
    ValueError
        If the recurrence proves the task unschedulable (W_i > D_i).
    """
    result = worst_case_response_time(task, local_tasks)
    if not result.schedulable:
        raise ValueError(
            f"{task.name}: unschedulable at upper-band priority "
            f"(busy period exceeds deadline {task.deadline})"
        )
    return task.deadline - result.value


def assign_promotions(
    taskset: TaskSet,
    n_cpus: int,
    tick: Optional[int] = None,
) -> TaskSet:
    """Return a copy of ``taskset`` with every promotion time computed.

    Tasks must already be partitioned (``cpu`` assigned) and carry
    upper-band priorities.

    When ``tick`` is given the analysis becomes *implementation
    aware*: the kernel observes releases and promotions only at
    scheduling cycles, so a job released just after a tick is seen up
    to one tick late, and its promotion instant ``release + U`` is
    acted on at the next tick after it passes.  The guaranteed
    promoted window is therefore ``D - U - tick`` rather than
    ``D - U``, and the analysis must (a) reserve one tick of
    observation latency, requiring ``W + tick <= D``, and (b) choose
    ``U = floor((D - W - tick) / tick) * tick`` (clamped at zero) so
    that even the worst observation alignment leaves W cycles in the
    upper band.  Promoting early only trades aperiodic responsiveness;
    promoting late would void the hard guarantee.
    """
    if tick is not None and tick <= 0:
        raise ValueError("tick must be positive")
    groups: Dict[int, List[PeriodicTask]] = {}
    for task in taskset.periodic:
        if not 0 <= task.cpu < n_cpus:
            raise ValueError(f"{task.name}: cpu {task.cpu} outside 0..{n_cpus - 1}")
        groups.setdefault(task.cpu, []).append(task)

    analysed: List[PeriodicTask] = []
    for task in taskset.periodic:
        promotion = promotion_time(task, groups[task.cpu])
        if tick is not None:
            wcrt = task.deadline - promotion  # W_i from the recurrence
            if wcrt + tick > task.deadline:
                raise ValueError(
                    f"{task.name}: W={wcrt} + one tick of observation latency "
                    f"exceeds D={task.deadline}; unschedulable at tick {tick}"
                )
            promotion = max(0, ((task.deadline - wcrt - tick) // tick) * tick)
        analysed.append(task.with_promotion(promotion))
    return taskset.with_tasks(analysed)


def promotion_table(taskset: TaskSet, n_cpus: int) -> List[dict]:
    """Tabular view (task, cpu, C, T, D, W, U) used by the CLI tool."""
    groups: Dict[int, List[PeriodicTask]] = {}
    for task in taskset.periodic:
        groups.setdefault(task.cpu, []).append(task)
    rows = []
    for task in sorted(taskset.periodic, key=lambda t: (t.cpu, -t.high_priority)):
        result = worst_case_response_time(task, groups[task.cpu])
        wcrt = result.wcrt if result.schedulable else None
        rows.append(
            {
                "task": task.name,
                "cpu": task.cpu,
                "wcet": task.wcet,
                "period": task.period,
                "deadline": task.deadline,
                "wcrt": wcrt,
                "promotion": (task.deadline - wcrt) if wcrt is not None else None,
                "schedulable": result.schedulable,
            }
        )
    return rows
