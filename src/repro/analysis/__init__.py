"""Offline analysis: worst-case response times, promotions, partitioning.

Reproduces the paper's "in-house tool that takes in input worst case
execution times, period and deadlines of the tasks and produces the
task tables with processor assignments and all the required
information for both our target architecture and the simulator".
"""

from repro.analysis.response_time import (
    ResponseTimeResult,
    busy_period_recurrence,
    fault_aware_response_time,
    worst_case_response_time,
)
from repro.analysis.promotion import assign_promotions, promotion_time
from repro.analysis.schedulability import (
    FaultModel,
    SchedulabilityReport,
    analyse_taskset,
    liu_layland_bound,
    verify_partition,
)
from repro.analysis.hyperperiod import (
    VerificationResult,
    cross_check,
    verify_by_simulation,
)
from repro.analysis.partitioning import PartitioningError, partition
from repro.analysis.sensitivity import (
    critical_tasks,
    sensitivity_report,
    wcet_scaling_factor,
)
from repro.analysis.taskgen import (
    random_periods,
    random_taskset,
    uunifast,
)
from repro.analysis.verified import (
    DEFAULT_SPECS,
    KernelTaskSpec,
    KernelWCET,
    VerifiedAnalysis,
    analyse_verified,
    scale_periods,
    verified_taskset,
    verified_wcets,
)

__all__ = [
    "worst_case_response_time",
    "busy_period_recurrence",
    "fault_aware_response_time",
    "FaultModel",
    "ResponseTimeResult",
    "promotion_time",
    "assign_promotions",
    "analyse_taskset",
    "verify_partition",
    "SchedulabilityReport",
    "liu_layland_bound",
    "partition",
    "PartitioningError",
    "verify_by_simulation",
    "cross_check",
    "VerificationResult",
    "wcet_scaling_factor",
    "sensitivity_report",
    "critical_tasks",
    "uunifast",
    "random_periods",
    "random_taskset",
    "DEFAULT_SPECS",
    "KernelTaskSpec",
    "KernelWCET",
    "VerifiedAnalysis",
    "analyse_verified",
    "scale_periods",
    "verified_taskset",
    "verified_wcets",
]
