"""repro -- reproduction of the DATE 2008 dual-priority FPGA MPSoC paper.

Top-level convenience re-exports.  The subpackages are:

- :mod:`repro.core` -- task model and the MPDP policy,
- :mod:`repro.analysis` -- offline WCRT/promotion analysis and
  partitioning (the paper's "in-house tool"),
- :mod:`repro.sim` -- discrete-event simulation kernel,
- :mod:`repro.hw` -- the FPGA multiprocessor model (MicroBlaze cores,
  OPB bus, memories, caches, multiprocessor interrupt controller,
  synchronization engine, crossbar, peripherals),
- :mod:`repro.kernel` -- the dual-priority microkernel running on the
  hardware model,
- :mod:`repro.simulators` -- theoretical/prototype/baseline end-to-end
  simulators,
- :mod:`repro.workloads` -- MiBench automotive kernels and the paper's
  19-task workload,
- :mod:`repro.trace` -- trace recording, metrics and ASCII Gantt,
- :mod:`repro.experiments` -- Figure 3 / Figure 4 reproduction.
"""

from repro.core.mpdp import MPDPScheduler
from repro.core.task import AperiodicTask, Job, PeriodicTask, TaskSet

__version__ = "1.2.0"

__all__ = [
    "PeriodicTask",
    "AperiodicTask",
    "Job",
    "TaskSet",
    "MPDPScheduler",
    "CLOCK_HZ",
    "TICK",
    "cycles_to_seconds",
    "seconds_to_cycles",
    "__version__",
]

#: The prototype clock frequency (Virtex-II PRO, 50 MHz).
CLOCK_HZ = 50_000_000

#: The paper's scheduling tick: 0.1 s at the 50 MHz prototype clock.
TICK = 5_000_000


def cycles_to_seconds(cycles: int, clock_hz: int = CLOCK_HZ) -> float:
    """Convert integer cycles to seconds at the prototype clock."""
    return cycles / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: int = CLOCK_HZ) -> int:
    """Convert seconds to integer cycles at the prototype clock."""
    return int(round(seconds * clock_hz))
