"""Task-set and configuration linting for the offline analysis.

The paper's in-house tool computes W_i and U_i = D_i - W_i but trusts
its inputs; a malformed table used to surface as a confusing failure
deep inside a simulator run.  This pass validates a task table (raw
CSV-style rows, before :class:`~repro.core.task.PeriodicTask`
construction can reject them) and a partitioned/analysed
:class:`~repro.core.task.TaskSet`, reporting ``TASK001``-``TASK008``
diagnostics (see ``docs/LINT.md``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.analysis.response_time import (
    RecurrenceDivergenceError,
    worst_case_response_time,
)
from repro.core.task import PeriodicTask, TaskSet
from repro.lint.diagnostics import LintReport, Severity, require_ok


def lint_task_rows(rows: Iterable[Mapping[str, object]]) -> LintReport:
    """Validate raw task rows (``name``/``wcet``/``period``/``deadline``).

    Runs before :class:`~repro.core.task.PeriodicTask` construction so a
    bad CSV fails with one actionable diagnostic per row instead of the
    first constructor ValueError.  ``deadline`` may be ``None`` (defaults
    to the period, as the task model does).
    """
    report = LintReport()
    seen: Dict[str, int] = {}
    for number, row in enumerate(rows, start=1):
        name = str(row.get("name") or f"row {number}")
        where = f"task {name} (row {number})"

        def integer(key: str) -> Optional[int]:
            value = row.get(key)
            if value is None:
                return None
            try:
                return int(value)
            except (TypeError, ValueError):
                report.add(
                    "TASK001",
                    Severity.ERROR,
                    f"{key} {value!r} is not an integer",
                    location=where,
                    hint="times are integer clock cycles",
                )
                return None

        if name in seen:
            report.add(
                "TASK009",
                Severity.ERROR,
                f"duplicate task name (first defined in row {seen[name]})",
                location=where,
                hint="task names must be unique",
            )
        else:
            seen[name] = number

        wcet, period = integer("wcet"), integer("period")
        deadline = integer("deadline")
        if wcet is not None and wcet <= 0:
            report.add(
                "TASK001",
                Severity.ERROR,
                f"wcet must be positive, got {wcet}",
                location=where,
            )
        if period is not None and period <= 0:
            report.add(
                "TASK001",
                Severity.ERROR,
                f"period must be positive, got {period}",
                location=where,
            )
        if deadline is None and period is not None:
            deadline = period  # implicit-deadline default
        if deadline is not None and deadline <= 0:
            report.add(
                "TASK001",
                Severity.ERROR,
                f"deadline must be positive, got {deadline}",
                location=where,
            )
            continue
        if (
            wcet is not None
            and deadline is not None
            and period is not None
            and wcet > 0
            and period > 0
        ):
            if deadline > period:
                report.add(
                    "TASK001",
                    Severity.ERROR,
                    f"deadline {deadline} exceeds period {period} "
                    "(constrained deadlines require D <= T)",
                    location=where,
                    hint="lower the deadline or raise the period",
                )
            if wcet > deadline:
                report.add(
                    "TASK001",
                    Severity.ERROR,
                    f"wcet {wcet} exceeds deadline {deadline}; "
                    "trivially unschedulable",
                    location=where,
                    hint="no schedule can fit C cycles into a shorter window",
                )
    return report


def _cpu_groups(
    taskset: TaskSet, n_cpus: int, report: LintReport
) -> Dict[int, List[PeriodicTask]]:
    """Group by home processor, flagging out-of-range indices (TASK007)."""
    groups: Dict[int, List[PeriodicTask]] = {}
    for task in taskset.periodic:
        if not 0 <= task.cpu < n_cpus:
            report.add(
                "TASK007",
                Severity.ERROR,
                f"home processor {task.cpu} outside 0..{n_cpus - 1}",
                location=f"task {task.name}",
                hint="re-run the partitioner with the right --cpus",
            )
            continue
        groups.setdefault(task.cpu, []).append(task)
    return groups


def lint_taskset(
    taskset: TaskSet, n_cpus: int, tick: Optional[int] = None
) -> LintReport:
    """Lint a (possibly partitioned/analysed) task set.

    Checks utilization bounds per processor and overall, the W_i
    recurrence outcome per task (U_i = D_i - W_i >= 0), duplicate or
    band-inconsistent priorities within a processor group, and -- when
    promotions are already assigned -- that no promotion instant lands
    later than D_i - W_i (which would void the hard guarantee).
    """
    report = LintReport()
    if n_cpus < 1:
        report.add(
            "TASK007", Severity.ERROR, f"processor count {n_cpus} must be >= 1"
        )
        return report

    total = taskset.utilization
    if total > n_cpus:
        report.add(
            "TASK008",
            Severity.ERROR,
            f"total periodic utilization {total:.3f} exceeds the "
            f"{n_cpus}-processor capacity",
            location="task set",
            hint="shed load, stretch periods, or add processors",
        )

    groups = _cpu_groups(taskset, n_cpus, report)
    for cpu in sorted(groups):
        tasks = groups[cpu]
        usage = sum(t.utilization for t in tasks)
        if usage >= 1.0:
            report.add(
                "TASK002",
                Severity.ERROR,
                f"cpu {cpu} utilization {usage:.3f} >= 1; the W_i recurrence "
                "diverges and deadlines cannot be guaranteed",
                location=f"cpu {cpu} ({', '.join(t.name for t in tasks)})",
                hint="repartition (worst-fit spreads load) or stretch periods",
            )

        # duplicate / band-inconsistent priorities within the group
        by_high: Dict[int, List[str]] = {}
        for task in tasks:
            by_high.setdefault(task.high_priority, []).append(task.name)
        for priority, names in sorted(by_high.items()):
            if len(names) > 1:
                report.add(
                    "TASK004",
                    Severity.WARNING,
                    f"tasks {', '.join(sorted(names))} share upper-band "
                    f"priority {priority} on cpu {cpu}; interference analysis "
                    "breaks the tie by name",
                    location=f"cpu {cpu}",
                    hint="assign strict priorities (with_deadline_monotonic_priorities)",
                )
        for i, first in enumerate(tasks):
            for second in tasks[i + 1:]:
                low_delta = first.low_priority - second.low_priority
                high_delta = first.high_priority - second.high_priority
                if low_delta * high_delta < 0:
                    report.add(
                        "TASK005",
                        Severity.WARNING,
                        f"{first.name} and {second.name} swap relative order "
                        "between the lower and upper band "
                        f"(low {first.low_priority} vs {second.low_priority}, "
                        f"high {first.high_priority} vs {second.high_priority})",
                        location=f"cpu {cpu}",
                        hint="dual-priority expects consistent in-band orderings",
                    )

        # per-task response time: U_i = D_i - W_i must be >= 0
        for task in tasks:
            if usage >= 1.0:
                continue  # recurrence diverges; TASK002 already says why
            try:
                result = worst_case_response_time(task, tasks)
            except RecurrenceDivergenceError as exc:
                report.add(
                    "TASK003",
                    Severity.ERROR,
                    f"W_i recurrence diverged: {exc}",
                    location=f"task {task.name} (cpu {cpu})",
                )
                continue
            if not result.schedulable:
                report.add(
                    "TASK003",
                    Severity.ERROR,
                    f"worst-case response time exceeds deadline {task.deadline} "
                    "(U_i = D_i - W_i would be negative)",
                    location=f"task {task.name} (cpu {cpu})",
                    hint="lower this cpu's load or relax the deadline",
                )
                continue
            slack = task.deadline - result.value
            if task.promotion is not None and task.promotion > slack:
                report.add(
                    "TASK006",
                    Severity.ERROR,
                    f"promotion U={task.promotion} is later than "
                    f"D - W = {slack}; the hard deadline is no longer guaranteed",
                    location=f"task {task.name} (cpu {cpu})",
                    hint="recompute promotions (repro.analysis.promotion.assign_promotions)",
                )
            elif (
                tick is not None
                and task.promotion is not None
                and task.promotion > max(0, slack - tick)
            ):
                report.add(
                    "TASK006",
                    Severity.ERROR,
                    f"promotion U={task.promotion} leaves less than one tick "
                    f"({tick}) of observation latency before D - W = {slack}",
                    location=f"task {task.name} (cpu {cpu})",
                    hint="pass the same tick to assign_promotions",
                )
    return report


def lint_fault_config(
    taskset: TaskSet,
    bindings: Mapping[str, object],
    n_cpus: int,
    recovery=None,
) -> LintReport:
    """Lint the fault-recovery configuration (docs/FAULTS.md).

    ``bindings`` maps task name ->
    :class:`repro.kernel.microkernel.TaskBinding`; ``recovery`` is an
    optional :class:`repro.kernel.microkernel.RecoveryConfig`.

    TASK010 (error): the retry budget must fit the slack -- a crashed
    job re-executes up to ``retry_budget`` times at full WCET on top
    of its fault-free worst-case response time, so
    ``W_i + retry_budget * C_i`` must stay within ``D_i`` or the
    recovery policy itself breaks the hard guarantee.

    TASK011: criticality levels must be well-formed -- bindings that
    name unknown tasks (warning), a degradation config whose shed
    floor can never shed anything (warning), or one that would shed
    *every* periodic task on some processor (error: degraded mode
    must keep a useful system).
    """
    report = LintReport()
    known = {task.name for task in taskset.periodic}
    for name in sorted(bindings):
        if name not in known and not any(
            task.name == name for task in taskset.aperiodic
        ):
            report.add(
                "TASK011",
                Severity.WARNING,
                f"binding names unknown task {name!r}",
                location="fault config",
                hint="criticality/retry budgets on unknown tasks are dead config",
            )

    def binding_of(name: str):
        from repro.kernel.microkernel import TaskBinding

        binding = bindings.get(name)
        return binding if binding is not None else TaskBinding()

    groups = {cpu: [] for cpu in range(n_cpus)}
    for task in taskset.periodic:
        if 0 <= task.cpu < n_cpus:
            groups[task.cpu].append(task)

    for cpu in sorted(groups):
        tasks = groups[cpu]
        if not tasks:
            continue
        if sum(t.utilization for t in tasks) >= 1.0:
            continue  # lint_taskset's TASK002 already rejects the group
        for task in tasks:
            budget = binding_of(task.name).retry_budget
            if budget == 0:
                continue
            try:
                result = worst_case_response_time(task, tasks)
            except RecurrenceDivergenceError:
                continue  # TASK003 territory
            if not result.schedulable:
                continue
            worst = result.value + budget * task.wcet
            if worst > task.deadline:
                report.add(
                    "TASK010",
                    Severity.ERROR,
                    f"retry budget {budget} does not fit the slack: "
                    f"W + {budget}*C = {worst} > D = {task.deadline}",
                    location=f"task {task.name} (cpu {cpu})",
                    hint="lower retry_budget, shed load, or relax the deadline",
                )

    if recovery is not None and recovery.degradation_threshold > 0:
        floor = recovery.shed_below_criticality
        sheddable = [
            task.name
            for task in taskset.periodic
            if binding_of(task.name).criticality < floor
        ]
        if not sheddable:
            report.add(
                "TASK011",
                Severity.WARNING,
                f"degradation is armed (threshold "
                f"{recovery.degradation_threshold}) but no periodic task has "
                f"criticality below the shed floor {floor}; degraded mode "
                "would shed nothing",
                location="fault config",
                hint="mark best-effort tasks with a lower criticality",
            )
        for cpu in sorted(groups):
            tasks = groups[cpu]
            if tasks and all(
                binding_of(task.name).criticality < floor for task in tasks
            ):
                report.add(
                    "TASK011",
                    Severity.ERROR,
                    f"degraded mode would shed every periodic task on cpu "
                    f"{cpu} ({', '.join(sorted(t.name for t in tasks))})",
                    location=f"cpu {cpu}",
                    hint="keep at least one task at or above the shed floor per cpu",
                )
    return report


def check_fault_config(
    taskset: TaskSet, bindings: Mapping[str, object], n_cpus: int, recovery=None
) -> LintReport:
    """Fail-fast wrapper over :func:`lint_fault_config`."""
    return require_ok(
        lint_fault_config(taskset, bindings, n_cpus, recovery=recovery),
        subject="fault config",
    )


def check_taskset(
    taskset: TaskSet, n_cpus: int, tick: Optional[int] = None
) -> LintReport:
    """Fail-fast entry point: raise ``LintError`` on any error diagnostic.

    Called by the experiment runner and the analysis CLI before a
    simulation is started; returns the (error-free) report so callers
    can still surface warnings.
    """
    return require_ok(lint_taskset(taskset, n_cpus, tick=tick), subject="task set")
