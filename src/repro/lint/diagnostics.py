"""The shared diagnostic model of the lint subsystem.

Every lint pass (assembly, task set, trace) reports findings as
:class:`Diagnostic` records carrying a stable rule code (``ASM001``,
``TASK003``, ``RACE001`` ...), a severity, a human-oriented location,
and a fix hint.  ``docs/LINT.md`` catalogues every rule code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity; larger is worse."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    ``rule`` is the stable code documented in ``docs/LINT.md``;
    ``location`` is pass-specific ("pc 4 (loop+1)", "task wheel-speed",
    "event 12 @t=300"); ``hint`` suggests the fix.
    """

    rule: str
    severity: Severity
    message: str
    location: str = ""
    hint: str = ""

    def format(self) -> str:
        where = f" at {self.location}" if self.location else ""
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"{self.rule} {self.severity}{where}: {self.message}{hint}"

    def to_dict(self) -> dict:
        """Stable machine-readable form used by ``--format json``.

        The key set (``rule``/``severity``/``message``/``location``/
        ``hint``) is part of the CLI contract; add keys, never rename.
        """
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "location": self.location,
            "hint": self.hint,
        }

    def __str__(self) -> str:
        return self.format()


class LintReport:
    """An ordered collection of diagnostics with simple queries."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self.diagnostics: List[Diagnostic] = list(diagnostics)

    # ------------------------------------------------------------- building
    def add(
        self,
        rule: str,
        severity: Severity,
        message: str,
        location: str = "",
        hint: str = "",
    ) -> Diagnostic:
        diag = Diagnostic(rule, severity, message, location=location, hint=hint)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "LintReport") -> "LintReport":
        self.diagnostics.extend(other.diagnostics)
        return self

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when the subject is safe to run (no errors)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when there is nothing to report at all."""
        return not self.diagnostics

    def by_rule(self, rule: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def rules(self) -> List[str]:
        """Sorted set of rule codes present in the report."""
        return sorted({d.rule for d in self.diagnostics})

    def format(self, header: Optional[str] = None) -> str:
        lines: List[str] = []
        if header is not None:
            lines.append(header)
        if not self.diagnostics:
            lines.append("clean: no diagnostics")
        else:
            lines.extend(d.format() for d in self.diagnostics)
            lines.append(
                f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Machine-readable report: diagnostics plus summary counts."""
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "ok": self.ok,
        }


class LintError(Exception):
    """Raised by the fail-fast helpers when a report contains errors.

    Carries the offending report so callers can render or inspect it.
    """

    def __init__(self, report: LintReport, subject: str = "input"):
        self.report = report
        self.subject = subject
        summary = "; ".join(d.format() for d in report.errors[:5])
        extra = len(report.errors) - 5
        if extra > 0:
            summary += f"; ... {extra} more"
        super().__init__(f"{subject} failed lint: {summary}")


def require_ok(report: LintReport, subject: str = "input") -> LintReport:
    """Raise :class:`LintError` when ``report`` contains errors."""
    if not report.ok:
        raise LintError(report, subject=subject)
    return report
