"""Repo-determinism AST lint over the simulator's hot paths.

The whole reproduction hinges on bit-identical reruns: the run cache
keys on inputs, the WCET regression compares executor cycle counts
across sessions, and traces are diffed between runs.  A stray wall
clock read or an unseeded RNG silently breaks all of that.  This pass
walks the Python AST of ``src/repro/{sim,hw,kernel}`` (or any paths
given) and flags the three slips that have historically caused
irreproducible runs:

- ``DET001`` -- wall-clock reads: ``time.time``, ``time.monotonic``,
  ``time.perf_counter``, ``time.process_time``, ``time.time_ns`` and
  friends, or ``datetime.now``/``datetime.utcnow``.  Simulated time
  comes from the event engine, never the host.
- ``DET002`` -- unseeded randomness: calls to module-level
  ``random.<fn>`` (``random.random``, ``random.randint``, ...) or
  ``random.Random()``/``random.seed()`` with no arguments.  Seeded
  ``random.Random(seed)`` instances are fine.
- ``DET003`` -- iteration over a bare ``set`` display or ``set(...)``
  call (``for x in {a, b}``, ``sorted`` missing): set iteration order
  is insertion/hash dependent, so iterating an ad-hoc set feeds
  hash-order into the simulation.  Wrap in ``sorted(...)`` instead.

Diagnostics reuse the shared :class:`~repro.lint.diagnostics.Diagnostic`
model, so ``repro-lint determinism`` gets ``--format json`` and CI exit
codes for free.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from repro.lint.diagnostics import LintReport, Severity

#: Functions in the ``time`` module that read the host clock.
WALL_CLOCK_TIME_FNS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)

#: ``datetime``/``date`` constructors that read the host clock.
WALL_CLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: Default trees scanned by ``repro-lint determinism`` and the pytest tier.
DEFAULT_PATHS = ("src/repro/sim", "src/repro/hw", "src/repro/kernel",
                 "src/repro/faults", "src/repro/simulators")


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an attribute/name chain, '' otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, filename: str, report: LintReport):
        self.filename = filename
        self.report = report

    def _where(self, node: ast.AST) -> str:
        return f"{self.filename}:{node.lineno}"

    # ------------------------------------------------------------- DET001/2
    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        head, _, tail = name.rpartition(".")
        if head == "time" and tail in WALL_CLOCK_TIME_FNS:
            self.report.add(
                "DET001",
                Severity.ERROR,
                f"wall-clock read {name}() in a simulation path",
                location=self._where(node),
                hint="simulated time comes from the event engine, not the host",
            )
        elif tail in WALL_CLOCK_DATETIME_FNS and head.split(".")[-1] in (
            "datetime",
            "date",
        ):
            self.report.add(
                "DET001",
                Severity.ERROR,
                f"wall-clock read {name}() in a simulation path",
                location=self._where(node),
                hint="timestamp results after the run, outside src/repro",
            )
        elif head == "random":
            if tail in ("Random", "seed") and not node.args and not node.keywords:
                self.report.add(
                    "DET002",
                    Severity.ERROR,
                    f"unseeded random.{tail}() in a simulation path",
                    location=self._where(node),
                    hint="pass an explicit seed derived from the run config",
                )
            elif tail not in ("Random", "seed"):
                self.report.add(
                    "DET002",
                    Severity.ERROR,
                    f"module-level random.{tail}() uses the shared unseeded RNG",
                    location=self._where(node),
                    hint="use a random.Random(seed) instance instead",
                )
        self.generic_visit(node)

    # --------------------------------------------------------------- DET003
    def _check_iter(self, iter_node: ast.AST) -> None:
        is_set_display = isinstance(iter_node, ast.Set)
        is_set_call = (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in ("set", "frozenset")
        )
        if is_set_display or is_set_call:
            what = "set display" if is_set_display else "set(...) call"
            self.report.add(
                "DET003",
                Severity.ERROR,
                f"iteration over a bare {what}: order is hash-dependent",
                location=self._where(iter_node),
                hint="wrap in sorted(...) to fix the iteration order",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)


def lint_python_source(source: str, filename: str = "<string>") -> LintReport:
    """Run the determinism rules over one Python source text."""
    report = LintReport()
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        report.add(
            "DET000",
            Severity.ERROR,
            f"cannot parse: {exc.msg}",
            location=f"{filename}:{exc.lineno or 0}",
        )
        return report
    _DeterminismVisitor(filename, report).visit(tree)
    return report


def _python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_paths(paths: Sequence[Union[str, Path]] = DEFAULT_PATHS) -> LintReport:
    """Run the determinism rules over files/directories of Python code."""
    report = LintReport()
    for path in _python_files(paths):
        try:
            source = path.read_text()
        except OSError as exc:
            report.add(
                "DET000",
                Severity.ERROR,
                f"cannot read: {exc}",
                location=str(path),
            )
            continue
        report.extend(lint_python_source(source, filename=str(path)))
    return report
