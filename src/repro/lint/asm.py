"""Static analysis of assembled MicroBlaze-subset programs.

Three layers over one control-flow graph:

1. **CFG construction** from a :class:`~repro.hw.isa.Program`.
   ``brl`` sites are treated as calls (the analysis is unit-based:
   the main program plus one unit per called routine), ``jr`` as a
   return/exit, so the leaf-routine calling convention of
   :mod:`repro.hw.asmlib` is analysed interprocedurally without a
   whole-program product graph.
2. **Definite-initialization dataflow** (the forward all-paths dual of
   reaching definitions) flagging reads of registers that some path
   leaves unwritten, plus structural checks: unreachable code,
   fall-through past the end, branch targets outside the program and
   absolute memory immediates outside the memory map.
3. **Static WCET upper bound**: longest path over the loop-contracted
   CFG, with user-supplied iteration bounds per loop-header label and a
   pessimistic per-instruction cost model (every fetch misses the
   I-cache, every access goes to uncontended DDR, every branch pays the
   flush).  The bound is therefore always >= the cycle count measured
   by :class:`~repro.hw.isa.ISAExecutor` on a single-master bus.

Rule codes ``ASM001``-``ASM008`` are catalogued in ``docs/LINT.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.hw.cache import DirectMappedICache
from repro.hw.isa import BRANCH_PENALTY, Instruction, Program
from repro.hw.memory import DDRMemory, LocalBRAM, SharedBRAM
from repro.lint.diagnostics import Diagnostic, LintReport, Severity

#: Conditional branches: test rd, fall through when the test fails.
COND_BRANCHES = frozenset({"beqz", "bnez", "bltz", "blez", "bgtz", "bgez"})
#: 3-register ALU ops (read ra, rb; write rd).
ALU_RRR = frozenset(
    {"add", "sub", "rsub", "mul", "and", "or", "xor", "sll", "srl", "sra", "cmp"}
)
#: Register-immediate ALU ops (read ra; write rd).
ALU_RRI = frozenset(
    {"addi", "subi", "muli", "andi", "ori", "xori", "slli", "srli", "srai"}
)

#: Registers the asmlib calling convention defines at routine entry:
#: arguments r5..r7 and the brl-written return address r15.
CALLING_CONVENTION_PARAMS: Tuple[int, ...] = (5, 6, 7, 15)


@dataclass(frozen=True)
class MemoryRegion:
    """One statically known address range (for absolute-immediate checks)."""

    name: str
    base: int
    size: int

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size


def default_memory_map() -> Tuple[MemoryRegion, ...]:
    """The SoC's default regions: local BRAM, boot BRAM, DDR."""
    local = LocalBRAM(0)
    boot = SharedBRAM()
    ddr = DDRMemory()
    return (
        MemoryRegion("local-bram", local.base, local.size),
        MemoryRegion("boot-bram", boot.base, boot.size),
        MemoryRegion("ddr", ddr.base, ddr.size),
    )


# --------------------------------------------------------------- register use
def regs_read(instr: Instruction) -> Set[int]:
    """Architectural registers the instruction reads."""
    op = instr.op
    if op in ALU_RRR:
        return {instr.ra, instr.rb}
    if op in ALU_RRI:
        return {instr.ra}
    if op == "lw":
        return {instr.ra, instr.rb}
    if op == "lwi":
        return {instr.ra}
    if op == "sw":
        return {instr.rd, instr.ra, instr.rb}
    if op == "swi":
        return {instr.rd, instr.ra}
    if op in COND_BRANCHES or op == "jr":
        return {instr.rd}
    return set()


def regs_written(instr: Instruction) -> Set[int]:
    """Architectural registers the instruction writes."""
    op = instr.op
    if op in ALU_RRR or op in ALU_RRI or op in ("lw", "lwi", "brl"):
        return {instr.rd}
    return set()


# ------------------------------------------------------------------ cost model
@dataclass(frozen=True)
class CostModel:
    """Pessimistic per-instruction cycle costs for the WCET bound.

    Defaults mirror the executor's worst case on an uncontended bus:
    1 base cycle, a full I-cache line refill from DDR on every fetch,
    an uncached single-word DDR transaction per load/store, and the
    taken-branch pipeline flush on every control transfer.
    """

    base: int = 1
    branch_penalty: int = BRANCH_PENALTY
    fetch_miss: int = DDRMemory().access_latency(DirectMappedICache(0).line_words)
    data_access: int = DDRMemory().access_latency(1)

    def cost(self, instr: Instruction) -> int:
        cycles = self.base + self.fetch_miss
        if instr.op in ("lw", "lwi", "sw", "swi"):
            cycles += self.data_access
        if instr.op in COND_BRANCHES or instr.op in ("br", "brl", "jr"):
            cycles += self.branch_penalty
        return cycles


# ------------------------------------------------------------------------- CFG
@dataclass
class Unit:
    """One analysis unit: the main program or a called routine."""

    entry: int
    nodes: Set[int] = field(default_factory=set)
    succs: Dict[int, List[int]] = field(default_factory=dict)
    preds: Dict[int, List[int]] = field(default_factory=dict)
    calls: Dict[int, int] = field(default_factory=dict)  # call site -> callee entry
    exits: Set[int] = field(default_factory=set)  # halt / jr sites


class ProgramAnalysis:
    """CFG + call graph of a program, shared by the lint and WCET passes."""

    def __init__(self, program: Program, entry: int = 0):
        self.program = program
        self.entry = entry
        self.report = LintReport()
        self.units: Dict[int, Unit] = {}
        self.recursive = False
        self._label_at = self._index_labels()
        if not 0 <= entry < len(program.instructions):
            self.report.add(
                "ASM005",
                Severity.ERROR,
                f"entry index {entry} is outside the program "
                f"({len(program.instructions)} instruction(s))",
                hint="the program must contain at least one instruction at the entry",
            )
            self.units[entry] = Unit(entry=entry)
            self._order = [self.units[entry]]
            return
        self._build_units()
        self._order = self._call_order()

    # ------------------------------------------------------------- locations
    def _index_labels(self) -> Dict[int, str]:
        """instruction index -> label name, from the symbol table."""
        base, n = self.program.base, len(self.program.instructions)
        labels: Dict[int, str] = {}
        for name, addr in self.program.symbols.items():
            if addr >= base and (addr - base) % 4 == 0:
                index = (addr - base) // 4
                if 0 <= index < n:
                    labels.setdefault(index, name)
        return labels

    def location(self, index: int) -> str:
        """Readable position: pc, source line and nearest label."""
        parts = [f"pc {index}"]
        lines = getattr(self.program, "lines", None)
        if lines and 0 <= index < len(lines):
            parts.insert(0, f"line {lines[index]}")
        for back in range(index, -1, -1):
            if back in self._label_at:
                offset = index - back
                suffix = f"+{offset}" if offset else ""
                parts.append(f"{self._label_at[back]}{suffix}")
                break
        return ", ".join(parts)

    def label_of(self, index: int) -> Optional[str]:
        return self._label_at.get(index)

    # ------------------------------------------------------------ CFG build
    def _successors(self, index: int) -> Tuple[List[int], Optional[int], bool]:
        """(intra-unit successors, call target, is_exit) of one site."""
        instr = self.program.instructions[index]
        n = len(self.program.instructions)
        op = instr.op
        if op == "halt" or op == "jr":
            return [], None, True
        succs: List[int] = []
        call: Optional[int] = None

        def target_ok(target: int) -> bool:
            if 0 <= target < n:
                return True
            self.report.add(
                "ASM005",
                Severity.ERROR,
                f"{op} targets instruction {target}, outside the program (0..{n - 1})",
                location=self.location(index),
                hint="branch/call targets must be labels inside .text",
            )
            return False

        if op == "br":
            if target_ok(instr.imm):
                succs.append(instr.imm)
            return succs, None, False
        if op == "brl":
            if target_ok(instr.imm):
                call = instr.imm
        elif op in COND_BRANCHES:
            if target_ok(instr.imm):
                succs.append(instr.imm)
        # fall-through edge (everything except halt/jr/br)
        if index + 1 < n:
            succs.append(index + 1)
        else:
            self.report.add(
                "ASM003",
                Severity.ERROR,
                f"control falls past the end of the program after {op!r}",
                location=self.location(index),
                hint="end every path with halt (or jr in a routine)",
            )
        return succs, call, False

    def _build_units(self) -> None:
        pending = [self.entry]
        while pending:
            entry = pending.pop()
            if entry in self.units:
                continue
            unit = Unit(entry=entry)
            self.units[entry] = unit
            worklist = [entry]
            while worklist:
                index = worklist.pop()
                if index in unit.nodes:
                    continue
                unit.nodes.add(index)
                succs, call, is_exit = self._successors(index)
                unit.succs[index] = succs
                if is_exit:
                    unit.exits.add(index)
                if call is not None:
                    unit.calls[index] = call
                    if call not in self.units:
                        pending.append(call)
                for succ in succs:
                    unit.preds.setdefault(succ, []).append(index)
                    worklist.append(succ)

    def _call_order(self) -> List[Unit]:
        """Units in callee-before-caller order; flags recursion (ASM008)."""
        order: List[Unit] = []
        state: Dict[int, int] = {}  # 0 visiting, 1 done

        def visit(entry: int, stack: Tuple[int, ...]) -> None:
            if state.get(entry) == 1:
                return
            if state.get(entry) == 0:
                self.recursive = True
                self.report.add(
                    "ASM008",
                    Severity.ERROR,
                    "recursive call cycle: "
                    + " -> ".join(self.label_of(e) or f"pc {e}" for e in stack + (entry,)),
                    location=self.location(entry),
                    hint="the leaf-routine convention (brl/jr, no stack) cannot recurse",
                )
                return
            state[entry] = 0
            for callee in self.units[entry].calls.values():
                visit(callee, stack + (entry,))
            state[entry] = 1
            order.append(self.units[entry])

        visit(self.entry, ())
        # units discovered but unreachable through a non-recursive chain
        for entry in self.units:
            if state.get(entry) != 1:
                state[entry] = 1
                order.insert(0, self.units[entry])
        return order

    @property
    def reachable(self) -> Set[int]:
        covered: Set[int] = set()
        for unit in self.units.values():
            covered |= unit.nodes
        return covered


# ----------------------------------------------------------------- lint pass
def _full_regs() -> FrozenSet[int]:
    return frozenset(range(32))


def _solve_definite(
    unit: Unit,
    entry_set: FrozenSet[int],
    transfer: Dict[int, FrozenSet[int]],
) -> Dict[int, FrozenSet[int]]:
    """All-paths forward dataflow: IN[n] = meet(OUT[preds]), OUT = IN | gen.

    Returns the IN set per node.  ``transfer`` maps node -> generated
    (definitely written) registers, call effects already folded in.
    """
    full = _full_regs()
    in_sets: Dict[int, FrozenSet[int]] = {n: full for n in unit.nodes}
    in_sets[unit.entry] = entry_set
    worklist = list(unit.nodes)
    while worklist:
        node = worklist.pop()
        preds = [p for p in unit.preds.get(node, []) if p in unit.nodes]
        if node == unit.entry:
            new_in = entry_set
        elif preds:
            new_in = full
            for pred in preds:
                new_in = new_in & (in_sets[pred] | transfer[pred])
        else:  # unreachable within unit (defensive)
            new_in = full
        if new_in != in_sets[node]:
            in_sets[node] = new_in
            worklist.extend(unit.succs.get(node, []))
    return in_sets


def _parse_params(params: Iterable[Union[int, str]]) -> FrozenSet[int]:
    resolved: Set[int] = set()
    for param in params:
        if isinstance(param, str):
            param = int(param.lower().lstrip("r"))
        if not 0 <= param < 32:
            raise ValueError(f"parameter register r{param} out of range")
        resolved.add(param)
    return frozenset(resolved)


def lint_program(
    program: Program,
    entry: int = 0,
    params: Iterable[Union[int, str]] = (),
    memory_map: Optional[Sequence[MemoryRegion]] = None,
    analysis: Optional[ProgramAnalysis] = None,
) -> LintReport:
    """Run the structural and dataflow checks; returns a report.

    ``params`` lists registers assumed initialized at ``entry`` (e.g.
    :data:`CALLING_CONVENTION_PARAMS` when linting an asmlib routine on
    its own).  ``memory_map`` overrides the default SoC regions for the
    absolute-address check.
    """
    analysis = analysis or ProgramAnalysis(program, entry=entry)
    report = LintReport().extend(analysis.report)
    instructions = program.instructions
    regions = tuple(memory_map) if memory_map is not None else default_memory_map()
    entry_params = _parse_params(params)

    # --- per-site structural checks over reachable code
    for index in sorted(analysis.reachable):
        instr = instructions[index]
        if instr.op in ("lwi", "swi") and instr.ra == 0:
            addr = instr.imm
            if addr % 4:
                report.add(
                    "ASM004",
                    Severity.ERROR,
                    f"absolute address {addr:#x} is not word aligned",
                    location=analysis.location(index),
                    hint="word loads/stores need 4-byte aligned addresses",
                )
            elif not any(region.contains(addr) for region in regions):
                names = ", ".join(
                    f"{r.name}=[{r.base:#x},{r.base + r.size:#x})" for r in regions
                )
                report.add(
                    "ASM004",
                    Severity.ERROR,
                    f"absolute address {addr:#x} maps to no memory region ({names})",
                    location=analysis.location(index),
                    hint="use a .data label or an address inside the memory map",
                )
        if 0 in regs_written(instr):
            report.add(
                "ASM007",
                Severity.WARNING,
                f"{instr.op} writes r0; the result is discarded (r0 is hardwired to zero)",
                location=analysis.location(index),
                hint="target a real register, or use nop if the value is unused",
            )

    # --- unreachable code (grouped into contiguous runs)
    covered = analysis.reachable
    run_start: Optional[int] = None
    for index in range(len(instructions) + 1):
        dead = index < len(instructions) and index not in covered
        if dead and run_start is None:
            run_start = index
        elif not dead and run_start is not None:
            span = (
                f"pc {run_start}..{index - 1}" if index - 1 > run_start else f"pc {run_start}"
            )
            report.add(
                "ASM002",
                Severity.WARNING,
                f"unreachable code ({span}, {index - run_start} instruction(s))",
                location=analysis.location(run_start),
                hint="delete it, or add a branch/call that reaches it",
            )
            run_start = None

    # --- definite-initialization dataflow (interprocedural via summaries)
    if not analysis.recursive:
        # bottom-up: definitely-written summary per unit
        summaries: Dict[int, FrozenSet[int]] = {}
        for unit in analysis._order:
            transfer = {}
            for node in unit.nodes:
                gen = set(regs_written(instructions[node]))
                if node in unit.calls:
                    gen |= summaries.get(unit.calls[node], frozenset())
                transfer[node] = frozenset(gen)
            in_sets = _solve_definite(unit, frozenset(), transfer)
            if unit.exits:
                summary = _full_regs()
                for exit_node in unit.exits:
                    summary = summary & (in_sets[exit_node] | transfer[exit_node])
            else:  # never returns; vacuously defines everything
                summary = _full_regs()
            summaries[unit.entry] = summary

        # top-down: entry sets per unit (callers before callees)
        entry_sets: Dict[int, FrozenSet[int]] = {
            analysis.entry: frozenset({0}) | entry_params
        }
        flagged: Set[Tuple[int, int]] = set()
        for unit in reversed(analysis._order):
            entry_set = entry_sets.get(unit.entry)
            if entry_set is None:  # callee never reached from a live call site
                entry_set = frozenset({0})
            transfer = {}
            for node in unit.nodes:
                gen = set(regs_written(instructions[node]))
                if node in unit.calls:
                    gen |= summaries.get(unit.calls[node], frozenset())
                transfer[node] = frozenset(gen)
            in_sets = _solve_definite(unit, entry_set, transfer)
            for node in sorted(unit.nodes):
                instr = instructions[node]
                for reg in sorted(regs_read(instr) - in_sets[node] - {0}):
                    if (node, reg) in flagged:
                        continue
                    flagged.add((node, reg))
                    report.add(
                        "ASM001",
                        Severity.ERROR,
                        f"{instr.op} reads r{reg}, which is not initialized on every path",
                        location=analysis.location(node),
                        hint=f"write r{reg} before this point (or declare it a parameter)",
                    )
            # propagate call-site states into callee entry assumptions
            for site, callee in unit.calls.items():
                at_call = in_sets[site] | {instructions[site].rd}
                previous = entry_sets.get(callee)
                entry_sets[callee] = (
                    at_call if previous is None else previous & at_call
                )

    return report


# ------------------------------------------------------------------ WCET pass
@dataclass
class WCETResult:
    """Outcome of the static WCET pass.

    ``cycles`` is ``None`` when the bound does not exist (missing loop
    bound, recursion, or a structural error); the report says why.
    ``per_unit`` maps unit entry index -> that unit's bound.
    """

    cycles: Optional[int]
    report: LintReport
    per_unit: Dict[int, int] = field(default_factory=dict)

    @property
    def bounded(self) -> bool:
        return self.cycles is not None


def _strongly_connected(
    nodes: Set[int], succs: Dict[int, List[int]]
) -> List[List[int]]:
    """Iterative Tarjan; components in reverse topological order."""
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    components: List[List[int]] = []
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_i = work.pop()
            if child_i == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            children = [s for s in succs.get(node, []) if s in nodes]
            advanced = False
            for next_i in range(child_i, len(children)):
                child = children[next_i]
                if child not in index_of:
                    work.append((node, next_i + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if advanced:
                continue
            if low[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return components


def _longest_path(
    nodes: Set[int],
    entry: int,
    succs: Dict[int, List[int]],
    node_cost: Dict[int, int],
    bounds: Dict[Union[str, int], int],
    analysis: ProgramAnalysis,
    report: LintReport,
) -> Optional[int]:
    """Longest entry-anywhere path with loops contracted by their bounds."""
    components = _strongly_connected(nodes, succs)
    comp_of: Dict[int, int] = {}
    for comp_id, members in enumerate(components):
        for member in members:
            comp_of[member] = comp_id

    comp_cost: List[Optional[int]] = [None] * len(components)
    for comp_id, members in enumerate(components):
        member_set = set(members)
        cyclic = len(members) > 1 or any(
            node in succs.get(node, []) for node in members
        )
        if not cyclic:
            comp_cost[comp_id] = node_cost[members[0]]
            continue
        # loop headers: entered from outside the component (or the entry)
        headers = {
            node
            for node in members
            if node == entry
            or any(
                pred not in member_set
                for pred, outs in succs.items()
                if node in outs and pred in nodes
            )
        }
        if len(headers) != 1:
            report.add(
                "ASM006",
                Severity.ERROR,
                f"irreducible loop with {len(headers)} entry points "
                f"({', '.join(analysis.location(h) for h in sorted(headers))})",
                location=analysis.location(min(members)),
                hint="restructure so each loop has a single labelled header",
            )
            return None
        header = headers.pop()
        label = analysis.label_of(header)
        bound = bounds.get(label) if label is not None else None
        if bound is None:
            bound = bounds.get(header)
        if bound is None:
            report.add(
                "ASM006",
                Severity.ERROR,
                f"loop at {analysis.location(header)} has no iteration bound",
                location=analysis.location(header),
                hint=(
                    f"pass loop_bounds={{{label or header}!r: N}} with the "
                    "maximum iteration count"
                ),
            )
            return None
        if bound < 1:
            report.add(
                "ASM006",
                Severity.ERROR,
                f"loop bound {bound} for {label or header} must be >= 1",
                location=analysis.location(header),
            )
            return None
        inner_succs = {
            node: [s for s in succs.get(node, []) if s in member_set and s != header]
            for node in members
        }
        inner = _longest_path(
            member_set, header, inner_succs, node_cost, bounds, analysis, report
        )
        if inner is None:
            return None
        comp_cost[comp_id] = bound * inner

    # condensation longest path (components arrive in reverse topo order)
    dist: List[Optional[int]] = [None] * len(components)
    entry_comp = comp_of[entry]
    dist[entry_comp] = comp_cost[entry_comp]
    best = dist[entry_comp] or 0
    for comp_id in range(len(components) - 1, -1, -1):
        if dist[comp_id] is None:
            continue
        best = max(best, dist[comp_id])
        for node in components[comp_id]:
            for succ in succs.get(node, []):
                if succ not in nodes:
                    continue
                succ_comp = comp_of[succ]
                if succ_comp == comp_id:
                    continue
                candidate = dist[comp_id] + comp_cost[succ_comp]
                if dist[succ_comp] is None or candidate > dist[succ_comp]:
                    dist[succ_comp] = candidate
    return best


def wcet_bound(
    program: Program,
    loop_bounds: Optional[Dict[Union[str, int], int]] = None,
    entry: int = 0,
    cost_model: Optional[CostModel] = None,
    analysis: Optional[ProgramAnalysis] = None,
    *,
    exclude_edges: Optional[Iterable[Tuple[int, int]]] = None,
    exclude_nodes: Optional[Iterable[int]] = None,
) -> WCETResult:
    """Static WCET upper bound of ``program`` from ``entry``.

    ``loop_bounds`` maps loop-header labels (or instruction indices) to
    maximum iteration counts; every cycle in the CFG needs one.  The
    result is an upper bound on :class:`~repro.hw.isa.ISAExecutor`
    cycles for any execution respecting those bounds, assuming an
    uncontended bus (single master).

    ``exclude_edges``/``exclude_nodes`` drop CFG edges and nodes a
    value analysis (:mod:`repro.lint.absint`) proved infeasible before
    the longest-path computation; a unit whose entry is excluded never
    runs and contributes 0 cycles.
    """
    analysis = analysis or ProgramAnalysis(program, entry=entry)
    report = LintReport().extend(analysis.report)
    model = cost_model or CostModel()
    bounds = dict(loop_bounds or {})
    dead_edges = frozenset(exclude_edges or ())
    dead_nodes = frozenset(exclude_nodes or ())

    if analysis.recursive:
        return WCETResult(cycles=None, report=report)
    if not report.ok:  # structural errors (ASM003/ASM005) void the bound
        return WCETResult(cycles=None, report=report)

    per_unit: Dict[int, int] = {}
    failed = False
    for unit in analysis._order:  # callees first
        nodes = unit.nodes - dead_nodes
        if unit.entry in dead_nodes or not nodes:
            per_unit[unit.entry] = 0  # unit proven unreachable: never runs
            continue
        succs = {
            node: [
                succ
                for succ in unit.succs.get(node, [])
                if succ in nodes and (node, succ) not in dead_edges
            ]
            for node in nodes
        }
        node_cost: Dict[int, int] = {}
        for node in nodes:
            cost = model.cost(program.instructions[node])
            if node in unit.calls:
                callee_cycles = per_unit.get(unit.calls[node])
                if callee_cycles is None:
                    failed = True
                    break
                cost += callee_cycles
            node_cost[node] = cost
        if failed:
            break
        unit_cycles = _longest_path(
            nodes, unit.entry, succs, node_cost, bounds, analysis, report
        )
        if unit_cycles is None:
            failed = True
            break
        per_unit[unit.entry] = unit_cycles

    if failed:
        return WCETResult(cycles=None, report=report, per_unit=per_unit)
    return WCETResult(
        cycles=per_unit[analysis.entry], report=report, per_unit=per_unit
    )


def lint_source(
    source: str,
    params: Iterable[Union[int, str]] = (),
    text_base: int = 0x4000_0000,
) -> LintReport:
    """Assemble then lint; assembler errors become ASM000 diagnostics."""
    from repro.hw.assembler import AssemblerError, assemble

    try:
        program = assemble(source, text_base=text_base)
    except AssemblerError as exc:
        report = LintReport()
        report.add(
            "ASM000",
            Severity.ERROR,
            str(exc),
            hint="fix the assembly syntax/linkage error first",
        )
        return report
    return lint_program(program, params=params)
