"""Abstract interpretation of assembled MicroBlaze-subset programs.

An interval/constant value analysis over the CFG built by
:class:`~repro.lint.asm.ProgramAnalysis`, run per unit with widening at
loop heads, a descending narrowing sweep, and branch-edge refinement.
Calls are analysed context-sensitively (the callee is re-analysed per
distinct abstract entry state, memoised), which the leaf-routine
``brl``/``jr`` convention keeps cheap.

From one fixpoint the pass derives three verified products:

1. **Loop-bound inference** for counted loops (a countdown register
   with a single ``addi r, r, -c`` step on every cycle and an exit
   branch testing it).  Inferred trip counts are cross-checked against
   ``#@ bound=`` source annotations (rules ``ASM101``-``ASM103``) and,
   in the kernel audit, against actual executor iteration counts.
2. **Memory and stack safety proofs**: every load/store's abstract
   address interval must fit a region of the memory map (``ASM104``),
   and the worst-case call-chain frame depth must fit the per-task
   stack allocation (``ASM105``).
3. **Path-sensitive WCET tightening**: branch edges that are
   infeasible in every analysed context (and the code they guard) are
   excluded from the longest-path bound, and inferred trip counts cap
   the annotated loop bounds, so the *verified* WCET is never looser
   than the annotation-based one and never tighter than the measured
   executor cycles.

Non-relational intervals cannot bound loop-carried pointers (a
``memcpy`` cursor has no finite interval fixpoint), so induction
registers -- single ``addi r, r, c`` step per iteration -- are *pinned*
at the loop head to ``init + c*[0, N-1]`` once the trip count ``N`` is
known.  The pin is sound by the external induction argument, not by the
abstract fixpoint.

Rule codes ``ASM100``-``ASM105`` are catalogued in ``docs/LINT.md``.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.hw.isa import MASK32, Instruction, Program
from repro.lint.asm import (
    ALU_RRI,
    ALU_RRR,
    COND_BRANCHES,
    CostModel,
    MemoryRegion,
    ProgramAnalysis,
    WCETResult,
    _strongly_connected,
    default_memory_map,
    regs_written,
    wcet_bound,
)
from repro.lint.diagnostics import LintReport, Severity

MAXU = MASK32
_TWO32 = 1 << 32
_SIGN_MAX = (1 << 31) - 1

#: Loop-head visits before widening kicks in (delayed widening keeps
#: short chains exact).
WIDEN_DELAY = 3

#: Node-processing budget per analysis; exceeding it is ASM100.
DEFAULT_STEP_BUDGET = 200_000

#: Default per-task stack allocation, in words.  Mirrors
#: ``repro.kernel.microkernel.TaskBinding.stack_words`` (cross-checked
#: by a test; duplicated here so the lint tier does not import the
#: kernel).
DEFAULT_STACK_BUDGET_WORDS = 256


# ------------------------------------------------------------------ intervals
@dataclass(frozen=True)
class Interval:
    """An unsigned 32-bit interval ``[lo, hi]`` (inclusive, lo <= hi)."""

    lo: int
    hi: int

    def __post_init__(self):
        if not 0 <= self.lo <= self.hi <= MAXU:
            raise ValueError(f"bad interval [{self.lo:#x}, {self.hi:#x}]")

    # ------------------------------------------------------------- predicates
    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    @property
    def is_top(self) -> bool:
        return self.lo == 0 and self.hi == MAXU

    @property
    def value(self) -> int:
        if not self.is_const:
            raise ValueError(f"{self} is not a constant")
        return self.lo

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    # ------------------------------------------------------ lattice operations
    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> Optional["Interval"]:
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def widen(self, newer: "Interval") -> "Interval":
        lo = self.lo if newer.lo >= self.lo else 0
        hi = self.hi if newer.hi <= self.hi else MAXU
        return Interval(lo, hi)

    def signed_bounds(self) -> Tuple[int, int]:
        """Bounds of the interval viewed as signed 32-bit values."""
        if self.hi <= _SIGN_MAX:
            return self.lo, self.hi
        if self.lo > _SIGN_MAX:
            return self.lo - _TWO32, self.hi - _TWO32
        return -(1 << 31), _SIGN_MAX  # straddles the sign boundary

    def __str__(self) -> str:
        if self.is_const:
            return f"{{{self.lo:#x}}}"
        if self.is_top:
            return "T"
        return f"[{self.lo:#x}, {self.hi:#x}]"


TOP = Interval(0, MAXU)
ZERO = Interval(0, 0)
_NEG = Interval(1 << 31, MAXU)  # signed < 0
_NONNEG = Interval(0, _SIGN_MAX)  # signed >= 0
_POS = Interval(1, _SIGN_MAX)  # signed > 0


def const(value: int) -> Interval:
    value &= MASK32
    return Interval(value, value)


def _wrap(lo: int, hi: int) -> Interval:
    """Modular reduction of an exact integer range into the domain."""
    if hi - lo + 1 >= _TWO32:
        return TOP
    lo_m, hi_m = lo % _TWO32, hi % _TWO32
    if lo_m <= hi_m:
        return Interval(lo_m, hi_m)
    return TOP  # straddles the wrap-around point


# ------------------------------------------------------------------ transfer
def _bitlen_bound(a: Interval, b: Interval) -> Interval:
    bits = max(a.hi.bit_length(), b.hi.bit_length())
    return Interval(0, (1 << bits) - 1) if bits else ZERO


def _tf_alu(op: str, a: Interval, b: Interval) -> Interval:
    """Abstract value of ``op`` over the unsigned-interval domain."""
    if op == "add":
        return _wrap(a.lo + b.lo, a.hi + b.hi)
    if op == "sub":
        return _wrap(a.lo - b.hi, a.hi - b.lo)
    if op == "rsub":
        return _wrap(b.lo - a.hi, b.hi - a.lo)
    if op == "mul":
        return _wrap(a.lo * b.lo, a.hi * b.hi)
    if op == "and":
        if a.is_const and b.is_const:
            return const(a.value & b.value)
        return Interval(0, min(a.hi, b.hi))
    if op == "or":
        if a.is_const and b.is_const:
            return const(a.value | b.value)
        bound = _bitlen_bound(a, b)
        return Interval(min(max(a.lo, b.lo), bound.hi), bound.hi)
    if op == "xor":
        if a.is_const and b.is_const:
            return const(a.value ^ b.value)
        return _bitlen_bound(a, b)
    if op == "sll":
        if b.is_const:
            k = b.value & 31
            return _wrap(a.lo << k, a.hi << k)
        return TOP
    if op == "srl":
        if b.is_const:
            k = b.value & 31
            return Interval(a.lo >> k, a.hi >> k)
        return Interval(0, a.hi)
    if op == "sra":
        if b.is_const:
            k = b.value & 31
            slo, shi = a.signed_bounds()
            return _wrap(slo >> k, shi >> k)
        return TOP
    if op == "cmp":  # rd = signed(rb) - signed(ra)
        alo, ahi = a.signed_bounds()
        blo, bhi = b.signed_bounds()
        return _wrap(blo - ahi, bhi - alo)
    return TOP


def _exclude_zero(iv: Interval) -> Optional[Interval]:
    if iv.lo > 0:
        return iv
    if iv.hi == 0:
        return None
    return Interval(1, iv.hi)


def refine_branch(op: str, iv: Interval) -> Tuple[Optional[Interval], Optional[Interval]]:
    """(taken, fall-through) refinements of the tested register.

    ``None`` means the corresponding edge is infeasible for ``iv``.
    Branch tests read the *signed* register value.
    """
    if op == "beqz":
        return iv.meet(ZERO), _exclude_zero(iv)
    if op == "bnez":
        return _exclude_zero(iv), iv.meet(ZERO)
    if op == "bltz":
        return iv.meet(_NEG), iv.meet(_NONNEG)
    if op == "bgez":
        return iv.meet(_NONNEG), iv.meet(_NEG)
    if op == "bgtz":
        # fall-through holds signed <= 0 = {0} u [2^31, MAXU]: only an
        # interval when iv is known non-negative.
        fall = iv.meet(ZERO) if iv.hi <= _SIGN_MAX else iv
        return iv.meet(_POS), fall
    if op == "blez":
        taken = iv.meet(ZERO) if iv.hi <= _SIGN_MAX else iv
        return taken, iv.meet(_POS)
    return iv, iv  # pragma: no cover - COND_BRANCHES is exhaustive


# ------------------------------------------------------------- machine states
#: One abstract machine state: a 32-tuple of intervals (r0 fixed at 0).
RegState = Tuple[Interval, ...]


def initial_state(reg_ranges: Optional[Dict[int, Interval]] = None) -> RegState:
    regs = [TOP] * 32
    regs[0] = ZERO
    for reg, iv in (reg_ranges or {}).items():
        if not 0 < reg < 32:
            raise ValueError(f"register r{reg} out of range for an entry range")
        regs[reg] = iv
    return tuple(regs)


def _write(state: RegState, reg: int, iv: Interval) -> RegState:
    if reg == 0:
        return state
    regs = list(state)
    regs[reg] = iv
    return tuple(regs)


def _join_states(a: Optional[RegState], b: RegState) -> RegState:
    if a is None:
        return b
    return tuple(x.join(y) for x, y in zip(a, b))


def _meet_states(a: RegState, b: RegState) -> RegState:
    """Per-register meet, keeping ``b`` where the meet would be empty."""
    return tuple((x.meet(y) or y) for x, y in zip(a, b))


def _transfer(instr: Instruction, state: RegState) -> RegState:
    """Abstract effect of one non-control instruction."""
    op = instr.op
    if op in ALU_RRR:
        return _write(state, instr.rd, _tf_alu(op, state[instr.ra], state[instr.rb]))
    if op in ALU_RRI:
        return _write(
            state, instr.rd, _tf_alu(op[:-1], state[instr.ra], const(instr.imm))
        )
    if op in ("lw", "lwi"):
        # memory contents are not tracked: loads return TOP
        return _write(state, instr.rd, TOP)
    return state  # sw/swi/nop/branches/jr/halt leave registers alone


def _address_of(instr: Instruction, state: RegState) -> Interval:
    """Abstract byte address of a load/store."""
    offset = const(instr.imm) if instr.op in ("lwi", "swi") else state[instr.rb]
    return _tf_alu("add", state[instr.ra], offset)


# ---------------------------------------------------------------- annotations
class AnnotationError(Exception):
    """Malformed ``#@`` annotation in an assembly source."""


@dataclass
class Annotations:
    """Machine-checkable contracts parsed from ``#@`` source comments.

    - ``LABEL:  #@ bound=N`` (trailing on a label line) asserts the loop
      headed at ``LABEL`` iterates at most ``N`` times;
    - ``#@ param rN in LO..HI`` (standalone line) constrains an entry
      register for contract-context analysis (``audit_routine``).
    """

    loop_bounds: Dict[str, int] = field(default_factory=dict)
    reg_ranges: Dict[int, Interval] = field(default_factory=dict)
    bound_lines: Dict[str, int] = field(default_factory=dict)


_BOUND_RE = re.compile(r"^bound\s*=\s*([0-9][0-9a-fA-Fx_]*)$")
_PARAM_RE = re.compile(
    r"^param\s+r(\d+)\s+in\s+([0-9][0-9a-fA-Fx_]*)\s*\.\.\s*([0-9][0-9a-fA-Fx_]*)$"
)
_TRAILING_LABEL_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*):\s*$")


def parse_annotations(source: str) -> Annotations:
    """Extract ``#@`` annotations; plain comments are left alone."""
    ann = Annotations()
    for line_no, raw in enumerate(source.splitlines(), start=1):
        if "#@" not in raw:
            continue
        code, _, text = raw.partition("#@")
        text = text.strip()
        match = _BOUND_RE.match(text)
        if match:
            label_match = _TRAILING_LABEL_RE.search(code.strip())
            if not label_match:
                raise AnnotationError(
                    f"line {line_no}: '#@ bound=' must trail a 'label:' line"
                )
            bound = int(match.group(1), 0)
            if bound < 1:
                raise AnnotationError(f"line {line_no}: bound must be >= 1")
            label = label_match.group(1)
            if label in ann.loop_bounds:
                raise AnnotationError(f"line {line_no}: duplicate bound for {label!r}")
            ann.loop_bounds[label] = bound
            ann.bound_lines[label] = line_no
            continue
        match = _PARAM_RE.match(text)
        if match:
            reg = int(match.group(1))
            lo, hi = int(match.group(2), 0), int(match.group(3), 0)
            if not 0 < reg < 32:
                raise AnnotationError(f"line {line_no}: register r{reg} out of range")
            if not 0 <= lo <= hi <= MAXU:
                raise AnnotationError(f"line {line_no}: bad range {lo:#x}..{hi:#x}")
            ann.reg_ranges[reg] = Interval(lo, hi)
            continue
        raise AnnotationError(
            f"line {line_no}: unrecognised annotation {text!r} "
            "(expected 'bound=N' or 'param rN in LO..HI')"
        )
    return ann


# ------------------------------------------------------------- loop structure
@dataclass
class CounterInfo:
    """The countdown register that makes a loop *counted*."""

    reg: int
    step: int  # positive decrement magnitude per iteration
    branch: int  # exit-branch node
    style: str  # 'nz' (exit on == 0) or 'pos' (exit on signed <= 0)
    do_while: bool  # step executes before the exit test on every cycle
    sole_exit: bool  # the exit branch is the only way out of the loop


@dataclass
class LoopInfo:
    """One natural loop (or an irreducible SCC) of a unit's CFG."""

    header: int
    members: FrozenSet[int]
    irreducible: bool = False
    has_calls: bool = False
    counter: Optional[CounterInfo] = None
    inductions: Dict[int, int] = field(default_factory=dict)  # reg -> signed step


def _cycle_avoids(
    members: FrozenSet[int], succs: Dict[int, List[int]], header: int, node: int
) -> bool:
    """True when some header-to-header cycle does not pass ``node``."""
    if node == header:
        return False
    seen: Set[int] = set()
    stack = [s for s in succs.get(header, []) if s in members and s != node]
    while stack:
        current = stack.pop()
        if current == header:
            return True
        if current in seen:
            continue
        seen.add(current)
        stack.extend(
            s for s in succs.get(current, []) if s in members and s != node
        )
    return False


def _reaches_inside(
    members: FrozenSet[int],
    succs: Dict[int, List[int]],
    src: int,
    dst: int,
    avoid: int,
) -> bool:
    """True when ``dst`` is reachable from ``src`` inside the loop
    without passing through ``avoid`` (used for step/test ordering)."""
    seen: Set[int] = set()
    stack = [s for s in succs.get(src, []) if s in members and s != avoid]
    while stack:
        current = stack.pop()
        if current == dst:
            return True
        if current in seen:
            continue
        seen.add(current)
        stack.extend(s for s in succs.get(current, []) if s in members and s != avoid)
    return False


def _detect_counter(
    loop: LoopInfo,
    succs: Dict[int, List[int]],
    instructions: Sequence[Instruction],
    unit_exits: Set[int],
) -> None:
    """Fill ``loop.inductions`` and ``loop.counter`` (structural only)."""
    members = loop.members
    if loop.irreducible or loop.has_calls:
        return
    # induction registers: a single addi r, r, c write site on every cycle
    writes: Dict[int, List[int]] = {}
    for node in members:
        for reg in regs_written(instructions[node]):
            writes.setdefault(reg, []).append(node)
    for reg, sites in sorted(writes.items()):
        if reg == 0 or len(sites) != 1:
            continue
        site = sites[0]
        instr = instructions[site]
        if instr.op != "addi" or instr.rd != reg or instr.ra != reg:
            continue
        step = instr.imm & MASK32
        step = step - _TWO32 if step > _SIGN_MAX else step
        if step == 0:
            continue
        if _cycle_avoids(members, succs, loop.header, site):
            continue  # not stepped on every iteration
        loop.inductions[reg] = step

    exit_sources = {
        node
        for node in members
        for succ in succs.get(node, [])
        if succ not in members
    }
    in_loop_exits = unit_exits & members  # jr/halt leave the unit from inside
    for branch in sorted(members):
        instr = instructions[branch]
        if instr.op not in COND_BRANCHES:
            continue
        taken, fall = instr.imm, branch + 1
        taken_in, fall_in = taken in members, fall in members
        if taken_in == fall_in:
            continue
        exits_on_taken = not taken_in
        step = loop.inductions.get(instr.rd)
        if step is None or step >= 0:
            continue  # counted loops count down
        if instr.op == "beqz" and exits_on_taken:
            style = "nz"
        elif instr.op == "bnez" and not exits_on_taken:
            style = "nz"
        elif instr.op == "blez" and exits_on_taken:
            style = "pos"
        elif instr.op == "bgtz" and not exits_on_taken:
            style = "pos"
        else:
            continue
        if _cycle_avoids(members, succs, loop.header, branch):
            continue
        step_site = [
            n for n in members if loop.inductions.get(instr.rd) is not None
            and instructions[n].op == "addi"
            and instructions[n].rd == instr.rd and instructions[n].ra == instr.rd
        ][0]
        do_while = branch == step_site or _reaches_inside(
            members, succs, step_site, branch, avoid=loop.header
        )
        sole_exit = exit_sources <= {branch} and not in_loop_exits
        loop.counter = CounterInfo(
            reg=instr.rd,
            step=-step,
            branch=branch,
            style=style,
            do_while=do_while,
            sole_exit=sole_exit,
        )
        return


def _loop_forest(
    nodes: Set[int],
    entry: int,
    succs: Dict[int, List[int]],
    instructions: Sequence[Instruction],
    call_sites: Set[int],
    unit_exits: Set[int],
    out: Dict[int, LoopInfo],
    widen_points: Set[int],
) -> None:
    """Recursive SCC decomposition into a loop forest (header-keyed)."""
    for members in _strongly_connected(nodes, succs):
        member_set = frozenset(members)
        cyclic = len(members) > 1 or any(
            node in succs.get(node, []) for node in members
        )
        if not cyclic:
            continue
        headers = {
            node
            for node in member_set
            if node == entry
            or any(
                pred not in member_set
                for pred, outs in succs.items()
                if node in outs and pred in nodes
            )
        }
        if len(headers) != 1:
            # irreducible: widen everywhere in the SCC, infer nothing
            header = min(member_set)
            out[header] = LoopInfo(
                header=header, members=member_set, irreducible=True
            )
            widen_points |= member_set
            continue
        header = headers.pop()
        loop = LoopInfo(
            header=header,
            members=member_set,
            has_calls=bool(member_set & call_sites),
        )
        _detect_counter(loop, succs, instructions, unit_exits)
        out[header] = loop
        widen_points.add(header)
        inner_succs = {
            node: [s for s in succs.get(node, []) if s in member_set and s != header]
            for node in member_set
        }
        _loop_forest(
            set(member_set), header, inner_succs, instructions, call_sites,
            unit_exits, out, widen_points,
        )


def _trips(counter: CounterInfo, init: Interval) -> Optional[int]:
    """Upper bound on header executions given the entry-edge interval."""
    step = counter.step
    if counter.style == "nz":
        if counter.do_while:
            if init.lo < 1:
                return None  # a zero entry value wraps past the == 0 exit
            if step == 1:
                return init.hi
            if init.is_const and init.lo % step == 0:
                return init.lo // step
            return None
        if step == 1:
            return init.hi + 1
        if init.is_const and init.lo % step == 0:
            return init.lo // step + 1
        return None
    # 'pos': crossing zero into the negatives exits regardless of step
    if init.hi > _SIGN_MAX:
        return None
    if counter.do_while:
        if init.lo < 1:
            return None
        return -(-init.hi // step)
    return (-(-init.hi // step) + 1) if init.hi > 0 else 1


def _trips_min(counter: CounterInfo, init: Interval) -> int:
    """Exact lower bound on header executions (1 when unknown)."""
    if not init.is_const or not counter.sole_exit:
        return 1
    return _trips(counter, init) or 1


def _pin(entry_iv: Interval, step: int, n_trips: int) -> Optional[Interval]:
    """Header-state pin of an induction register over ``n_trips`` visits.

    At the k-th header visit (k in 0..N-1) the register equals
    ``init + step*k`` exactly, so its header interval is the entry
    interval shifted by ``step*[0, N-1]``.  ``None`` when the range
    could wrap (the pin would be unsound).
    """
    delta = step * (n_trips - 1)
    lo = entry_iv.lo + min(0, delta)
    hi = entry_iv.hi + max(0, delta)
    if lo < 0 or hi > MAXU:
        return None
    return Interval(lo, hi)


# --------------------------------------------------------------------- engine
class _AnalysisBudget(Exception):
    """Raised internally when the node-processing budget is exhausted."""


@dataclass
class _LoopRecord:
    """Aggregated per-header inference across all analysed contexts."""

    counted: bool = False
    reached: bool = False
    unbounded: bool = False  # some context failed to bound a counted loop
    inferred: Optional[int] = None  # max trips over contexts
    inferred_min: int = 1  # strongest exact lower bound over contexts


class _Engine:
    """Interprocedural interval interpreter over a ``ProgramAnalysis``."""

    def __init__(
        self,
        program: Program,
        analysis: ProgramAnalysis,
        step_budget: int = DEFAULT_STEP_BUDGET,
    ):
        self.program = program
        self.analysis = analysis
        self.steps = 0
        self.step_budget = step_budget
        self.loops: Dict[int, Dict[int, LoopInfo]] = {}
        self.widen_at: Dict[int, Set[int]] = {}
        for entry, unit in analysis.units.items():
            forest: Dict[int, LoopInfo] = {}
            widen: Set[int] = set()
            _loop_forest(
                set(unit.nodes),
                unit.entry,
                unit.succs,
                program.instructions,
                set(unit.calls),
                set(unit.exits),
                forest,
                widen,
            )
            self.loops[entry] = forest
            self.widen_at[entry] = widen
        # cross-context accumulators
        self.memo: Dict[Tuple[int, RegState], Optional[RegState]] = {}
        self.active: Set[int] = set()
        self.reached: Set[int] = set()
        self.edge_feasible: Set[Tuple[int, int]] = set()
        self.mem_facts: Dict[int, Interval] = {}
        self.loop_records: Dict[int, _LoopRecord] = {}
        self.bad_returns: Dict[int, Tuple[int, int]] = {}  # jr node -> (got, want)

    # ------------------------------------------------------------ bookkeeping
    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.step_budget:
            raise _AnalysisBudget()

    def _note_trips(
        self, header: int, trips: Optional[int], trips_min: int, counted: bool
    ) -> None:
        record = self.loop_records.setdefault(header, _LoopRecord())
        record.reached = True
        record.counted = record.counted or counted
        if counted:
            if trips is None:
                record.unbounded = True
                record.inferred = None
            elif not record.unbounded:
                record.inferred = (
                    trips if record.inferred is None else max(record.inferred, trips)
                )
            record.inferred_min = max(record.inferred_min, trips_min)

    # ----------------------------------------------------------------- flow
    def _flow(self, unit, node: int, state: RegState) -> List[Tuple[int, RegState]]:
        """Successor edge states of one node under ``state``."""
        instr = self.program.instructions[node]
        op = instr.op
        succs = unit.succs.get(node, [])
        if op in COND_BRANCHES:
            iv = state[instr.rd]
            taken_iv, fall_iv = refine_branch(op, iv)
            merged: Dict[int, RegState] = {}
            for succ in succs:
                refined = taken_iv if succ == instr.imm else fall_iv
                if succ == instr.imm and succ == node + 1:
                    refined = iv  # degenerate branch-to-next
                if refined is None:
                    continue
                out = _write(state, instr.rd, refined)
                merged[succ] = (
                    _join_states(merged.get(succ), out) if succ in merged else out
                )
            return sorted(merged.items())
        if op == "brl" and node in unit.calls:
            after_link = _write(state, instr.rd, const(node + 1))
            returned = self._run_unit(unit.calls[node], after_link)
            if returned is None:
                return []  # callee never returns; fall-through infeasible
            return [(succ, returned) for succ in succs]
        new_state = _transfer(instr, state)
        return [(succ, new_state) for succ in succs]

    def _header_state(
        self,
        loop: LoopInfo,
        entry_c: Optional[RegState],
        back_c: Optional[RegState],
        old: Optional[RegState],
        visit_count: int,
    ) -> RegState:
        """IN state of a reducible loop header: pins + delayed widening."""
        pins: Dict[int, Interval] = {}
        if entry_c is not None and loop.counter is not None:
            counter = loop.counter
            trips = _trips(counter, entry_c[counter.reg])
            if trips is not None:
                for reg, step in sorted(loop.inductions.items()):
                    if reg == counter.reg:
                        continue
                    pin = _pin(entry_c[reg], step, trips)
                    if pin is not None:
                        pins[reg] = pin
                init = entry_c[counter.reg]
                pins[counter.reg] = Interval(
                    1 if counter.do_while else 0, init.hi
                )
        regs: List[Interval] = []
        for reg in range(32):
            contribs = None
            if entry_c is not None:
                contribs = entry_c[reg]
            if back_c is not None:
                contribs = (
                    back_c[reg] if contribs is None else contribs.join(back_c[reg])
                )
            if contribs is None:  # pragma: no cover - headers enter via entry edges
                contribs = TOP
            pin = pins.get(reg)
            if pin is not None:
                regs.append(pin.meet(contribs) or pin)
            elif old is None:
                regs.append(contribs)
            elif visit_count >= WIDEN_DELAY:
                regs.append(old[reg].widen(old[reg].join(contribs)))
            else:
                regs.append(old[reg].join(contribs))
        return tuple(regs)

    # ------------------------------------------------------------------ units
    def _run_unit(self, entry: int, entry_state: RegState) -> Optional[RegState]:
        """Analyse one unit under ``entry_state``; returns the join of the
        ``jr``-exit states (``None`` when the unit never returns)."""
        key = (entry, entry_state)
        if key in self.memo:
            return self.memo[key]
        if entry in self.active:  # pragma: no cover - ASM008 rejects recursion
            raise _AnalysisBudget()
        self.active.add(entry)
        try:
            unit = self.analysis.units[entry]
            loops = self.loops[entry]
            widen_at = self.widen_at[entry]
            in_state: Dict[int, RegState] = {}
            entry_c: Dict[int, RegState] = {}
            back_c: Dict[int, RegState] = {}
            visits: Dict[int, int] = {}
            if entry in loops and not loops[entry].irreducible:
                entry_c[entry] = entry_state
                in_state[entry] = self._header_state(
                    loops[entry], entry_state, None, None, 0
                )
            else:
                in_state[entry] = entry_state
            worklist = deque([entry])
            queued = {entry}
            while worklist:
                node = worklist.popleft()
                queued.discard(node)
                self._tick()
                visits[node] = visits.get(node, 0) + 1
                for succ, out in self._flow(unit, node, in_state[node]):
                    self.edge_feasible.add((node, succ))
                    loop = loops.get(succ)
                    if loop is not None and not loop.irreducible:
                        target = back_c if node in loop.members else entry_c
                        target[succ] = _join_states(target.get(succ), out)
                        new_in = self._header_state(
                            loop,
                            entry_c.get(succ),
                            back_c.get(succ),
                            in_state.get(succ),
                            visits.get(succ, 0),
                        )
                    else:
                        previous = in_state.get(succ)
                        new_in = _join_states(previous, out)
                        if (
                            previous is not None
                            and succ in widen_at
                            and visits.get(succ, 0) >= WIDEN_DELAY
                        ):
                            new_in = tuple(
                                p.widen(n) for p, n in zip(previous, new_in)
                            )
                    if in_state.get(succ) != new_in:
                        in_state[succ] = new_in
                        if succ not in queued:
                            queued.add(succ)
                            worklist.append(succ)
            self._narrow(unit, loops, in_state, entry_c, back_c, entry, entry_state)
            exit_state = self._finish_unit(unit, loops, in_state, entry_c, entry_state)
            self.memo[key] = exit_state
            return exit_state
        finally:
            self.active.discard(entry)

    def _narrow(
        self,
        unit,
        loops: Dict[int, LoopInfo],
        in_state: Dict[int, RegState],
        entry_c: Dict[int, RegState],
        back_c: Dict[int, RegState],
        entry: int,
        entry_state: RegState,
    ) -> None:
        """One descending sweep to recover precision lost to widening."""
        for node in sorted(in_state):
            self._tick()
            contributions: List[Tuple[int, RegState]] = []
            for pred in unit.preds.get(node, []):
                if pred not in in_state:
                    continue
                for succ, out in self._flow(unit, pred, in_state[pred]):
                    if succ == node:
                        contributions.append((pred, out))
            loop = loops.get(node)
            if loop is not None and not loop.irreducible:
                new_entry = entry_state if node == entry else None
                new_back: Optional[RegState] = None
                for pred, out in contributions:
                    if pred in loop.members:
                        new_back = _join_states(new_back, out)
                    else:
                        new_entry = _join_states(new_entry, out)
                if new_entry is None:
                    continue  # loop only reachable through itself; keep fixpoint
                entry_c[node] = new_entry
                if new_back is not None:
                    back_c[node] = new_back
                recomputed = self._header_state(loop, new_entry, new_back, None, 0)
            else:
                joined = entry_state if node == entry else None
                for _, out in contributions:
                    joined = _join_states(joined, out)
                if joined is None:
                    continue
                recomputed = joined
            in_state[node] = _meet_states(in_state[node], recomputed)

    def _finish_unit(
        self,
        unit,
        loops: Dict[int, LoopInfo],
        in_state: Dict[int, RegState],
        entry_c: Dict[int, RegState],
        entry_state: RegState,
    ) -> Optional[RegState]:
        """Record cross-context facts; return the joined ``jr`` exit state."""
        instructions = self.program.instructions
        exit_state: Optional[RegState] = None
        expected_return = (
            entry_state[15].value if entry_state[15].is_const else None
        )
        for node in sorted(in_state):
            state = in_state[node]
            self.reached.add(node)
            instr = instructions[node]
            if instr.op in ("lw", "lwi", "sw", "swi"):
                address = _address_of(instr, state)
                previous = self.mem_facts.get(node)
                self.mem_facts[node] = (
                    address if previous is None else previous.join(address)
                )
            if instr.op == "jr":
                target = state[instr.rd]
                if (
                    expected_return is not None
                    and target.is_const
                    and target.value != expected_return
                ):
                    self.bad_returns[node] = (target.value, expected_return)
                exit_state = _join_states(exit_state, state)
        for header, loop in sorted(loops.items()):
            if header not in in_state:
                continue  # loop never entered in this context
            if loop.irreducible or loop.counter is None:
                self._note_trips(header, None, 1, counted=False)
            else:
                init = entry_c.get(header)
                init_iv = init[loop.counter.reg] if init is not None else TOP
                self._note_trips(
                    header,
                    _trips(loop.counter, init_iv),
                    _trips_min(loop.counter, init_iv),
                    counted=True,
                )
        return exit_state


# -------------------------------------------------------------------- results
@dataclass
class LoopSummary:
    """Per-loop outcome of the analysis (header-indexed)."""

    header: int
    label: Optional[str]
    unit_entry: int
    counted: bool
    reached: bool
    inferred: Optional[int]  # sound max header executions; None if unknown
    inferred_min: int  # exact lower bound (1 when unknown)
    irreducible: bool = False


@dataclass
class AbsintResult:
    """Everything the abstract interpretation proved about a program."""

    report: LintReport
    loops: Dict[int, LoopSummary] = field(default_factory=dict)
    infeasible_edges: FrozenSet[Tuple[int, int]] = frozenset()
    unreached: FrozenSet[int] = frozenset()
    stack_words: int = 0
    stack_budget: int = DEFAULT_STACK_BUDGET_WORDS
    steps: int = 0

    @property
    def ok(self) -> bool:
        return self.report.ok

    def inferred_bounds(self) -> Dict[int, int]:
        """Header index -> inferred trip count, for bounded counted loops."""
        return {
            header: summary.inferred
            for header, summary in self.loops.items()
            if summary.inferred is not None
        }


def stack_depths(analysis: ProgramAnalysis) -> Dict[int, int]:
    """Worst-case stack words per unit over the call DAG.

    The leaf-routine convention itself is stackless; this models what a
    conventional spill-everything ABI would need -- one return-address
    slot plus one word per register the unit writes -- so the bound is
    a safe budget for binding these kernels to microkernel tasks.
    """
    depths: Dict[int, int] = {}
    for unit in analysis._order:  # callees before callers
        written: Set[int] = set()
        for node in unit.nodes:
            written |= regs_written(analysis.program.instructions[node])
        written.discard(0)
        frame = 1 + len(written)
        deepest_callee = max(
            (depths.get(callee, 0) for callee in unit.calls.values()), default=0
        )
        depths[unit.entry] = frame + deepest_callee
    return depths


def _memory_diagnostics(
    engine: _Engine,
    analysis: ProgramAnalysis,
    regions: Sequence[MemoryRegion],
    report: LintReport,
) -> None:
    names = ", ".join(
        f"{r.name}=[{r.base:#x},{r.base + r.size:#x})" for r in regions
    )
    for node, address in sorted(engine.mem_facts.items()):
        op = analysis.program.instructions[node].op
        if address.is_const and address.value % 4:
            report.add(
                "ASM104",
                Severity.ERROR,
                f"{op} address {address.value:#x} is not word aligned",
                location=analysis.location(node),
                hint="word loads/stores need 4-byte aligned addresses",
            )
            continue
        fits = any(
            region.contains(address.lo) and region.contains(address.hi + 3)
            for region in regions
        )
        if not fits:
            what = (
                "cannot be bounded"
                if address.is_top
                else f"spans {address} which escapes every region ({names})"
            )
            report.add(
                "ASM104",
                Severity.ERROR,
                f"{op} address {what}",
                location=analysis.location(node),
                hint="constrain the address registers (e.g. '#@ param rN in "
                "LO..HI') or fix the pointer arithmetic",
            )


def analyse(
    program: Program,
    entry: int = 0,
    reg_ranges: Optional[Dict[int, Interval]] = None,
    memory_map: Optional[Sequence[MemoryRegion]] = None,
    analysis: Optional[ProgramAnalysis] = None,
    stack_budget: int = DEFAULT_STACK_BUDGET_WORDS,
    step_budget: int = DEFAULT_STEP_BUDGET,
) -> AbsintResult:
    """Abstract-interpret ``program`` from ``entry``.

    ``reg_ranges`` constrains entry registers (contract context); all
    other registers start unconstrained.  The result carries the loop
    summaries, infeasible edges/nodes for WCET pruning, and the memory
    (ASM104) / stack (ASM105) safety verdicts.
    """
    analysis = analysis or ProgramAnalysis(program, entry=entry)
    report = LintReport().extend(analysis.report)
    if analysis.recursive or not report.ok:
        report.add(
            "ASM100",
            Severity.ERROR,
            "structural errors prevent abstract interpretation",
            location=analysis.location(entry),
            hint="fix the ASM00x errors first",
        )
        return AbsintResult(report=report)

    engine = _Engine(program, analysis, step_budget=step_budget)
    try:
        engine._run_unit(entry, initial_state(reg_ranges))
    except _AnalysisBudget:
        report.add(
            "ASM100",
            Severity.ERROR,
            f"abstract interpretation exceeded its budget of "
            f"{step_budget} node visits without converging",
            location=analysis.location(entry),
            hint="simplify the control flow or raise step_budget",
        )
        return AbsintResult(report=report, steps=engine.steps)

    for node, (got, want) in sorted(engine.bad_returns.items()):
        report.add(
            "ASM100",
            Severity.ERROR,
            f"jr returns to instruction {got}, but the call came from "
            f"instruction {want - 1} (the CFG assumes brl/jr pairing)",
            location=analysis.location(node),
            hint="do not overwrite the link register between brl and jr",
        )

    regions = tuple(memory_map) if memory_map is not None else default_memory_map()
    _memory_diagnostics(engine, analysis, regions, report)

    depths = stack_depths(analysis)
    stack_words = depths.get(entry, 0)
    if stack_words > stack_budget:
        report.add(
            "ASM105",
            Severity.ERROR,
            f"worst-case stack depth {stack_words} words exceeds the "
            f"per-task allocation of {stack_budget} words",
            location=analysis.location(entry),
            hint="shorten the call chain or raise the task's stack_words",
        )

    loops: Dict[int, LoopSummary] = {}
    for unit_entry, forest in sorted(engine.loops.items()):
        for header, loop in sorted(forest.items()):
            record = engine.loop_records.get(header, _LoopRecord())
            loops[header] = LoopSummary(
                header=header,
                label=analysis.label_of(header),
                unit_entry=unit_entry,
                counted=record.counted,
                reached=record.reached,
                inferred=record.inferred,
                inferred_min=record.inferred_min,
                irreducible=loop.irreducible,
            )

    all_edges = {
        (node, succ)
        for unit in analysis.units.values()
        for node in unit.nodes
        for succ in unit.succs.get(node, [])
    }
    infeasible = frozenset(all_edges - engine.edge_feasible)
    unreached = frozenset(analysis.reachable - engine.reached)
    return AbsintResult(
        report=report,
        loops=loops,
        infeasible_edges=infeasible,
        unreached=unreached,
        stack_words=stack_words,
        stack_budget=stack_budget,
        steps=engine.steps,
    )


# ----------------------------------------------------------- annotation audit
def audit_annotation_rules(
    result: AbsintResult,
    annotations: Annotations,
    analysis: ProgramAnalysis,
) -> LintReport:
    """Cross-check ``#@ bound`` annotations against the inference.

    Contract-context only (``audit_routine``): a *driver* inferring a
    tighter bound than the routine's general annotation is the desired
    tightening, not a defect.
    """
    report = LintReport()
    for header, summary in sorted(result.loops.items()):
        if not summary.reached or summary.irreducible:
            continue
        label = summary.label
        annotated = annotations.loop_bounds.get(label) if label else None
        where = analysis.location(header)
        if annotated is None:
            if summary.inferred is not None:
                report.add(
                    "ASM101",
                    Severity.WARNING,
                    f"loop {label or header} has no '#@ bound' annotation "
                    f"(inference proves {summary.inferred})",
                    location=where,
                    hint=f"annotate '{label}:  #@ bound={summary.inferred}'",
                )
            else:
                report.add(
                    "ASM101",
                    Severity.ERROR,
                    f"loop {label or header} has no '#@ bound' annotation and "
                    "no bound could be inferred",
                    location=where,
                    hint="annotate the loop header or restructure it as a "
                    "counted loop",
                )
            continue
        if summary.inferred is not None and annotated > summary.inferred:
            report.add(
                "ASM102",
                Severity.WARNING,
                f"annotation bound={annotated} on {label} is loose: "
                f"inference proves at most {summary.inferred} iterations",
                location=where,
                hint=f"tighten to '#@ bound={summary.inferred}'",
            )
        if annotated < summary.inferred_min:
            report.add(
                "ASM103",
                Severity.ERROR,
                f"annotation bound={annotated} on {label} is unsound: the "
                f"loop provably iterates {summary.inferred_min} times",
                location=where,
                hint=f"raise the annotation to at least {summary.inferred_min}",
            )
    return report


# -------------------------------------------------------------- verified WCET
def bounds_for_wcet(
    result: AbsintResult, annotations: Optional[Annotations] = None
) -> Dict[Union[str, int], int]:
    """Header-indexed loop bounds: min(annotated, inferred) per loop."""
    bounds: Dict[Union[str, int], int] = {}
    loop_bounds = annotations.loop_bounds if annotations else {}
    for header, summary in result.loops.items():
        candidates = [
            bound
            for bound in (
                loop_bounds.get(summary.label) if summary.label else None,
                summary.inferred,
            )
            if bound is not None
        ]
        if candidates:
            bounds[header] = min(candidates)
    return bounds


@dataclass
class VerifiedWCET:
    """Annotation-based vs. abstract-interpretation-verified bounds."""

    absint: AbsintResult
    verified: WCETResult
    annotated: WCETResult

    @property
    def verified_cycles(self) -> Optional[int]:
        return self.verified.cycles

    @property
    def annotated_cycles(self) -> Optional[int]:
        return self.annotated.cycles

    @property
    def tightened(self) -> bool:
        return (
            self.verified.cycles is not None
            and self.annotated.cycles is not None
            and self.verified.cycles < self.annotated.cycles
        )


def verified_wcet(
    program: Program,
    annotations: Optional[Annotations] = None,
    entry: int = 0,
    reg_ranges: Optional[Dict[int, Interval]] = None,
    cost_model: Optional[CostModel] = None,
    analysis: Optional[ProgramAnalysis] = None,
    stack_budget: int = DEFAULT_STACK_BUDGET_WORDS,
) -> VerifiedWCET:
    """Annotated and path-pruned/inference-capped WCET bounds.

    The verified bound uses ``min(annotated, inferred)`` per loop and
    excludes edges/nodes the value analysis proved infeasible, so
    ``verified <= annotated`` whenever both exist (same cost model,
    fewer paths, tighter-or-equal bounds).  When the value analysis
    fails, the verified bound falls back to the annotated one.
    """
    analysis = analysis or ProgramAnalysis(program, entry=entry)
    annotations = annotations or Annotations()
    result = analyse(
        program,
        entry=entry,
        reg_ranges=reg_ranges,
        analysis=analysis,
        stack_budget=stack_budget,
    )
    annotated = wcet_bound(
        program,
        loop_bounds=dict(annotations.loop_bounds),
        entry=entry,
        cost_model=cost_model,
        analysis=analysis,
    )
    if not result.ok:
        return VerifiedWCET(absint=result, verified=annotated, annotated=annotated)
    verified = wcet_bound(
        program,
        loop_bounds=bounds_for_wcet(result, annotations),
        entry=entry,
        cost_model=cost_model,
        analysis=analysis,
        exclude_edges=result.infeasible_edges,
        exclude_nodes=result.unreached,
    )
    return VerifiedWCET(absint=result, verified=verified, annotated=annotated)


# -------------------------------------------------------------- kernel audits
#: Loops we expect the inference to bound, per asmlib kernel.  isqrt32's
#: Newton/division loops are data-dependent (not counted); they rely on
#: their annotations.
EXPECTED_COUNTED: Dict[str, Tuple[str, ...]] = {
    "memcpy_words": ("memcpy_loop",),
    "array_sum": ("array_sum_loop",),
    "popcount32": (),
    "crc32_word": ("crc32_bit",),
    "isqrt32": (),
}

_DRIVER_SRC = 0x4000_8000  # driver scratch arrays live here in DDR
_DRIVER_DST = 0x4000_9000
_DRIVER_OUT = 0x4001_0000


def _lcg(seed: int) -> int:
    """One step of a 32-bit LCG (deterministic driver data)."""
    return (seed * 1_664_525 + 1_013_904_223) & MASK32


def _driver_words(seed: int, count: int) -> List[int]:
    words, value = [], (seed * 2_654_435_761 + 1) & MASK32
    for _ in range(count):
        value = _lcg(value)
        words.append(value)
    return words


def kernel_driver_source(kernel: str, seed: int = 1) -> str:
    """A self-contained driver program exercising one asmlib kernel.

    The driver pins concrete arguments (derived from ``seed``), calls
    the routine, stores the result and halts; the data section sits
    after the routines because routines must stay in ``.text``.
    """
    from repro.hw.asmlib import ROUTINES, link_source

    if kernel not in ROUTINES:
        raise KeyError(f"unknown kernel {kernel!r}; available: {sorted(ROUTINES)}")
    n = 4 + (seed * 7) % 29  # 4..32 words
    value = _driver_words(seed, 1)[0]
    if kernel == "memcpy_words":
        main = f"""
    addi r5, r0, {_DRIVER_SRC:#x}
    addi r6, r0, {_DRIVER_DST:#x}
    addi r7, r0, {n}
    brl  r15, memcpy_words
    halt
"""
        data = [f".data {_DRIVER_SRC:#x}", ".word " + " ".join(
            str(w) for w in _driver_words(seed, n))]
    elif kernel == "array_sum":
        main = f"""
    addi r5, r0, {_DRIVER_SRC:#x}
    addi r6, r0, {n}
    brl  r15, array_sum
    swi  r3, r0, {_DRIVER_OUT:#x}
    halt
"""
        data = [f".data {_DRIVER_SRC:#x}", ".word " + " ".join(
            str(w) for w in _driver_words(seed, n))]
    elif kernel == "popcount32":
        main = f"""
    addi r5, r0, {value:#x}
    brl  r15, popcount32
    swi  r3, r0, {_DRIVER_OUT:#x}
    halt
"""
        data = []
    elif kernel == "crc32_word":
        main = f"""
    addi r5, r0, {value:#x}
    addi r6, r0, 0xFFFFFFFF
    brl  r15, crc32_word
    swi  r3, r0, {_DRIVER_OUT:#x}
    halt
"""
        data = []
    else:  # isqrt32: keep the argument small so the division loop is short
        main = f"""
    addi r5, r0, {100 + (seed * 37) % 900}
    brl  r15, isqrt32
    swi  r3, r0, {_DRIVER_OUT:#x}
    halt
"""
        data = []
    return link_source(main, [kernel]) + "\n" + "\n".join(data) + "\n"


@dataclass
class RoutineAudit:
    """Contract-context verdict for one asmlib routine."""

    name: str
    report: LintReport
    result: AbsintResult
    annotations: Annotations

    @property
    def ok(self) -> bool:
        return self.report.ok


def audit_routine(name: str) -> RoutineAudit:
    """Analyse one asmlib routine standalone under its ``#@`` contract.

    Runs the value analysis with the annotated parameter ranges, then
    cross-checks every loop's ``#@ bound`` annotation (ASM101-ASM103)
    and the memory/stack proofs (ASM104/ASM105).
    """
    from repro.hw.asmlib import ROUTINES
    from repro.hw.assembler import assemble

    source = ROUTINES[name]
    annotations = parse_annotations(source)
    program = assemble(source)
    analysis = ProgramAnalysis(program, entry=0)
    result = analyse(
        program, reg_ranges=annotations.reg_ranges, analysis=analysis
    )
    report = LintReport().extend(result.report)
    report.extend(audit_annotation_rules(result, annotations, analysis))
    return RoutineAudit(
        name=name, report=report, result=result, annotations=annotations
    )


@dataclass
class KernelAudit:
    """Measured-vs-verified-vs-annotated verdict for one kernel driver."""

    kernel: str
    seed: int
    measured: int  # executor cycles
    wcet: VerifiedWCET
    loop_executions: Dict[str, int]  # loop label -> measured header visits
    checks: List[Tuple[str, bool, str]]

    @property
    def ok(self) -> bool:
        return all(ok for _, ok, _ in self.checks)

    @property
    def verified_ratio(self) -> Optional[float]:
        if self.wcet.verified_cycles is None or not self.measured:
            return None
        return self.wcet.verified_cycles / self.measured

    @property
    def annotated_ratio(self) -> Optional[float]:
        if self.wcet.annotated_cycles is None or not self.measured:
            return None
        return self.wcet.annotated_cycles / self.measured


def audit_kernel(kernel: str, seed: int = 1) -> KernelAudit:
    """Run one kernel driver and verify the full WCET chain.

    Checks, in order: the value analysis is clean (memory/stack proofs
    hold), every expected counted loop got an inferred bound, measured
    header visits never exceed the inferred bounds, and
    ``measured <= verified WCET <= annotated WCET``.
    """
    from repro.hw.assembler import assemble
    from repro.hw.isa import ISAExecutor
    from repro.hw.soc import SoC, SoCConfig

    source = kernel_driver_source(kernel, seed=seed)
    annotations = parse_annotations(source)
    program = assemble(source)

    soc = SoC(SoCConfig(n_cpus=1))
    executor = ISAExecutor(soc.core(0), program, count_pcs=True)
    soc.sim.process(executor.run())
    soc.sim.run()
    measured = executor.cycles

    analysis = ProgramAnalysis(program, entry=0)
    wcet = verified_wcet(
        program, annotations=annotations, analysis=analysis
    )

    checks: List[Tuple[str, bool, str]] = []
    checks.append(
        (
            "value analysis ok (memory/stack proven)",
            wcet.absint.ok,
            "; ".join(d.rule for d in wcet.absint.report.errors) or "clean",
        )
    )

    loop_executions: Dict[str, int] = {}
    counts = executor.pc_counts or {}
    for label in EXPECTED_COUNTED[kernel]:
        address = program.symbols.get(label)
        header = (address - program.base) // 4 if address is not None else None
        summary = wcet.absint.loops.get(header) if header is not None else None
        inferred = summary.inferred if summary else None
        executed = counts.get(header, 0) if header is not None else 0
        loop_executions[label] = executed
        checks.append(
            (
                f"loop {label}: inferred bound exists",
                inferred is not None,
                f"inferred={inferred}",
            )
        )
        checks.append(
            (
                f"loop {label}: executed <= inferred",
                inferred is not None and executed <= inferred,
                f"executed={executed} inferred={inferred}",
            )
        )

    verified, annotated = wcet.verified_cycles, wcet.annotated_cycles
    checks.append(
        (
            "measured <= verified WCET",
            verified is not None and measured <= verified,
            f"measured={measured} verified={verified}",
        )
    )
    checks.append(
        (
            "verified WCET <= annotated WCET",
            verified is not None
            and annotated is not None
            and verified <= annotated,
            f"verified={verified} annotated={annotated}",
        )
    )
    return KernelAudit(
        kernel=kernel,
        seed=seed,
        measured=measured,
        wcet=wcet,
        loop_executions=loop_executions,
        checks=checks,
    )


def audit_kernels(seeds: Iterable[int] = (1,)) -> List[KernelAudit]:
    """Audit every asmlib kernel across ``seeds`` (sorted by kernel)."""
    return [
        audit_kernel(kernel, seed=seed)
        for kernel in sorted(EXPECTED_COUNTED)
        for seed in seeds
    ]


def format_audit(audits: Sequence[KernelAudit]) -> str:
    """Tightness report: bound/measured ratios per kernel driver."""
    lines = [
        f"{'kernel':<14} {'seed':>4} {'measured':>10} {'verified':>10} "
        f"{'annotated':>10} {'ver/meas':>9} {'ann/meas':>9}  ok"
    ]
    for audit in audits:
        verified = audit.wcet.verified_cycles
        annotated = audit.wcet.annotated_cycles
        ratio_v = f"{audit.verified_ratio:.2f}" if audit.verified_ratio else "-"
        ratio_a = f"{audit.annotated_ratio:.2f}" if audit.annotated_ratio else "-"
        lines.append(
            f"{audit.kernel:<14} {audit.seed:>4} {audit.measured:>10} "
            f"{verified if verified is not None else '-':>10} "
            f"{annotated if annotated is not None else '-':>10} "
            f"{ratio_v:>9} {ratio_a:>9}  {'PASS' if audit.ok else 'FAIL'}"
        )
    tightened = [a.kernel for a in audits if a.wcet.tightened]
    lines.append(
        "strictly tighter verified bounds: "
        + (", ".join(sorted(set(tightened))) if tightened else "none")
    )
    return "\n".join(lines)
