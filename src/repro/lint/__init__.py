"""``repro.lint`` -- deterministic static checking before anything runs.

Five passes over the reproduction's input kinds, sharing one
diagnostic model (:class:`~repro.lint.diagnostics.Diagnostic`):

- :mod:`repro.lint.asm` -- CFG/dataflow/WCET analysis of assembled
  MicroBlaze-subset programs;
- :mod:`repro.lint.absint` -- interval abstract interpretation over the
  same programs: inferred loop bounds, memory/stack safety proofs, and
  path-pruned verified WCETs (ASM1xx rules);
- :mod:`repro.lint.tasks` -- task-table and schedulability linting for
  the offline analysis pipeline;
- :mod:`repro.lint.concurrency` -- lockset race detection and
  lock-order deadlock detection over recorded traces;
- :mod:`repro.lint.determinism` -- AST lint of the simulator's own
  Python for nondeterminism (wall clocks, unseeded RNGs, set order).

``repro-lint`` (:mod:`repro.lint.cli`) exposes all five on the command
line; ``docs/LINT.md`` catalogues every rule code.
"""

from repro.lint.absint import (
    AbsintResult,
    Annotations,
    Interval,
    KernelAudit,
    RoutineAudit,
    VerifiedWCET,
    analyse,
    audit_kernel,
    audit_kernels,
    audit_routine,
    format_audit,
    parse_annotations,
    verified_wcet,
)
from repro.lint.asm import (
    CALLING_CONVENTION_PARAMS,
    CostModel,
    MemoryRegion,
    ProgramAnalysis,
    WCETResult,
    lint_program,
    lint_source,
    wcet_bound,
)
from repro.lint.concurrency import ConcurrencyChecker, lint_trace
from repro.lint.determinism import lint_paths, lint_python_source
from repro.lint.diagnostics import (
    Diagnostic,
    LintError,
    LintReport,
    Severity,
    require_ok,
)
from repro.lint.tasks import (
    check_fault_config,
    check_taskset,
    lint_fault_config,
    lint_task_rows,
    lint_taskset,
)

__all__ = [
    "AbsintResult",
    "Annotations",
    "CALLING_CONVENTION_PARAMS",
    "ConcurrencyChecker",
    "CostModel",
    "Diagnostic",
    "Interval",
    "KernelAudit",
    "LintError",
    "LintReport",
    "MemoryRegion",
    "ProgramAnalysis",
    "RoutineAudit",
    "Severity",
    "VerifiedWCET",
    "WCETResult",
    "analyse",
    "audit_kernel",
    "audit_kernels",
    "audit_routine",
    "check_fault_config",
    "check_taskset",
    "format_audit",
    "lint_fault_config",
    "lint_paths",
    "lint_program",
    "lint_python_source",
    "lint_source",
    "lint_task_rows",
    "lint_taskset",
    "lint_trace",
    "parse_annotations",
    "require_ok",
    "verified_wcet",
    "wcet_bound",
]
