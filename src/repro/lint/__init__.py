"""``repro.lint`` -- deterministic static checking before anything runs.

Three passes over the reproduction's three input kinds, sharing one
diagnostic model (:class:`~repro.lint.diagnostics.Diagnostic`):

- :mod:`repro.lint.asm` -- CFG/dataflow/WCET analysis of assembled
  MicroBlaze-subset programs;
- :mod:`repro.lint.tasks` -- task-table and schedulability linting for
  the offline analysis pipeline;
- :mod:`repro.lint.concurrency` -- lockset race detection and
  lock-order deadlock detection over recorded traces.

``repro-lint`` (:mod:`repro.lint.cli`) exposes all three on the command
line; ``docs/LINT.md`` catalogues every rule code.
"""

from repro.lint.asm import (
    CALLING_CONVENTION_PARAMS,
    CostModel,
    MemoryRegion,
    ProgramAnalysis,
    WCETResult,
    lint_program,
    lint_source,
    wcet_bound,
)
from repro.lint.concurrency import ConcurrencyChecker, lint_trace
from repro.lint.diagnostics import (
    Diagnostic,
    LintError,
    LintReport,
    Severity,
    require_ok,
)
from repro.lint.tasks import check_taskset, lint_task_rows, lint_taskset

__all__ = [
    "CALLING_CONVENTION_PARAMS",
    "ConcurrencyChecker",
    "CostModel",
    "Diagnostic",
    "LintError",
    "LintReport",
    "MemoryRegion",
    "ProgramAnalysis",
    "Severity",
    "WCETResult",
    "check_taskset",
    "lint_program",
    "lint_source",
    "lint_task_rows",
    "lint_taskset",
    "lint_trace",
    "require_ok",
    "wcet_bound",
]
