"""Trace-based race and deadlock detection for the sync engine.

Consumes :class:`~repro.trace.recorder.TraceRecorder` events of the
concurrency vocabulary (``acquire``/``unlock``/``barrier``/``access``,
emitted by :class:`~repro.hw.sync_engine.SynchronizationEngine` and
:class:`~repro.hw.isa.ISAExecutor` when given a recorder, or built
synthetically) and runs two classical dynamic analyses *statically over
the recorded history*:

- **Lockset (Eraser-style) race detection**: every shared address keeps
  the intersection of locksets held over its accesses; an address
  touched by two or more cpus with at least one write and an empty
  candidate lockset is a data race (``RACE001``).
- **Lock-order-graph deadlock detection**: acquiring lock B while
  holding lock A adds edge A -> B; a cycle in the resulting graph is a
  potential deadlock even if this particular schedule got lucky
  (``DEAD001``).

Event payloads ride in the ``info`` field as ``key=value`` pairs::

    acquire   info="lock=3"
    unlock    info="lock=3"
    barrier   info="barrier=1 width=2"
    access    info="addr=0x40010000 op=write"

(Older traces spelled lock releases ``release`` with a ``lock=``
payload; those are still accepted for backward compatibility, while
payload-less ``release`` events remain the scheduler's job-release
marker and are ignored here.)

Rule codes ``RACE001``-``RACE003`` and ``DEAD001``/``DEAD002`` are
catalogued in ``docs/LINT.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.diagnostics import LintReport, Severity
from repro.trace.recorder import TraceEvent, TraceRecorder


def _parse_info(info: Optional[str]) -> Dict[str, str]:
    pairs: Dict[str, str] = {}
    for token in (info or "").split():
        if "=" in token:
            key, value = token.split("=", 1)
            pairs[key] = value
    return pairs


@dataclass
class _AddressState:
    """Eraser bookkeeping for one shared address."""

    lockset: Optional[FrozenSet[int]] = None  # None until first access
    readers: Set[int] = field(default_factory=set)
    writers: Set[int] = field(default_factory=set)
    first_time: int = 0
    reported: bool = False


class ConcurrencyChecker:
    """Replays a trace's concurrency events and accumulates diagnostics."""

    def __init__(self):
        self.report = LintReport()
        self.held: Dict[int, Set[int]] = {}  # cpu -> locks held
        self.acquired_at: Dict[Tuple[int, int], int] = {}  # (cpu, lock) -> time
        self.order_edges: Dict[int, Set[int]] = {}  # lock -> locks taken under it
        self.edge_witness: Dict[Tuple[int, int], str] = {}
        self.addresses: Dict[str, _AddressState] = {}
        self.barrier_width: Dict[int, int] = {}
        self.barrier_arrived: Dict[int, int] = {}
        self.barrier_last_time: Dict[int, int] = {}
        self.last_time = 0

    # ---------------------------------------------------------------- events
    def feed(self, event: TraceEvent) -> None:
        if event.kind not in ("acquire", "unlock", "release", "barrier", "access"):
            return
        payload = _parse_info(event.info)
        if event.kind == "release" and "lock" not in payload:
            # ``release`` is the scheduler's job-release event; only
            # legacy traces that spelled lock releases ``release``
            # carry a ``lock=`` payload (the current emitter uses
            # ``unlock``).
            return
        self.last_time = max(self.last_time, event.time)
        cpu = event.cpu if event.cpu is not None else -1
        if event.kind == "acquire":
            self._on_acquire(event, cpu, payload)
        elif event.kind in ("unlock", "release"):
            self._on_release(event, cpu, payload)
        elif event.kind == "barrier":
            self._on_barrier(event, cpu, payload)
        elif event.kind == "access":
            self._on_access(event, cpu, payload)

    def _lock_id(self, event: TraceEvent, payload: Dict[str, str]) -> Optional[int]:
        try:
            return int(payload["lock"], 0)
        except (KeyError, ValueError):
            self.report.add(
                "RACE003",
                Severity.ERROR,
                f"{event.kind} event carries no parsable lock id (info={event.info!r})",
                location=f"t={event.time}",
                hint='record lock events with info="lock=<id>"',
            )
            return None

    def _on_acquire(self, event: TraceEvent, cpu: int, payload: Dict[str, str]) -> None:
        lock = self._lock_id(event, payload)
        if lock is None:
            return
        held = self.held.setdefault(cpu, set())
        if lock in held:
            self.report.add(
                "RACE003",
                Severity.ERROR,
                f"cpu {cpu} acquires lock {lock} which it already holds",
                location=f"t={event.time}",
                hint="the sync engine is non-reentrant; release before re-acquiring",
            )
            return
        for other in held:
            self.order_edges.setdefault(other, set()).add(lock)
            self.edge_witness.setdefault(
                (other, lock), f"cpu {cpu} at t={event.time}"
            )
        held.add(lock)
        self.acquired_at[(cpu, lock)] = event.time

    def _on_release(self, event: TraceEvent, cpu: int, payload: Dict[str, str]) -> None:
        lock = self._lock_id(event, payload)
        if lock is None:
            return
        held = self.held.setdefault(cpu, set())
        if lock not in held:
            self.report.add(
                "RACE003",
                Severity.ERROR,
                f"cpu {cpu} releases lock {lock} it does not hold",
                location=f"t={event.time}",
                hint="every release must pair with an acquire on the same cpu",
            )
            return
        held.discard(lock)
        self.acquired_at.pop((cpu, lock), None)

    def _on_barrier(self, event: TraceEvent, cpu: int, payload: Dict[str, str]) -> None:
        try:
            barrier = int(payload["barrier"], 0)
        except (KeyError, ValueError):
            self.report.add(
                "RACE003",
                Severity.ERROR,
                f"barrier event carries no parsable barrier id (info={event.info!r})",
                location=f"t={event.time}",
                hint='record barrier events with info="barrier=<id> width=<n>"',
            )
            return
        width = payload.get("width")
        if width is not None:
            self.barrier_width[barrier] = int(width, 0)
        self.barrier_arrived[barrier] = self.barrier_arrived.get(barrier, 0) + 1
        self.barrier_last_time[barrier] = event.time
        expected = self.barrier_width.get(barrier)
        if expected is not None and self.barrier_arrived[barrier] >= expected:
            self.barrier_arrived[barrier] = 0  # released; next round starts

    def _on_access(self, event: TraceEvent, cpu: int, payload: Dict[str, str]) -> None:
        addr = payload.get("addr")
        operation = payload.get("op", "read")
        if addr is None:
            self.report.add(
                "RACE003",
                Severity.ERROR,
                f"access event carries no address (info={event.info!r})",
                location=f"t={event.time}",
                hint='record accesses with info="addr=<hex> op=read|write"',
            )
            return
        state = self.addresses.setdefault(addr, _AddressState(first_time=event.time))
        held = frozenset(self.held.get(cpu, set()))
        state.lockset = held if state.lockset is None else state.lockset & held
        (state.writers if operation == "write" else state.readers).add(cpu)
        cpus = state.readers | state.writers
        if (
            not state.reported
            and len(cpus) >= 2
            and state.writers
            and not state.lockset
        ):
            state.reported = True
            self.report.add(
                "RACE001",
                Severity.ERROR,
                f"data race on {addr}: cpus {sorted(cpus)} access it "
                f"({len(state.writers)} writer(s)) with no common lock",
                location=f"t={event.time} ({addr})",
                hint="guard the address with one sync-engine lock on every access",
            )

    # ----------------------------------------------------------------- finish
    def finish(self) -> LintReport:
        """End-of-trace checks: leaked locks, lock-order cycles, stuck barriers."""
        for (cpu, lock), time in sorted(self.acquired_at.items()):
            self.report.add(
                "RACE002",
                Severity.WARNING,
                f"cpu {cpu} still holds lock {lock} at the end of the trace "
                f"(acquired at t={time})",
                location=f"t={self.last_time}",
                hint="release every lock; a held lock blocks all other cpus forever",
            )
        cycle = _find_cycle(self.order_edges)
        if cycle:
            arc = " -> ".join(str(lock) for lock in cycle)
            witnesses = "; ".join(
                f"{a}->{b} by {self.edge_witness[(a, b)]}"
                for a, b in zip(cycle, cycle[1:])
                if (a, b) in self.edge_witness
            )
            self.report.add(
                "DEAD001",
                Severity.ERROR,
                f"lock-order cycle {arc}: a different interleaving deadlocks "
                f"({witnesses})",
                location=f"locks {sorted(set(cycle))}",
                hint="acquire locks in one global order on every cpu",
            )
        for barrier, arrived in sorted(self.barrier_arrived.items()):
            width = self.barrier_width.get(barrier)
            if arrived and width is not None and arrived < width:
                self.report.add(
                    "DEAD002",
                    Severity.ERROR,
                    f"barrier {barrier} still waiting at the end of the trace: "
                    f"{arrived} of {width} cpus arrived",
                    location=f"t={self.barrier_last_time.get(barrier, self.last_time)}",
                    hint="every configured cpu must reach the barrier (or lower its width)",
                )
        return self.report


def _find_cycle(edges: Dict[int, Set[int]]) -> Optional[List[int]]:
    """First cycle in the lock-order graph, as [a, ..., a]; None if acyclic."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[int, int] = {}
    nodes = set(edges) | {lock for outs in edges.values() for lock in outs}

    def visit(node: int, path: List[int]) -> Optional[List[int]]:
        colour[node] = GREY
        path.append(node)
        for succ in sorted(edges.get(node, ())):
            if colour.get(succ, WHITE) == GREY:
                return path[path.index(succ):] + [succ]
            if colour.get(succ, WHITE) == WHITE:
                found = visit(succ, path)
                if found:
                    return found
        path.pop()
        colour[node] = BLACK
        return None

    for start in sorted(nodes):
        if colour.get(start, WHITE) == WHITE:
            found = visit(start, [])
            if found:
                return found
    return None


def lint_trace(trace: Iterable[TraceEvent]) -> LintReport:
    """Race/deadlock lint of a recorded (or synthetic) trace.

    Accepts a :class:`~repro.trace.recorder.TraceRecorder` or any
    iterable of :class:`~repro.trace.recorder.TraceEvent`; events of
    other kinds (dispatch, finish, ...) are ignored, so full schedule
    traces can be linted as-is.
    """
    checker = ConcurrencyChecker()
    events = list(trace)
    events.sort(key=lambda e: e.time)
    for event in events:
        checker.feed(event)
    return checker.finish()
