"""``repro-lint``: the static-analysis front end.

Three subcommands, one per pass, plus a self-check smoke mode::

    repro-lint asm prog.s [--param r5 --param r15] [--wcet --loop-bound loop=32]
    repro-lint tasks table.csv --cpus 2 [--tick 10000]
    repro-lint trace trace.json
    repro-lint --self-check

Exit status: 0 when no *errors* were reported (warnings are printed but
do not fail the run), 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Union

from repro.lint.diagnostics import LintReport, Severity


def _print_report(report: LintReport, header: str, out=None) -> int:
    out = out or sys.stdout
    print(report.format(header=header), file=out)
    return 0 if report.ok else 1


# ------------------------------------------------------------------------ asm
def _parse_loop_bounds(items: List[str]) -> Dict[Union[str, int], int]:
    bounds: Dict[Union[str, int], int] = {}
    for item in items:
        label, _, value = item.partition("=")
        if not _ or not label or not value:
            raise SystemExit(f"--loop-bound expects LABEL=N, got {item!r}")
        try:
            bounds[label] = int(value, 0)
        except ValueError:
            raise SystemExit(f"--loop-bound {item!r}: bound must be an integer")
    return bounds


def _cmd_asm(args: argparse.Namespace) -> int:
    from repro.hw.assembler import AssemblerError, assemble
    from repro.lint.asm import lint_program, wcet_bound

    try:
        with open(args.file) as handle:
            source = handle.read()
    except OSError as exc:
        print(f"cannot read {args.file}: {exc.strerror}", file=sys.stderr)
        return 1
    try:
        program = assemble(source, text_base=args.text_base)
    except AssemblerError as exc:
        print(f"ASM000 error: {exc}", file=sys.stderr)
        return 1

    entry = 0
    if args.entry is not None:
        address = program.symbols.get(args.entry)
        if address is None:
            print(f"unknown entry label {args.entry!r}", file=sys.stderr)
            return 1
        entry = (address - program.base) // 4

    report = lint_program(program, entry=entry, params=args.param)
    status = _print_report(report, header=f"asm lint: {args.file}")
    if args.wcet:
        result = wcet_bound(
            program, loop_bounds=_parse_loop_bounds(args.loop_bound), entry=entry
        )
        for diag in result.report:
            if diag.rule == "ASM006":
                print(diag.format())
                status = 1
        if result.bounded:
            print(f"static WCET bound: {result.cycles} cycles")
        else:
            print("static WCET bound: unbounded (see diagnostics)")
            status = 1
    return status


# ---------------------------------------------------------------------- tasks
def _cmd_tasks(args: argparse.Namespace) -> int:
    import csv

    from repro.analysis.partitioning import PartitioningError, partition
    from repro.analysis.promotion import assign_promotions
    from repro.core.task import PeriodicTask, TaskSet
    from repro.lint.tasks import lint_task_rows, lint_taskset

    rows = []
    try:
        handle = open(args.file, newline="")
    except OSError as exc:
        print(f"cannot read {args.file}: {exc.strerror}", file=sys.stderr)
        return 1
    with handle:
        for row in csv.reader(handle):
            if not row or row[0].startswith("#") or row[0] == "name":
                continue
            rows.append(
                {
                    "name": row[0],
                    "wcet": row[1] if len(row) > 1 else None,
                    "period": row[2] if len(row) > 2 else None,
                    "deadline": row[3] if len(row) > 3 and row[3] else None,
                }
            )
    row_report = lint_task_rows(rows)
    status = _print_report(row_report, header=f"task rows: {args.file}")
    if not row_report.ok:
        return status

    taskset = TaskSet(
        [
            PeriodicTask(
                name=row["name"],
                wcet=int(row["wcet"]),
                period=int(row["period"]),
                deadline=int(row["deadline"]) if row["deadline"] else None,
            )
            for row in rows
        ]
    ).with_deadline_monotonic_priorities()

    set_report = LintReport()
    try:
        taskset = partition(taskset, args.cpus, heuristic=args.heuristic)
        taskset = assign_promotions(taskset, args.cpus, tick=args.tick)
    except (PartitioningError, ValueError) as exc:
        set_report.add(
            "TASK003",
            Severity.ERROR,
            f"offline analysis failed: {exc}",
            location="task set",
            hint="the set is infeasible on this processor count",
        )
    set_report.extend(lint_taskset(taskset, args.cpus, tick=args.tick))
    return max(status, _print_report(set_report, header=f"task set ({args.cpus} cpus)"))


# ---------------------------------------------------------------------- trace
def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.lint.concurrency import lint_trace
    from repro.trace.export import trace_from_json

    try:
        with open(args.file) as handle:
            trace = trace_from_json(handle.read())
    except OSError as exc:
        print(f"cannot read {args.file}: {exc.strerror}", file=sys.stderr)
        return 1
    report = lint_trace(trace)
    return _print_report(report, header=f"trace lint: {args.file} ({len(trace)} events)")


# ----------------------------------------------------------------- self-check
def self_check(out=None) -> int:
    """Smoke-run all three passes against built-in fixtures.

    Verifies that every pass still flags its canonical bad input and
    stays silent on known-good ones, including a live cross-check of the
    static WCET bound against the cycle-accurate executor.  Returns 0 on
    success; used by the CI lint tier.
    """
    out = out or sys.stdout
    failures: List[str] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        print(f"{'ok  ' if ok else 'FAIL'} {name}{': ' + detail if detail else ''}",
              file=out)
        if not ok:
            failures.append(name)

    # -- pass 1: assembly
    from repro.hw.asmlib import ROUTINES, link
    from repro.hw.assembler import assemble
    from repro.hw.isa import ISAExecutor
    from repro.hw.soc import SoC, SoCConfig
    from repro.lint.asm import CALLING_CONVENTION_PARAMS, lint_program, wcet_bound

    for name, source in sorted(ROUTINES.items()):
        report = lint_program(assemble(source), params=CALLING_CONVENTION_PARAMS)
        check(f"asm clean: {name}", report.clean,
              "; ".join(d.rule for d in report) or "no diagnostics")

    bad = assemble("add r3, r4, r5\nbeqz r3, skip\nnop\nskip:\n    nop")
    report = lint_program(bad)
    check(
        "asm flags bad fixture",
        bool(report.by_rule("ASM001")) and bool(report.by_rule("ASM003")),
        ",".join(report.rules()),
    )

    driver = link(
        """
        addi r5, r0, 0xABCD
        brl  r15, popcount32
        swi  r3, r0, 0x40010000
        halt
        """,
        routines=["popcount32"],
    )
    soc = SoC(SoCConfig(n_cpus=1))
    executor = ISAExecutor(soc.core(0), driver)
    soc.sim.process(executor.run())
    soc.sim.run()
    bound = wcet_bound(driver)
    check(
        "asm WCET bound >= measured cycles",
        bound.bounded and bound.cycles >= executor.cycles,
        f"bound={bound.cycles} measured={executor.cycles}",
    )

    # -- pass 2: task sets
    from repro.analysis.partitioning import partition
    from repro.analysis.promotion import assign_promotions
    from repro.core.task import PeriodicTask, TaskSet
    from repro.lint.tasks import lint_taskset

    toy = TaskSet(
        [
            PeriodicTask(name="wheel-speed", wcet=12_000, period=60_000),
            PeriodicTask(name="abs-monitor", wcet=20_000, period=100_000, deadline=80_000),
            PeriodicTask(name="engine-poll", wcet=30_000, period=150_000),
        ]
    ).with_deadline_monotonic_priorities()
    toy = assign_promotions(partition(toy, 2), 2, tick=10_000)
    report = lint_taskset(toy, 2, tick=10_000)
    check("tasks clean: quickstart set", report.clean,
          "; ".join(d.rule for d in report) or "no diagnostics")

    overloaded = TaskSet(
        [
            PeriodicTask(name="hog-a", wcet=60_000, period=100_000),
            PeriodicTask(name="hog-b", wcet=60_000, period=100_000),
        ]
    ).with_deadline_monotonic_priorities()
    report = lint_taskset(overloaded, 1)
    check("tasks flag overload", bool(report.by_rule("TASK002")),
          ",".join(report.rules()))

    # -- pass 3: traces
    from repro.lint.concurrency import lint_trace
    from repro.trace.recorder import TraceRecorder

    racy = TraceRecorder()
    racy.record(10, "access", cpu=0, info="addr=0x40010000 op=write")
    racy.record(20, "access", cpu=1, info="addr=0x40010000 op=write")
    report = lint_trace(racy)
    check("trace flags race", bool(report.by_rule("RACE001")),
          ",".join(report.rules()))

    deadlock = TraceRecorder()
    deadlock.record(0, "acquire", cpu=0, info="lock=0")
    deadlock.record(1, "acquire", cpu=0, info="lock=1")
    deadlock.record(2, "unlock", cpu=0, info="lock=1")
    deadlock.record(3, "unlock", cpu=0, info="lock=0")
    deadlock.record(4, "acquire", cpu=1, info="lock=1")
    deadlock.record(5, "acquire", cpu=1, info="lock=0")
    deadlock.record(6, "unlock", cpu=1, info="lock=0")
    deadlock.record(7, "unlock", cpu=1, info="lock=1")
    report = lint_trace(deadlock)
    check("trace flags lock-order cycle", bool(report.by_rule("DEAD001")),
          ",".join(report.rules()))

    clean = TraceRecorder()
    for time, cpu in ((0, 0), (10, 1)):
        clean.record(time, "acquire", cpu=cpu, info="lock=0")
        clean.record(time + 2, "access", cpu=cpu, info="addr=0x40010000 op=write")
        clean.record(time + 4, "unlock", cpu=cpu, info="lock=0")
    report = lint_trace(clean)
    check("trace clean: guarded accesses", report.clean,
          "; ".join(d.rule for d in report) or "no diagnostics")

    print(
        f"self-check: {'PASS' if not failures else 'FAIL'} "
        f"({len(failures)} failure(s))",
        file=out,
    )
    return 0 if not failures else 1


# ----------------------------------------------------------------------- main
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="static analysis: assembly CFG/dataflow/WCET, task-set "
        "schedulability, trace race/deadlock detection",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="smoke-run all three passes on built-in fixtures and exit",
    )
    commands = parser.add_subparsers(dest="command")

    asm = commands.add_parser("asm", help="lint an assembly source file")
    asm.add_argument("file")
    asm.add_argument("--entry", default=None, help="entry label (default: first instruction)")
    asm.add_argument(
        "--param",
        action="append",
        default=[],
        help="register defined at entry (repeatable), e.g. --param r5",
    )
    asm.add_argument("--text-base", type=lambda v: int(v, 0), default=0x4000_0000)
    asm.add_argument("--wcet", action="store_true", help="also compute the WCET bound")
    asm.add_argument(
        "--loop-bound",
        action="append",
        default=[],
        metavar="LABEL=N",
        help="max iterations of the loop headed at LABEL (repeatable)",
    )
    asm.set_defaults(func=_cmd_asm)

    tasks = commands.add_parser("tasks", help="lint a task table CSV")
    tasks.add_argument("file", help="CSV: name,wcet,period[,deadline]")
    tasks.add_argument("--cpus", type=int, default=2)
    tasks.add_argument(
        "--heuristic", default="worst-fit", choices=["first-fit", "best-fit", "worst-fit"]
    )
    tasks.add_argument("--tick", type=int, default=None)
    tasks.set_defaults(func=_cmd_tasks)

    trace = commands.add_parser("trace", help="lint a JSON trace for races/deadlocks")
    trace.add_argument("file", help="trace JSON (repro.trace.export.trace_to_json)")
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.self_check:
        return self_check()
    if not getattr(args, "command", None):
        parser.print_help(sys.stderr)
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
