"""``repro-lint``: the static-analysis front end.

Five subcommands, one per pass, plus a self-check smoke mode::

    repro-lint asm prog.s [--param r5] [--wcet --loop-bound loop=32] [--verified]
    repro-lint tasks table.csv --cpus 2 [--tick 10000]
    repro-lint trace trace.json
    repro-lint audit [--kernel memcpy_words] [--seed 1 --seed 2] [--routines]
    repro-lint determinism [PATH ...]
    repro-lint --self-check

Every subcommand accepts ``--format {text,json}``; JSON output carries
the stable rule-code/location schema from
:meth:`~repro.lint.diagnostics.Diagnostic.to_dict`, so CI can gate on
specific rules.

Exit status is a three-way contract:

- ``0`` -- the pass ran and reported no *errors* (warnings are printed
  but do not fail the run);
- ``1`` -- the pass ran and reported findings (lint errors, unbounded
  WCET, failed audit checks);
- ``2`` -- the tool itself could not do its job: unreadable input,
  usage errors, or an internal crash.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.lint.diagnostics import LintReport, Severity

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


class _InputError(Exception):
    """Operational failure (unreadable input): exit code 2, not a finding."""


def _read_text(path: str) -> str:
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as exc:
        raise _InputError(f"cannot read {path}: {exc.strerror}") from exc


def _print_report(report: LintReport, header: str, out=None) -> int:
    out = out or sys.stdout
    print(report.format(header=header), file=out)
    return EXIT_OK if report.ok else EXIT_FINDINGS


def _emit_json(payload: dict) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


# ------------------------------------------------------------------------ asm
def _parse_loop_bounds(items: List[str]) -> Dict[Union[str, int], int]:
    bounds: Dict[Union[str, int], int] = {}
    for item in items:
        label, _, value = item.partition("=")
        if not _ or not label or not value:
            raise SystemExit(f"--loop-bound expects LABEL=N, got {item!r}")
        try:
            bounds[label] = int(value, 0)
        except ValueError:
            raise SystemExit(f"--loop-bound {item!r}: bound must be an integer")
    return bounds


def _cmd_asm(args: argparse.Namespace) -> int:
    from repro.hw.assembler import AssemblerError, assemble
    from repro.lint.absint import (
        AnnotationError,
        audit_annotation_rules,
        parse_annotations,
        verified_wcet,
    )
    from repro.lint.asm import ProgramAnalysis, lint_program, wcet_bound

    source = _read_text(args.file)
    try:
        program = assemble(source, text_base=args.text_base)
    except AssemblerError as exc:
        print(f"ASM000 error: {exc}", file=sys.stderr)
        return EXIT_FINDINGS

    entry = 0
    if args.entry is not None:
        address = program.symbols.get(args.entry)
        if address is None:
            print(f"unknown entry label {args.entry!r}", file=sys.stderr)
            return EXIT_ERROR
        entry = (address - program.base) // 4

    report = lint_program(program, entry=entry, params=args.param)
    status = EXIT_OK if report.ok else EXIT_FINDINGS
    payload: dict = {
        "command": "asm",
        "file": args.file,
        "report": report.to_dict(),
        "wcet": None,
        "verified": None,
    }
    if args.format == "text":
        _print_report(report, header=f"asm lint: {args.file}")

    if args.wcet:
        result = wcet_bound(
            program, loop_bounds=_parse_loop_bounds(args.loop_bound), entry=entry
        )
        for diag in result.report:
            if diag.rule == "ASM006":
                if args.format == "text":
                    print(diag.format())
                payload["report"]["diagnostics"].append(diag.to_dict())
                status = EXIT_FINDINGS
        payload["wcet"] = {"bounded": result.bounded, "cycles": result.cycles}
        if args.format == "text":
            if result.bounded:
                print(f"static WCET bound: {result.cycles} cycles")
            else:
                print("static WCET bound: unbounded (see diagnostics)")
        if not result.bounded:
            status = EXIT_FINDINGS

    if args.verified:
        try:
            annotations = parse_annotations(source)
        except AnnotationError as exc:
            print(f"ASM000 error: {exc}", file=sys.stderr)
            return EXIT_FINDINGS
        analysis = ProgramAnalysis(program, entry=entry)
        wcet = verified_wcet(
            program, annotations=annotations, entry=entry, analysis=analysis
        )
        absint_report = LintReport().extend(wcet.absint.report)
        absint_report.extend(
            audit_annotation_rules(wcet.absint, annotations, analysis)
        )
        payload["verified"] = {
            "ok": absint_report.ok,
            "verified_cycles": wcet.verified_cycles,
            "annotated_cycles": wcet.annotated_cycles,
            "tightened": wcet.tightened,
            "report": absint_report.to_dict(),
        }
        if args.format == "text":
            for diag in absint_report:
                print(diag.format())
            if wcet.verified_cycles is not None:
                suffix = " (tightened)" if wcet.tightened else ""
                print(
                    f"verified WCET bound: {wcet.verified_cycles} cycles "
                    f"(annotated: {wcet.annotated_cycles}){suffix}"
                )
            else:
                print("verified WCET bound: unbounded (see diagnostics)")
        if not absint_report.ok or wcet.verified_cycles is None:
            status = EXIT_FINDINGS

    if args.format == "json":
        _emit_json(payload)
    return status


# ---------------------------------------------------------------------- tasks
def _cmd_tasks(args: argparse.Namespace) -> int:
    import csv
    import io

    from repro.analysis.partitioning import PartitioningError, partition
    from repro.analysis.promotion import assign_promotions
    from repro.core.task import PeriodicTask, TaskSet
    from repro.lint.tasks import lint_task_rows, lint_taskset

    text = _read_text(args.file)
    rows = []
    for row in csv.reader(io.StringIO(text)):
        if not row or row[0].startswith("#") or row[0] == "name":
            continue
        rows.append(
            {
                "name": row[0],
                "wcet": row[1] if len(row) > 1 else None,
                "period": row[2] if len(row) > 2 else None,
                "deadline": row[3] if len(row) > 3 and row[3] else None,
            }
        )
    row_report = lint_task_rows(rows)
    payload: dict = {
        "command": "tasks",
        "file": args.file,
        "rows": row_report.to_dict(),
        "taskset": None,
    }
    status = EXIT_OK if row_report.ok else EXIT_FINDINGS
    if args.format == "text":
        _print_report(row_report, header=f"task rows: {args.file}")
    if not row_report.ok:
        if args.format == "json":
            _emit_json(payload)
        return status

    taskset = TaskSet(
        [
            PeriodicTask(
                name=row["name"],
                wcet=int(row["wcet"]),
                period=int(row["period"]),
                deadline=int(row["deadline"]) if row["deadline"] else None,
            )
            for row in rows
        ]
    ).with_deadline_monotonic_priorities()

    set_report = LintReport()
    try:
        taskset = partition(taskset, args.cpus, heuristic=args.heuristic)
        taskset = assign_promotions(taskset, args.cpus, tick=args.tick)
    except (PartitioningError, ValueError) as exc:
        set_report.add(
            "TASK003",
            Severity.ERROR,
            f"offline analysis failed: {exc}",
            location="task set",
            hint="the set is infeasible on this processor count",
        )
    set_report.extend(lint_taskset(taskset, args.cpus, tick=args.tick))
    payload["taskset"] = set_report.to_dict()
    if args.format == "text":
        _print_report(set_report, header=f"task set ({args.cpus} cpus)")
    if args.format == "json":
        _emit_json(payload)
    return max(status, EXIT_OK if set_report.ok else EXIT_FINDINGS)


# ---------------------------------------------------------------------- trace
def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.lint.concurrency import lint_trace
    from repro.trace.export import trace_from_json

    trace = trace_from_json(_read_text(args.file))
    report = lint_trace(trace)
    if args.format == "json":
        _emit_json(
            {
                "command": "trace",
                "file": args.file,
                "events": len(trace),
                "report": report.to_dict(),
            }
        )
        return EXIT_OK if report.ok else EXIT_FINDINGS
    return _print_report(report, header=f"trace lint: {args.file} ({len(trace)} events)")


# ---------------------------------------------------------------------- audit
def _audit_dict(audit) -> dict:
    return {
        "kernel": audit.kernel,
        "seed": audit.seed,
        "measured": audit.measured,
        "verified": audit.wcet.verified_cycles,
        "annotated": audit.wcet.annotated_cycles,
        "tightened": audit.wcet.tightened,
        "ok": audit.ok,
        "loop_executions": audit.loop_executions,
        "checks": [
            {"name": name, "ok": ok, "detail": detail}
            for name, ok, detail in audit.checks
        ],
    }


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.lint.absint import (
        EXPECTED_COUNTED,
        audit_kernel,
        audit_routine,
        format_audit,
    )

    kernels = args.kernel or sorted(EXPECTED_COUNTED)
    unknown = [k for k in kernels if k not in EXPECTED_COUNTED]
    if unknown:
        print(f"unknown kernel(s): {', '.join(unknown)}", file=sys.stderr)
        return EXIT_ERROR

    if args.routines:
        routine_audits = [audit_routine(kernel) for kernel in kernels]
        ok = all(audit.ok for audit in routine_audits)
        if args.format == "json":
            _emit_json(
                {
                    "command": "audit",
                    "mode": "routines",
                    "routines": [
                        {
                            "name": audit.name,
                            "ok": audit.ok,
                            "report": audit.report.to_dict(),
                            "loops": [
                                {
                                    "label": summary.label,
                                    "header": header,
                                    "counted": summary.counted,
                                    "inferred": summary.inferred,
                                    "inferred_min": summary.inferred_min,
                                }
                                for header, summary in sorted(
                                    audit.result.loops.items()
                                )
                            ],
                        }
                        for audit in routine_audits
                    ],
                }
            )
        else:
            for audit in routine_audits:
                _print_report(audit.report, header=f"routine audit: {audit.name}")
                for header, summary in sorted(audit.result.loops.items()):
                    print(
                        f"  loop {summary.label or header}: "
                        f"counted={summary.counted} inferred={summary.inferred}"
                    )
        return EXIT_OK if ok else EXIT_FINDINGS

    seeds = args.seed or [1]
    audits = [audit_kernel(k, seed=s) for k in kernels for s in seeds]
    ok = all(audit.ok for audit in audits)
    if args.format == "json":
        _emit_json(
            {
                "command": "audit",
                "mode": "kernels",
                "audits": [_audit_dict(a) for a in audits],
                "ok": ok,
            }
        )
    else:
        print(format_audit(audits))
        for audit in audits:
            if not audit.ok:
                for name, check_ok, detail in audit.checks:
                    if not check_ok:
                        print(
                            f"FAIL {audit.kernel} seed={audit.seed}: {name} ({detail})"
                        )
    return EXIT_OK if ok else EXIT_FINDINGS


# --------------------------------------------------------------- determinism
def _default_determinism_paths() -> List[str]:
    import repro
    from repro.lint.determinism import DEFAULT_PATHS

    base = Path(repro.__file__).parent
    return [str(base / Path(p).name) for p in DEFAULT_PATHS]


def _cmd_determinism(args: argparse.Namespace) -> int:
    from repro.lint.determinism import lint_paths

    paths = args.path or _default_determinism_paths()
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        raise _InputError(f"cannot read {missing[0]}: No such file or directory")
    report = lint_paths(paths)
    if args.format == "json":
        _emit_json(
            {"command": "determinism", "paths": list(paths), "report": report.to_dict()}
        )
        return EXIT_OK if report.ok else EXIT_FINDINGS
    return _print_report(
        report, header=f"determinism lint: {len(paths)} path(s)"
    )


# ----------------------------------------------------------------- self-check
def self_check(out=None) -> int:
    """Smoke-run all passes against built-in fixtures.

    Verifies that every pass still flags its canonical bad input and
    stays silent on known-good ones, including a live cross-check of the
    static WCET bound against the cycle-accurate executor and the full
    ``measured <= verified <= annotated`` audit chain for every asmlib
    kernel.  Returns 0 on success; used by the CI lint tier.
    """
    out = out or sys.stdout
    failures: List[str] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        print(f"{'ok  ' if ok else 'FAIL'} {name}{': ' + detail if detail else ''}",
              file=out)
        if not ok:
            failures.append(name)

    # -- pass 1: assembly
    from repro.hw.asmlib import ROUTINES, link
    from repro.hw.assembler import assemble
    from repro.hw.isa import ISAExecutor
    from repro.hw.soc import SoC, SoCConfig
    from repro.lint.asm import CALLING_CONVENTION_PARAMS, lint_program, wcet_bound

    for name, source in sorted(ROUTINES.items()):
        report = lint_program(assemble(source), params=CALLING_CONVENTION_PARAMS)
        check(f"asm clean: {name}", report.clean,
              "; ".join(d.rule for d in report) or "no diagnostics")

    bad = assemble("add r3, r4, r5\nbeqz r3, skip\nnop\nskip:\n    nop")
    report = lint_program(bad)
    check(
        "asm flags bad fixture",
        bool(report.by_rule("ASM001")) and bool(report.by_rule("ASM003")),
        ",".join(report.rules()),
    )

    driver = link(
        """
        addi r5, r0, 0xABCD
        brl  r15, popcount32
        swi  r3, r0, 0x40010000
        halt
        """,
        routines=["popcount32"],
    )
    soc = SoC(SoCConfig(n_cpus=1))
    executor = ISAExecutor(soc.core(0), driver)
    soc.sim.process(executor.run())
    soc.sim.run()
    bound = wcet_bound(driver)
    check(
        "asm WCET bound >= measured cycles",
        bound.bounded and bound.cycles >= executor.cycles,
        f"bound={bound.cycles} measured={executor.cycles}",
    )

    # -- pass 2: task sets
    from repro.analysis.partitioning import partition
    from repro.analysis.promotion import assign_promotions
    from repro.core.task import PeriodicTask, TaskSet
    from repro.lint.tasks import lint_taskset

    toy = TaskSet(
        [
            PeriodicTask(name="wheel-speed", wcet=12_000, period=60_000),
            PeriodicTask(name="abs-monitor", wcet=20_000, period=100_000, deadline=80_000),
            PeriodicTask(name="engine-poll", wcet=30_000, period=150_000),
        ]
    ).with_deadline_monotonic_priorities()
    toy = assign_promotions(partition(toy, 2), 2, tick=10_000)
    report = lint_taskset(toy, 2, tick=10_000)
    check("tasks clean: quickstart set", report.clean,
          "; ".join(d.rule for d in report) or "no diagnostics")

    overloaded = TaskSet(
        [
            PeriodicTask(name="hog-a", wcet=60_000, period=100_000),
            PeriodicTask(name="hog-b", wcet=60_000, period=100_000),
        ]
    ).with_deadline_monotonic_priorities()
    report = lint_taskset(overloaded, 1)
    check("tasks flag overload", bool(report.by_rule("TASK002")),
          ",".join(report.rules()))

    # -- pass 3: traces
    from repro.lint.concurrency import lint_trace
    from repro.trace.recorder import TraceRecorder

    racy = TraceRecorder()
    racy.record(10, "access", cpu=0, info="addr=0x40010000 op=write")
    racy.record(20, "access", cpu=1, info="addr=0x40010000 op=write")
    report = lint_trace(racy)
    check("trace flags race", bool(report.by_rule("RACE001")),
          ",".join(report.rules()))

    deadlock = TraceRecorder()
    deadlock.record(0, "acquire", cpu=0, info="lock=0")
    deadlock.record(1, "acquire", cpu=0, info="lock=1")
    deadlock.record(2, "unlock", cpu=0, info="lock=1")
    deadlock.record(3, "unlock", cpu=0, info="lock=0")
    deadlock.record(4, "acquire", cpu=1, info="lock=1")
    deadlock.record(5, "acquire", cpu=1, info="lock=0")
    deadlock.record(6, "unlock", cpu=1, info="lock=0")
    deadlock.record(7, "unlock", cpu=1, info="lock=1")
    report = lint_trace(deadlock)
    check("trace flags lock-order cycle", bool(report.by_rule("DEAD001")),
          ",".join(report.rules()))

    clean = TraceRecorder()
    for time, cpu in ((0, 0), (10, 1)):
        clean.record(time, "acquire", cpu=cpu, info="lock=0")
        clean.record(time + 2, "access", cpu=cpu, info="addr=0x40010000 op=write")
        clean.record(time + 4, "unlock", cpu=cpu, info="lock=0")
    report = lint_trace(clean)
    check("trace clean: guarded accesses", report.clean,
          "; ".join(d.rule for d in report) or "no diagnostics")

    # -- pass 4: abstract interpretation
    from repro.lint.absint import analyse, audit_kernels, format_audit, verified_wcet

    counted = assemble(
        """
            addi r3, r0, 5
        loop:
            addi r3, r3, -1
            bnez r3, loop
            halt
        """
    )
    result = analyse(counted)
    inferred = sorted(result.inferred_bounds().values())
    check(
        "absint infers counted-loop bound",
        result.ok and inferred == [5],
        f"inferred={inferred}",
    )

    bad_mem = analyse(assemble("lwi r3, r0, 0x123\nhalt"))
    check(
        "absint flags misaligned access (ASM104)",
        bool(bad_mem.report.by_rule("ASM104")),
        ",".join(bad_mem.report.rules()),
    )

    deep = analyse(
        assemble(
            "addi r3, r0, 1\nbrl r15, leaf\nhalt\nleaf:\naddi r4, r0, 2\njr r15"
        ),
        stack_budget=1,
    )
    check(
        "absint flags stack overflow (ASM105)",
        bool(deep.report.by_rule("ASM105")),
        ",".join(deep.report.rules()),
    )

    pruned = verified_wcet(
        assemble(
            """
                addi r3, r0, 1
                beqz r3, slow
                halt
            slow:
                addi r4, r0, 1
                addi r4, r4, 1
                addi r4, r4, 1
                halt
            """
        )
    )
    check(
        "absint prunes infeasible path",
        pruned.tightened,
        f"verified={pruned.verified_cycles} annotated={pruned.annotated_cycles}",
    )

    audits = audit_kernels(seeds=(1,))
    for audit in audits:
        check(
            f"kernel audit: {audit.kernel}",
            audit.ok,
            "; ".join(n for n, ok, _ in audit.checks if not ok) or "all checks",
        )
    check(
        "at least one kernel strictly tighter than annotation",
        any(audit.wcet.tightened for audit in audits),
        ", ".join(a.kernel for a in audits if a.wcet.tightened) or "none",
    )
    print(format_audit(audits), file=out)

    # -- pass 5: repo determinism
    from repro.lint.determinism import lint_paths, lint_python_source

    det = lint_paths(_default_determinism_paths())
    check(
        "determinism: sim/hw/kernel clean",
        det.clean,
        "; ".join(d.rule for d in det) or "no diagnostics",
    )
    det_bad = lint_python_source(
        "import time, random\n"
        "x = time.time()\n"
        "y = random.random()\n"
        "for k in {1, 2}:\n"
        "    pass\n"
    )
    check(
        "determinism flags DET001/DET002/DET003",
        det_bad.rules() == ["DET001", "DET002", "DET003"],
        ",".join(det_bad.rules()),
    )

    print(
        f"self-check: {'PASS' if not failures else 'FAIL'} "
        f"({len(failures)} failure(s))",
        file=out,
    )
    return 0 if not failures else 1


# ----------------------------------------------------------------------- main
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="static analysis: assembly CFG/dataflow/WCET, abstract "
        "interpretation, task-set schedulability, trace race/deadlock "
        "detection, repo determinism",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="smoke-run all passes on built-in fixtures and exit",
    )
    commands = parser.add_subparsers(dest="command")

    fmt = argparse.ArgumentParser(add_help=False)
    fmt.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (json uses the stable rule/location schema)",
    )

    asm = commands.add_parser(
        "asm", help="lint an assembly source file", parents=[fmt]
    )
    asm.add_argument("file")
    asm.add_argument("--entry", default=None, help="entry label (default: first instruction)")
    asm.add_argument(
        "--param",
        action="append",
        default=[],
        help="register defined at entry (repeatable), e.g. --param r5",
    )
    asm.add_argument("--text-base", type=lambda v: int(v, 0), default=0x4000_0000)
    asm.add_argument("--wcet", action="store_true", help="also compute the WCET bound")
    asm.add_argument(
        "--loop-bound",
        action="append",
        default=[],
        metavar="LABEL=N",
        help="max iterations of the loop headed at LABEL (repeatable)",
    )
    asm.add_argument(
        "--verified",
        action="store_true",
        help="run the abstract-interpretation pass: inferred bounds, "
        "memory/stack proofs, path-pruned WCET (uses #@ annotations)",
    )
    asm.set_defaults(func=_cmd_asm)

    tasks = commands.add_parser("tasks", help="lint a task table CSV", parents=[fmt])
    tasks.add_argument("file", help="CSV: name,wcet,period[,deadline]")
    tasks.add_argument("--cpus", type=int, default=2)
    tasks.add_argument(
        "--heuristic", default="worst-fit", choices=["first-fit", "best-fit", "worst-fit"]
    )
    tasks.add_argument("--tick", type=int, default=None)
    tasks.set_defaults(func=_cmd_tasks)

    trace = commands.add_parser(
        "trace", help="lint a JSON trace for races/deadlocks", parents=[fmt]
    )
    trace.add_argument("file", help="trace JSON (repro.trace.export.trace_to_json)")
    trace.set_defaults(func=_cmd_trace)

    audit = commands.add_parser(
        "audit",
        help="verify asmlib kernels: measured <= verified <= annotated WCET",
        parents=[fmt],
    )
    audit.add_argument(
        "--kernel",
        action="append",
        default=[],
        help="kernel to audit (repeatable; default: all asmlib kernels)",
    )
    audit.add_argument(
        "--seed",
        action="append",
        type=int,
        default=[],
        help="driver data seed (repeatable; default: 1)",
    )
    audit.add_argument(
        "--routines",
        action="store_true",
        help="audit routine contracts standalone (no executor run)",
    )
    audit.set_defaults(func=_cmd_audit)

    determinism = commands.add_parser(
        "determinism",
        help="AST lint for nondeterminism in simulator hot paths",
        parents=[fmt],
    )
    determinism.add_argument(
        "path",
        nargs="*",
        help="files/directories to scan (default: src/repro/{sim,hw,kernel})",
    )
    determinism.set_defaults(func=_cmd_determinism)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.self_check:
        return self_check()
    if not getattr(args, "command", None):
        parser.print_help(sys.stderr)
        return EXIT_ERROR
    try:
        return args.func(args)
    except _InputError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_ERROR
    except Exception as exc:  # crash, not a finding: distinct exit code for CI
        print(f"repro-lint: internal error: {exc!r}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
