"""Structured theoretical-vs-prototype validation.

Runs both simulators on the same analysed task set and produces a
per-task comparison of response times -- the drill-down behind Figure
4's single aperiodic number.  Used by the validation benchmarks and
useful to anyone re-calibrating the hardware model against different
traffic profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.task import TaskSet
from repro.kernel.microkernel import TaskBinding
from repro.simulators.prototype import PrototypeConfig, PrototypeSimulator
from repro.simulators.theoretical import TheoreticalSimulator
from repro.trace.metrics import compute_metrics


@dataclass(frozen=True)
class TaskComparison:
    """Response-time comparison for one task."""

    task: str
    is_periodic: bool
    theoretical_mean: float
    prototype_mean: float
    jobs_theoretical: int
    jobs_prototype: int

    @property
    def slowdown_pct(self) -> float:
        if self.theoretical_mean <= 0:
            return 0.0
        return 100.0 * (self.prototype_mean / self.theoretical_mean - 1.0)


@dataclass
class ValidationResult:
    """Outcome of one side-by-side run."""

    comparisons: List[TaskComparison]
    theoretical_misses: int
    prototype_misses: int

    def by_task(self, name: str) -> TaskComparison:
        for comparison in self.comparisons:
            if comparison.task == name:
                return comparison
        raise KeyError(name)

    def worst_periodic_slowdown(self) -> Optional[TaskComparison]:
        periodic = [c for c in self.comparisons if c.is_periodic]
        return max(periodic, key=lambda c: c.slowdown_pct, default=None)

    def format(self) -> str:
        lines = [
            f"{'task':<28}{'theo mean':>14}{'proto mean':>14}{'slowdown':>10}"
        ]
        for c in sorted(self.comparisons, key=lambda c: -c.slowdown_pct):
            lines.append(
                f"{c.task:<28}{c.theoretical_mean:>14.0f}{c.prototype_mean:>14.0f}"
                f"{c.slowdown_pct:>9.1f}%"
            )
        lines.append(
            f"misses: theoretical={self.theoretical_misses} "
            f"prototype={self.prototype_misses}"
        )
        return "\n".join(lines)


def validate(
    taskset: TaskSet,
    n_cpus: int,
    tick: int,
    horizon: int,
    scale: int = 1,
    overhead: float = 0.02,
    bindings: Optional[Dict[str, TaskBinding]] = None,
    aperiodic_arrivals: Optional[Dict[str, Sequence[int]]] = None,
) -> ValidationResult:
    """Run both simulators and compare per-task mean responses.

    All times (tick, horizon, arrivals) are full-scale cycles; the
    prototype is scaled internally and reports back at full scale.
    """
    theoretical = TheoreticalSimulator(
        taskset, n_cpus, tick=tick, overhead=overhead,
        aperiodic_arrivals=aperiodic_arrivals,
    )
    theoretical.run(horizon)
    theo_metrics = compute_metrics(theoretical.finished_jobs, horizon)

    prototype = PrototypeSimulator(
        taskset,
        PrototypeConfig(n_cpus=n_cpus, tick=tick, scale=scale),
        bindings=bindings,
        aperiodic_arrivals=aperiodic_arrivals,
    )
    prototype.run(horizon)
    proto_metrics = compute_metrics(prototype.finished_jobs, horizon // scale)

    comparisons: List[TaskComparison] = []
    periodic_names = {t.name for t in taskset.periodic}
    for name in sorted(set(theo_metrics.response) & set(proto_metrics.response)):
        theo = theo_metrics.response[name]
        proto = proto_metrics.response[name]
        comparisons.append(
            TaskComparison(
                task=name,
                is_periodic=name in periodic_names,
                theoretical_mean=theo.mean,
                prototype_mean=float(proto.mean * scale),
                jobs_theoretical=theo.count,
                jobs_prototype=proto.count,
            )
        )
    return ValidationResult(
        comparisons=comparisons,
        theoretical_misses=theo_metrics.deadline_misses,
        prototype_misses=proto_metrics.deadline_misses,
    )
