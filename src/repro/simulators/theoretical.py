"""The theoretical MPDP simulator (the paper's comparison baseline).

"The theoretical data for 2, 3, 4 processors architectures are
calculated with a simulator that adopts the same approach of the
scheduling kernel of the target architecture, considering a small
overhead (2%) for context switching and contentions.  Scheduling phase
is triggered each 0.1 seconds by the system timer."

So this simulator makes *exactly the same decisions* as the prototype
kernel -- it drives the identical :class:`~repro.core.mpdp.MPDPScheduler`
at the same tick granularity -- but replaces all physical effects
(arbitrated bus, context traffic, interrupt latency) with a uniform
inflation of execution times by ``overhead`` (2 % by default).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.mpdp import Allocation, MPDPScheduler
from repro.core.task import AperiodicTask, Job, TaskSet
from repro.trace.recorder import TraceRecorder


class TheoreticalSimulator:
    """Event-driven MPDP with idealised hardware.

    Parameters
    ----------
    taskset:
        Analysed task set (promotions + partition assigned).
    n_cpus:
        Number of processors.
    tick:
        Scheduling period in cycles (the paper: 0.1 s = 5 M cycles).
    overhead:
        Fractional execution-time inflation standing in for context
        switches and contention (paper: 0.02).
    aperiodic_arrivals:
        Mapping task name -> list of absolute arrival cycles.  Tasks
        must exist in ``taskset.aperiodic``; arrivals given there are
        honoured too.
    """

    def __init__(
        self,
        taskset: TaskSet,
        n_cpus: int,
        tick: int,
        overhead: float = 0.02,
        aperiodic_arrivals: Optional[Dict[str, Sequence[int]]] = None,
        trace: Optional[TraceRecorder] = None,
    ):
        if tick <= 0:
            raise ValueError("tick must be positive")
        if overhead < 0:
            raise ValueError("overhead must be non-negative")
        self.taskset = taskset
        self.n_cpus = n_cpus
        self.tick = tick
        self.overhead = overhead
        self.policy = MPDPScheduler(taskset, n_cpus, promotion_granularity="tick")
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.now = 0
        self.context_switches = 0
        self.scheduling_cycles = 0
        self._inflated: set = set()

        arrivals: List[Tuple[int, AperiodicTask]] = []
        merged: Dict[str, List[int]] = {
            task.name: list(task.arrivals) for task in taskset.aperiodic
        }
        for name, times in (aperiodic_arrivals or {}).items():
            task = taskset.by_name(name)
            if not isinstance(task, AperiodicTask):
                raise TypeError(f"{name} is not an aperiodic task")
            merged.setdefault(name, []).extend(times)
        for name, times in merged.items():
            task = taskset.by_name(name)
            for time in times:
                arrivals.append((time, task))
        arrivals.sort(key=lambda item: item[0])
        self._arrivals = arrivals
        self._aper_index: Dict[str, int] = {}

    # -------------------------------------------------------------- inflation
    def _inflate(self, job: Job) -> None:
        """Apply the uniform overhead to a job exactly once."""
        if job.uid in self._inflated:
            return
        self._inflated.add(job.uid)
        job.remaining = int(round(job.remaining * (1.0 + self.overhead)))

    # ------------------------------------------------------------------- events
    def _process_tick(self) -> bool:
        released = self.policy.release_due(self.now)
        for job in released:
            self._inflate(job)
            self.trace.record(self.now, "release", job=job.name)
        promoted = self.policy.promote_due(self.now)
        for job in promoted:
            self.trace.record(self.now, "promote", job=job.name)
        self.scheduling_cycles += 1
        self.trace.record(self.now, "tick")
        return True

    def _process_arrivals(self) -> bool:
        dirty = False
        while self._arrivals and self._arrivals[0][0] <= self.now:
            _time, task = self._arrivals.pop(0)
            index = self._aper_index.get(task.name, 0)
            self._aper_index[task.name] = index + 1
            job = Job(task, release=self.now, index=index)
            self._inflate(job)
            self.policy.add_aperiodic(job)
            self.trace.record(self.now, "release", job=job.name, info="aperiodic")
            dirty = True
        return dirty

    def _process_completions(self) -> bool:
        dirty = False
        for cpu, job in enumerate(list(self.policy.running)):
            if job is not None and job.remaining == 0:
                self.policy.job_finished(job, self.now)
                self.trace.record(self.now, "finish", job=job.name, cpu=cpu)
                dirty = True
        return dirty

    def _allocate(self) -> None:
        previous = list(self.policy.running)
        allocation = self.policy.allocate(self.now)
        self.context_switches += len(allocation.switches)
        for cpu in allocation.switches:
            job = allocation.assignment[cpu]
            old = previous[cpu]
            if old is not None and old.remaining > 0 and old is not job:
                self.trace.record(self.now, "preempt", job=old.name, cpu=cpu)
            if job is not None:
                self.trace.record(self.now, "dispatch", job=job.name, cpu=cpu)
            else:
                self.trace.record(self.now, "idle", cpu=cpu)

    # --------------------------------------------------------------------- run
    def run(self, until: int) -> List[Job]:
        """Simulate to ``until``; returns the finished jobs."""
        next_tick = self.now  # first scheduling cycle at start
        while self.now < until:
            dirty = False
            if self.now == next_tick:
                dirty |= self._process_tick()
                next_tick += self.tick
            dirty |= self._process_arrivals()
            dirty |= self._process_completions()
            if dirty:
                self._allocate()

            # Next event: tick, arrival, or earliest completion.
            candidates = [next_tick]
            if self._arrivals:
                candidates.append(self._arrivals[0][0])
            for job in self.policy.running:
                if job is not None:
                    candidates.append(self.now + job.remaining)
            next_time = min(candidates)
            next_time = min(next_time, until)
            if next_time <= self.now:
                # Guard against zero-length steps (all events processed).
                next_time = min(c for c in candidates if c > self.now) if any(
                    c > self.now for c in candidates
                ) else until
                next_time = min(next_time, until)
                if next_time <= self.now:
                    break
            delta = next_time - self.now
            for job in self.policy.running:
                if job is not None:
                    if job.remaining < delta:  # pragma: no cover - defensive
                        raise RuntimeError("missed a completion event")
                    job.remaining -= delta
            self.now = next_time
        return self.policy.finished_jobs

    # ----------------------------------------------------------------- queries
    @property
    def finished_jobs(self) -> List[Job]:
        return self.policy.finished_jobs

    def stats(self) -> dict:
        return {
            "context_switches": self.context_switches,
            "scheduling_cycles": self.scheduling_cycles,
            "promotions": self.policy.promotion_count,
        }
