"""Baseline multiprocessor schedulers for comparison with MPDP.

The related-work section of the paper frames MPDP against two families:

- *partitioned fixed priority* with aperiodic tasks served in the
  background of the processor they land on (the common commercial-RTOS
  approach);
- *global* schedulers (fixed priority, EDF) that allocate all tasks on
  all processors but "do not deal with aperiodic tasks" -- here
  aperiodics also run in the background.

These run on a shared event-exact engine
(:class:`MultiprocessorSimulator`) so the ablation benchmarks can put
aperiodic response times side by side under identical workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.task import AperiodicTask, Job, PeriodicTask, TaskSet
from repro.trace.recorder import TraceRecorder


class BaselinePolicy:
    """Priority/affinity rules for :class:`MultiprocessorSimulator`.

    ``job_key`` orders ready jobs (larger runs first); ``eligible_cpu``
    returns the only processor a job may use, or None for any.
    """

    name = "abstract"

    def job_key(self, job: Job, now: int) -> Tuple:
        raise NotImplementedError

    def eligible_cpu(self, job: Job) -> Optional[int]:
        raise NotImplementedError


class PartitionedFixedPriorityPolicy(BaselinePolicy):
    """Periodic tasks pinned to their partition at fixed priority;
    aperiodic jobs execute in the background (below every periodic) on
    any processor, FIFO among themselves."""

    name = "partitioned-fp"

    def job_key(self, job: Job, now: int) -> Tuple:
        if job.is_periodic:
            return (1, job.task.high_priority, -job.uid)
        return (0, -job.release, -job.uid)

    def eligible_cpu(self, job: Job) -> Optional[int]:
        return job.task.cpu if job.is_periodic else None


class GlobalFixedPriorityPolicy(BaselinePolicy):
    """Periodic tasks run anywhere at fixed priority; background
    aperiodics."""

    name = "global-fp"

    def job_key(self, job: Job, now: int) -> Tuple:
        if job.is_periodic:
            return (1, job.task.high_priority, -job.uid)
        return (0, -job.release, -job.uid)

    def eligible_cpu(self, job: Job) -> Optional[int]:
        return None


class GlobalEDFPolicy(BaselinePolicy):
    """Earliest absolute deadline first across all processors;
    background aperiodics."""

    name = "global-edf"

    def job_key(self, job: Job, now: int) -> Tuple:
        if job.is_periodic:
            return (1, -(job.release + job.task.deadline), -job.uid)
        return (0, -job.release, -job.uid)

    def eligible_cpu(self, job: Job) -> Optional[int]:
        return None


class MultiprocessorSimulator:
    """Event-exact preemptive N-processor simulator.

    Scheduling points: every release, arrival and completion (no tick
    quantisation -- baselines are given their best case).  An optional
    ``switch_penalty`` charges cycles whenever a job is (re)dispatched
    after not running, approximating context-switch costs.
    """

    def __init__(
        self,
        taskset: TaskSet,
        n_cpus: int,
        policy: BaselinePolicy,
        aperiodic_arrivals: Optional[Dict[str, Sequence[int]]] = None,
        switch_penalty: int = 0,
        trace: Optional[TraceRecorder] = None,
    ):
        if n_cpus < 1:
            raise ValueError("n_cpus must be >= 1")
        if switch_penalty < 0:
            raise ValueError("switch_penalty must be non-negative")
        self.taskset = taskset
        self.n_cpus = n_cpus
        self.policy = policy
        self.switch_penalty = switch_penalty
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)

        self.now = 0
        self.running: List[Optional[Job]] = [None] * n_cpus
        self.ready: List[Job] = []
        self.finished: List[Job] = []
        self.context_switches = 0

        self._pending_releases: List[Job] = [
            Job(task, task.offset, index=0) for task in taskset.periodic
        ]
        arrivals: List[Tuple[int, AperiodicTask]] = []
        merged: Dict[str, List[int]] = {
            task.name: list(task.arrivals) for task in taskset.aperiodic
        }
        for name, times in (aperiodic_arrivals or {}).items():
            task = taskset.by_name(name)
            if not isinstance(task, AperiodicTask):
                raise TypeError(f"{name} is not an aperiodic task")
            merged.setdefault(name, []).extend(times)
        for name, times in merged.items():
            task = taskset.by_name(name)
            for time in times:
                arrivals.append((time, task))
        arrivals.sort(key=lambda item: item[0])
        self._arrivals = arrivals
        self._aper_index: Dict[str, int] = {}

    # ----------------------------------------------------------------- stepping
    def _admit_due(self) -> bool:
        dirty = False
        still: List[Job] = []
        for job in self._pending_releases:
            if job.release <= self.now:
                self.ready.append(job)
                self.trace.record(self.now, "release", job=job.name)
                dirty = True
            else:
                still.append(job)
        self._pending_releases = still
        while self._arrivals and self._arrivals[0][0] <= self.now:
            _t, task = self._arrivals.pop(0)
            index = self._aper_index.get(task.name, 0)
            self._aper_index[task.name] = index + 1
            job = Job(task, release=self.now, index=index)
            self.ready.append(job)
            self.trace.record(self.now, "release", job=job.name, info="aperiodic")
            dirty = True
        return dirty

    def _complete_due(self) -> bool:
        dirty = False
        for cpu, job in enumerate(self.running):
            if job is not None and job.remaining == 0:
                self.running[cpu] = None
                job.record_finish(self.now)
                self.finished.append(job)
                self.trace.record(self.now, "finish", job=job.name, cpu=cpu)
                if job.is_periodic:
                    self._pending_releases.append(
                        Job(job.task, job.release + job.task.period, index=job.index + 1)
                    )
                dirty = True
        return dirty

    def _schedule(self) -> None:
        """Recompute the assignment greedily by policy key."""
        pool = list(self.ready)
        previous = list(self.running)
        for job in previous:
            if job is not None:
                pool.append(job)
        pool.sort(key=lambda job: self.policy.job_key(job, self.now), reverse=True)

        assignment: List[Optional[Job]] = [None] * self.n_cpus
        free = set(range(self.n_cpus))
        deferred: List[Tuple[Job, Optional[int]]] = []
        for job in pool:
            if not free:
                break
            pinned = self.policy.eligible_cpu(job)
            if pinned is not None:
                if pinned in free:
                    assignment[pinned] = job
                    free.remove(pinned)
                continue
            deferred.append((job, self._cpu_of(job, previous)))

        # Global jobs: prefer their previous cpu, then any free one.
        rest: List[Job] = []
        for job, prev_cpu in deferred:
            if prev_cpu is not None and prev_cpu in free:
                assignment[prev_cpu] = job
                free.remove(prev_cpu)
            else:
                rest.append(job)
        for job in rest:
            if not free:
                break
            assignment[free.pop()] = job

        # Apply the diff.
        placed = {id(j) for j in assignment if j is not None}
        for cpu, job in enumerate(previous):
            if job is not None and id(job) not in placed and job.remaining > 0:
                job.record_preemption()
                self.trace.record(self.now, "preempt", job=job.name, cpu=cpu)
                if job not in self.ready:
                    self.ready.append(job)
        for cpu, job in enumerate(assignment):
            if job is None:
                continue
            if job in self.ready:
                self.ready.remove(job)
            if previous[cpu] is not job:
                self.context_switches += 1
                if self.switch_penalty and job.remaining > 0:
                    job.remaining += self.switch_penalty
                job.record_dispatch(cpu, self.now)
                self.trace.record(self.now, "dispatch", job=job.name, cpu=cpu)
        self.running = assignment

    def _cpu_of(self, job: Job, previous: Sequence[Optional[Job]]) -> Optional[int]:
        for cpu, prev in enumerate(previous):
            if prev is job:
                return cpu
        return None

    # --------------------------------------------------------------------- run
    def run(self, until: int) -> List[Job]:
        """Simulate up to ``until``; returns finished jobs."""
        while self.now < until:
            dirty = self._admit_due()
            dirty |= self._complete_due()
            if dirty:
                self._schedule()

            candidates: List[int] = []
            candidates.extend(
                job.release for job in self._pending_releases if job.release > self.now
            )
            if self._arrivals:
                candidates.append(self._arrivals[0][0])
            for job in self.running:
                if job is not None:
                    candidates.append(self.now + job.remaining)
            if not candidates:
                break
            next_time = min(min(candidates), until)
            if next_time <= self.now:
                break
            delta = next_time - self.now
            for job in self.running:
                if job is not None:
                    job.remaining -= delta
            self.now = next_time
        return self.finished

    def deadline_misses(self) -> List[Job]:
        return [job for job in self.finished if job.missed_deadline]
