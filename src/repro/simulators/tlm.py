"""Transaction-level middle-fidelity simulator (the ladder's fast rung).

The reproduction has two fidelity endpoints: the cycle-approximate
prototype (every bus transaction arbitrated individually, ~seconds per
Figure-4 cell) and the theoretical simulator (all physical effects
collapsed into a flat 2 % inflation).  This module is the middle rung,
following the SystemC/TLM2 playbook (PAPERS.md, arXiv:1408.0982): the
*same* MPDP decision procedure and kernel-cost constants as the
prototype, but no per-cycle stepping -- each task segment between two
scheduling events is a single **timed block** whose real duration is

    real = kernel_debt + nominal * stretch

where ``stretch`` folds bus/crossbar contention into a calibrated
per-transaction cost (:func:`repro.hw.bus.analytic_txn_wait`) computed
from the execution profiles of the cores running *concurrently*, and
``kernel_debt`` charges the exact :class:`~repro.kernel.costs.KernelCosts`
cycles (IRQ entry/exit, scheduling cycle, queue traffic, context
moves, IPIs) the prototype kernel would spend at that event.  Ticks,
aperiodic arrivals, promotions and completions are still delivered at
exact instants through the existing :mod:`repro.sim.engine` bucketed
event queue, so schedules stay bit-for-bit deterministic.

Because nothing steps per cycle, the TLM rung is scale-free: it runs
full-size workloads (scale=1) in milliseconds, ~2 orders of magnitude
faster than the prototype at scale=1000, while tracking its per-task
worst-case response times within the calibrated tolerance recorded in
:data:`DEFAULT_COST_TABLE` (see ``repro-perf calibrate-tlm`` and the
"Fidelity ladder" section of docs/PERF.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import TICK
from repro.core.mpdp import MPDPScheduler
from repro.core.task import AperiodicTask, Job, TaskSet
from repro.hw.bus import analytic_txn_waits
from repro.hw.intc import MultiprocessorInterruptController
from repro.hw.memory import DDRMemory
from repro.kernel.context import BURST_WORDS
from repro.kernel.costs import KernelCosts
from repro.kernel.microkernel import TaskBinding
from repro.sim.engine import Simulator
from repro.trace.recorder import TraceRecorder

__all__ = [
    "TLMCostTable",
    "TLMSimulator",
    "DEFAULT_COST_TABLE",
    "ANCHOR_CELLS",
    "anchor_prototype_reference",
    "anchor_tlm_run",
    "per_task_wcrt",
    "calibrate",
]

#: One MPIC register access over the OPB (acknowledge or EOI read/write).
MPIC_ACCESS = MultiprocessorInterruptController.REGISTERS.access_latency(1)

#: The Figure-4 cells the cost table is calibrated against: one per
#: processor count, spanning the utilization range the paper sweeps.
ANCHOR_CELLS: Tuple[Tuple[int, float], ...] = ((2, 0.40), (3, 0.50), (4, 0.60))


def _ddr_burst_latency(words: int) -> int:
    """Uncontended DDR cycles to move ``words`` in BURST_WORDS bursts."""
    if words <= 0:
        return 0
    full, rem = divmod(words, BURST_WORDS)
    latency = full * DDRMemory.FIRST_WORD + full * DDRMemory.PER_WORD * (
        BURST_WORDS - 1
    )
    if rem:
        latency += DDRMemory.FIRST_WORD + DDRMemory.PER_WORD * (rem - 1)
    return latency


@dataclass(frozen=True)
class TLMCostTable:
    """Calibrated per-transaction contention costs.

    ``wait_gain`` scales the analytic arbitration wait each shared
    transaction pays when other cores are executing concurrently
    (:func:`repro.hw.bus.analytic_txn_wait`); ``priority_skew`` tilts
    that wait across the active masters to model the arbiter's fixed
    cpu-id priority order; ``base_overhead`` is the residual uniform
    inflation covering effects the transaction model does not carry
    individually (cold i-cache refills, MPIC rerouting, kernel-path
    bus contention).  ``residual`` records the maximum relative
    per-task WCRT deviation against the prototype over
    :data:`ANCHOR_CELLS` at these parameters -- the accuracy bound the
    tests and the bench gate hold the rung to.
    """

    wait_gain: float = 1.0
    base_overhead: float = 0.0
    priority_skew: float = 0.0
    residual: float = 1.0

    def __post_init__(self):
        if self.wait_gain < 0:
            raise ValueError("wait_gain must be non-negative")
        if self.base_overhead < 0:
            raise ValueError("base_overhead must be non-negative")
        if not 0.0 <= self.priority_skew <= 1.0:
            raise ValueError("priority_skew must be in [0, 1]")
        if self.residual < 0:
            raise ValueError("residual must be non-negative")

    def to_dict(self) -> Dict[str, float]:
        return {
            "wait_gain": self.wait_gain,
            "base_overhead": self.base_overhead,
            "priority_skew": self.priority_skew,
            "residual": self.residual,
        }


#: Parameters fitted by ``repro-perf calibrate-tlm`` against prototype
#: runs of the :data:`ANCHOR_CELLS` (scale=1000, arrival phase 1.0 s).
#: Regenerate with the CLI after changing the hardware or kernel-cost
#: models; ``residual`` is the measured accuracy bound at this fit.
DEFAULT_COST_TABLE = TLMCostTable(
    wait_gain=0.8, base_overhead=0.02, priority_skew=0.75, residual=0.4212
)


class TLMSimulator:
    """Event-driven MPDP run with per-transaction-window contention.

    Drop-in peer of :class:`~repro.simulators.theoretical.TheoreticalSimulator`
    and :class:`~repro.simulators.prototype.PrototypeSimulator`: same
    constructor shape, same trace vocabulary, same ``finished_jobs`` /
    ``stats()`` queries.  Runs the workload at full scale (``scale`` is
    structurally 1 -- there is no per-cycle work to amortise).

    Parameters
    ----------
    taskset:
        Analysed task set (promotions + partition assigned).
    n_cpus:
        Number of processors.
    tick:
        Scheduling period in cycles.
    bindings:
        Per-task :class:`~repro.kernel.microkernel.TaskBinding`
        (execution profile for the contention model, stack size for
        context-move costs); unbound tasks get the defaults.
    aperiodic_arrivals:
        Mapping task name -> absolute arrival cycles, merged with the
        arrivals on the task objects (exactly as the peers do).
    costs:
        Kernel-path cycle constants (shared with the prototype).
    table:
        Calibrated contention parameters.
    """

    def __init__(
        self,
        taskset: TaskSet,
        n_cpus: int,
        tick: int = TICK,
        bindings: Optional[Dict[str, TaskBinding]] = None,
        aperiodic_arrivals: Optional[Dict[str, Sequence[int]]] = None,
        trace: Optional[TraceRecorder] = None,
        metrics=None,
        costs: Optional[KernelCosts] = None,
        table: TLMCostTable = DEFAULT_COST_TABLE,
    ):
        if tick <= 0:
            raise ValueError("tick must be positive")
        self.taskset = taskset
        self.n_cpus = n_cpus
        self.tick = tick
        self.costs = costs or KernelCosts()
        self.table = table
        self.policy = MPDPScheduler(taskset, n_cpus, promotion_granularity="tick")
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.sim = Simulator()
        #: Structural scale (kept for interface parity with the
        #: prototype; the TLM rung always runs full-size workloads).
        self.scale = 1

        self.bindings = dict(bindings or {})
        self._default_binding = TaskBinding()
        self._queue_traffic_memo: Dict[int, int] = {}
        #: IRQ entry/exit plus the two MPIC register accesses every
        #: interrupt pays (acknowledge + EOI) -- identical for timer,
        #: CAN and inter-processor interrupts.
        self._irq_cycles = (
            self.costs.irq_entry + self.costs.irq_exit + 2 * MPIC_ACCESS
        )

        # Per-task cached transaction characterisation.
        self._txn_latency: Dict[str, int] = {}
        self._txn_period: Dict[str, int] = {}
        self._bus_share: Dict[str, float] = {}
        #: name -> (bus share, float latency, txn period): the bus
        #: profile :meth:`_recompute_stretches` keys its memo on.
        #: Distinct tasks with the same execution profile produce the
        #: same stretches, so keying on the profile (not the name)
        #: collapses equivalent running sets into one memo entry.
        self._profile: Dict[str, Tuple[float, float, int]] = {}
        self._ctx_cycles: Dict[str, int] = {}
        for task in taskset:
            binding = self._binding_of_name(task.name)
            profile = binding.profile
            latency = DDRMemory.FIRST_WORD + DDRMemory.PER_WORD * (
                profile.access_words - 1
            )
            self._txn_latency[task.name] = latency
            self._txn_period[task.name] = profile.access_period
            self._bus_share[task.name] = latency / profile.access_period
            self._profile[task.name] = (
                self._bus_share[task.name], float(latency),
                profile.access_period,
            )
            # One context save/restore half for this task (fixed words).
            self._ctx_cycles[task.name] = self.costs.context_primitive + (
                _ddr_burst_latency(self.costs.regfile_words + binding.stack_words)
            )

        # Per-cpu block state.
        self._rem: Dict[int, float] = {}            # job uid -> nominal left
        self._debt: List[int] = [0] * n_cpus        # kernel cycles to pay
        self._block_start: List[int] = [0] * n_cpus
        self._stretch: List[float] = [1.0] * n_cpus
        # Completion arming.  ``_armed[cpu]`` is the (job uid, true
        # finish instant) pair; ``_sched[cpu]`` the earliest engine
        # event outstanding for the cpu (superseded events cancel
        # lazily by instant mismatch); ``_basis[cpu]`` the (uid,
        # stretch) the armed instant was computed from and
        # ``_debt_dirty[cpu]`` whether kernel debt was added since --
        # together they tell when the armed instant is still valid, so
        # unchanged processors are not re-armed at every event.
        self._armed: List[Optional[Tuple[int, int]]] = [None] * n_cpus
        self._sched: List[Optional[int]] = [None] * n_cpus
        self._basis: List[Optional[Tuple[int, float]]] = [None] * n_cpus
        self._debt_dirty: List[bool] = [False] * n_cpus
        self._complete_cbs = [
            partial(self._on_complete, cpu) for cpu in range(n_cpus)
        ]
        self._stretch_memo: Dict[Tuple, Tuple[float, ...]] = {}
        #: Key the factors in ``_stretch`` were computed from; lets a
        #: recompute with unchanged per-cpu profiles return immediately.
        self._stretch_key: Tuple = ()
        # Mirror of the running tasks' names, maintained incrementally
        # wherever ``policy.running`` changes, so the memo key is a
        # plain tuple() away instead of an attribute walk per cpu.
        self._running_names: List[Optional[str]] = [None] * n_cpus
        self._aper_index: Dict[str, int] = {}

        # Statistics.
        self.context_switches = 0
        self.scheduling_cycles = 0
        self.aperiodic_releases = 0
        self.ipis = 0
        self.transactions_modeled = 0.0
        self.contention_wait_cycles = 0.0

        # Observability (mirrors the kernel: handles resolved once).
        self.metrics = metrics
        self._m_txn = None
        if metrics is not None:
            self._m_txn = metrics.counter(
                "tlm_transactions_total",
                help="shared-memory transactions folded into TLM timed blocks",
            )
            metrics.gauge(
                "tlm_calibration_residual",
                help="max relative WCRT deviation of the calibrated cost "
                "table vs the prototype on the anchor cells",
            ).set(table.residual)

        # Aperiodic arrivals at exact instants through the event queue.
        merged: Dict[str, List[int]] = {
            task.name: list(task.arrivals) for task in taskset.aperiodic
        }
        for name, times in (aperiodic_arrivals or {}).items():
            task = taskset.by_name(name)
            if not isinstance(task, AperiodicTask):
                raise TypeError(f"{name} is not an aperiodic task")
            merged.setdefault(name, []).extend(times)
        for name in sorted(merged):
            task = taskset.by_name(name)
            for time in sorted(merged[name]):
                self.sim.schedule_at(time, lambda t=task: self._on_arrival(t))

        self._started = False

    # ------------------------------------------------------------------ control
    def run(self, until: int) -> List[Job]:
        """Simulate to ``until`` cycles; returns the finished jobs."""
        if not self._started:
            self._started = True
            self.sim.schedule_at(self.sim.now, self._on_tick)
        self.sim.run(until=until)
        return self.policy.finished_jobs

    @property
    def finished_jobs(self) -> List[Job]:
        return self.policy.finished_jobs

    def to_full_scale(self, cycles: int) -> int:
        """Interface parity with the prototype (TLM is already full-scale)."""
        return cycles

    def stats(self) -> dict:
        return {
            "context_switches": self.context_switches,
            "scheduling_cycles": self.scheduling_cycles,
            "aperiodic_releases": self.aperiodic_releases,
            "promotions": self.policy.promotion_count,
            "ipis": self.ipis,
            "tlm_transactions": round(self.transactions_modeled),
            "tlm_contention_wait_cycles": round(self.contention_wait_cycles),
        }

    # ---------------------------------------------------------------- utilities
    def _binding_of_name(self, name: str) -> TaskBinding:
        return self.bindings.get(name, self._default_binding)

    def _queue_traffic_cycles(self, jobs_moved: int) -> int:
        """Uncontended task-table traffic for a queue manipulation."""
        cycles = self._queue_traffic_memo.get(jobs_moved)
        if cycles is None:
            cycles = _ddr_burst_latency(self.costs.queue_op_words * max(1, jobs_moved))
            self._queue_traffic_memo[jobs_moved] = cycles
        return cycles

    def _switch_cycles(self, old: Optional[Job], new: Optional[Job]) -> int:
        """Context save/restore cycles for one processor's switch."""
        cycles = 0
        if old is not None and old.remaining > 0:
            cycles += self._ctx_cycles[old.task.name]
        if new is not None:
            cycles += self._ctx_cycles[new.task.name]
        return cycles

    # ------------------------------------------------------------ block algebra
    def _recompute_stretches(self) -> None:
        """Per-cpu slowdown factors for the current running set.

        Memoized on the tuple of per-cpu bus profiles (share, latency,
        period): the factors depend only on what traffic shares the
        bus, not on task identity, so running sets that differ only in
        which same-profile task occupies a cpu hit the same entry.
        """
        profiles = self._profile
        key = tuple(
            profiles[name] if name is not None else None
            for name in self._running_names
        )
        if key == self._stretch_key:
            return  # same bus profiles on every cpu: factors are current
        memo = self._stretch_memo.get(key)
        if memo is None:
            shares = [p[0] if p is not None else 0.0 for p in key]
            latencies = [p[1] if p is not None else 0.0 for p in key]
            base = self.table.base_overhead
            waits = analytic_txn_waits(
                shares,
                latencies,
                gain=self.table.wait_gain,
                skew=self.table.priority_skew,
            )
            memo = tuple(
                1.0 + base + waits[cpu] / p[2] if p is not None else 1.0
                for cpu, p in enumerate(key)
            )
            self._stretch_memo[key] = memo
        self._stretch_key = key
        self._stretch[:] = memo

    def _retime(self, now: int) -> None:
        """Close every open timed block at ``now``: pay kernel debt,
        convert the remaining elapsed real time into nominal progress at
        the block's stretch factor, and account the transactions the
        block folded in."""
        rems = self._rem
        debts = self._debt
        starts = self._block_start
        stretches = self._stretch
        periods = self._txn_period
        m_txn = self._m_txn
        trace = self.trace if self.trace.enabled else None
        for cpu, job in enumerate(self.policy.running):
            start = starts[cpu]
            elapsed = now - start
            starts[cpu] = now
            if job is None or elapsed <= 0:
                continue
            debt_paid = debts[cpu]
            if debt_paid:
                if debt_paid > elapsed:
                    debt_paid = elapsed
                debts[cpu] -= debt_paid
                elapsed -= debt_paid
            if elapsed <= 0:
                continue
            stretch = stretches[cpu]
            progress = elapsed / stretch
            rem = rems[job.uid] - progress
            if rem < 0.0:
                rem = 0.0
            rems[job.uid] = rem
            # Mirror the integer view the policy reads.  Floor at 1 even
            # when the float remainder hit zero: only :meth:`_on_complete`
            # retires a job (``remaining > 0`` keeps it live in the
            # queues if a coinciding event preempts it first).
            nominal_left = int(rem)
            job.remaining = nominal_left if nominal_left > 0 else 1
            txns = progress / periods[job.task.name]
            self.transactions_modeled += txns
            self.contention_wait_cycles += elapsed - progress
            if m_txn is not None:
                m_txn.inc(txns)
            if trace is not None:
                trace.record(
                    now, "tlm_block", job=job.name, cpu=cpu,
                    info=f"start={start + debt_paid} nominal={progress:.0f} "
                    f"stretch={stretch:.4f}",
                )

    def _reschedule_completions(self, now: int) -> None:
        """Open a fresh timed block per running job and arm its finish.

        A cpu is re-armed only when its arming basis changed: a new
        job, a new stretch factor, or kernel debt added since the last
        arming.  (Pure elapsed time does not invalidate an armed
        instant -- :meth:`_retime` keeps ``_rem`` consistent with it.)
        An engine event is scheduled only when the finish moved
        *earlier* than the earliest outstanding event; finishes that
        moved later are reached lazily -- the pending event fires at
        the stale instant, sees the armed instant lies ahead and
        re-schedules itself there, so a run of stretch increases
        coalesces into one extra event instead of one per change.
        """
        ceil = math.ceil
        armed_list = self._armed
        basis_list = self._basis
        dirty_list = self._debt_dirty
        sched_list = self._sched
        stretches = self._stretch
        debts = self._debt
        rems = self._rem
        starts = self._block_start
        for cpu, job in enumerate(self.policy.running):
            starts[cpu] = now
            if job is None:
                armed_list[cpu] = None
                basis_list[cpu] = None
                continue
            stretch = stretches[cpu]
            basis = (job.uid, stretch)
            if basis_list[cpu] == basis and not dirty_list[cpu]:
                continue
            basis_list[cpu] = basis
            dirty_list[cpu] = False
            length = debts[cpu] + ceil(rems[job.uid] * stretch)
            finish = now + (length if length > 1 else 1)
            armed_list[cpu] = (job.uid, finish)
            sched = sched_list[cpu]
            if sched is None or sched > finish:
                sched_list[cpu] = finish
                self.sim.schedule_at(finish, self._complete_cbs[cpu])

    # -------------------------------------------------------------- event logic
    def _allocate(self, now: int, event_cpu: int) -> None:
        previous = list(self.policy.running)
        allocation = self.policy.allocate(now)
        self.context_switches += len(allocation.switches)
        trace_on = self.trace.enabled
        for cpu in allocation.switches:
            job = allocation.assignment[cpu]
            old = previous[cpu]
            if trace_on and old is not None and old.remaining > 0 and old is not job:
                self.trace.record(now, "preempt", job=old.name, cpu=cpu)
            if job is not None:
                if job.uid not in self._rem:
                    self._rem[job.uid] = float(job.remaining)
                if trace_on:
                    self.trace.record(now, "dispatch", job=job.name, cpu=cpu)
            elif trace_on:
                self.trace.record(now, "idle", cpu=cpu)
            self._debt[cpu] += self._switch_cycles(old, job)
            self._debt_dirty[cpu] = True
            if cpu != event_cpu:
                # The processor learns of its new assignment via an IPI.
                self._debt[event_cpu] += self.costs.ipi_raise + MPIC_ACCESS
                self._debt_dirty[event_cpu] = True
                self._debt[cpu] += self._irq_cycles
                self.ipis += 1
        self._running_names[:] = [
            job.task.name if job is not None else None
            for job in self.policy.running
        ]
        self._recompute_stretches()
        self._reschedule_completions(now)

    def _on_tick(self) -> None:
        now = self.sim.now
        self._retime(now)
        released = self.policy.release_due(now)
        promoted = self.policy.promote_due(now)
        for job in released:
            self._rem[job.uid] = float(job.remaining)
        if self.trace.enabled:
            for job in released:
                self.trace.record(now, "release", job=job.name)
            for job in promoted:
                self.trace.record(now, "promote", job=job.name)
        moved = len(released) + len(promoted)
        # The MPIC's fixed-priority scheme sends the timer interrupt to
        # the lowest-id processor; that cpu pays the kernel cycles.
        sched_cpu = 0
        self._debt[sched_cpu] += (
            self._irq_cycles
            + self.costs.scheduler_cycle(moved)
            + self._queue_traffic_cycles(moved)
        )
        self._debt_dirty[sched_cpu] = True
        self.scheduling_cycles += 1
        if self.trace.enabled:
            self.trace.record(now, "tick", cpu=sched_cpu)
        if moved:
            self._allocate(now, sched_cpu)
        else:
            # Nothing entered or left the bands, so the MPDP assignment
            # is already at its fixpoint: skip the (pure) re-allocation.
            # The scheduler cpu's kernel debt did grow, which shifts its
            # completion instant -- re-arm from the unchanged stretches.
            self._reschedule_completions(now)
        self.sim.schedule_at(now + self.tick, self._on_tick)

    def _on_arrival(self, task: AperiodicTask) -> None:
        now = self.sim.now
        self._retime(now)
        index = self._aper_index.get(task.name, 0)
        self._aper_index[task.name] = index + 1
        job = Job(task, release=now, index=index)
        self._rem[job.uid] = float(job.remaining)
        self.policy.add_aperiodic(job)
        self.aperiodic_releases += 1
        handler_cpu = 0
        self._debt[handler_cpu] += (
            self._irq_cycles
            + self.costs.aperiodic_release
            + self._queue_traffic_cycles(1)
        )
        self._debt_dirty[handler_cpu] = True
        self.trace.record(now, "release", job=job.name, info="aperiodic")
        self._allocate(now, handler_cpu)

    def _on_complete(self, cpu: int) -> None:
        now = self.sim.now
        if self._sched[cpu] != now:
            return  # superseded by an earlier event on this cpu
        self._sched[cpu] = None
        armed = self._armed[cpu]
        if armed is None:
            return  # the cpu went idle since this event was scheduled
        job = self.policy.running[cpu]
        if job is None or job.uid != armed[0]:
            return
        if armed[1] > now:
            # The true finish moved later since this event was armed
            # (lazy re-arm, see _reschedule_completions).
            self._sched[cpu] = armed[1]
            self.sim.schedule_at(armed[1], self._complete_cbs[cpu])
            return
        self._retime(now)
        job.remaining = 0
        self._rem.pop(job.uid, None)
        self.policy.job_finished(job, now)
        if self.trace.enabled:
            self.trace.record(now, "finish", job=job.name, cpu=cpu)
        # Completion handling (dequeue, re-arm, self-service) delays
        # whatever runs next on this processor.
        self._debt[cpu] += self.costs.completion + self._queue_traffic_cycles(1)
        self._debt_dirty[cpu] = True
        # A completion frees exactly one processor, so the incremental
        # refill is the same fixpoint a full allocation would reach
        # (see MPDPScheduler.refill); no IPI -- the event is local.
        new = self.policy.refill(cpu, now)
        if new is not None:
            if new.uid not in self._rem:
                self._rem[new.uid] = float(new.remaining)
            if self.trace.enabled:
                self.trace.record(now, "dispatch", job=new.name, cpu=cpu)
            self.context_switches += 1
            self._debt[cpu] += self._switch_cycles(None, new)
            self._running_names[cpu] = new.task.name
        else:
            self._running_names[cpu] = None
        self._recompute_stretches()
        self._reschedule_completions(now)


# ------------------------------------------------------------------ calibration
def per_task_wcrt(jobs: Sequence[Job]) -> Dict[str, int]:
    """Worst observed response time per task, from finished jobs."""
    wcrt: Dict[str, int] = {}
    for job in jobs:
        if job.finish_time is None:
            continue
        response = job.finish_time - job.release
        name = job.task.name
        if response > wcrt.get(name, -1):
            wcrt[name] = response
    return wcrt


def _anchor_setup(n_cpus: int, utilization: float):
    from repro import CLOCK_HZ
    from repro.workloads.automotive import (
        AUTOMOTIVE_APERIODIC,
        automotive_bindings,
        build_automotive_taskset,
        prepare_taskset,
    )

    taskset = prepare_taskset(
        build_automotive_taskset(utilization, n_cpus), n_cpus, tick=TICK
    )
    arrival = int(1.0 * CLOCK_HZ)
    horizon = arrival + int(17.0 * CLOCK_HZ)
    return (
        taskset,
        automotive_bindings(),
        {AUTOMOTIVE_APERIODIC: [arrival]},
        horizon,
    )


def anchor_prototype_reference(
    n_cpus: int, utilization: float, scale: int = 1_000, prepared=None
) -> Dict[str, Any]:
    """One prototype run of an anchor cell -> per-task WCRTs + verdict.

    WCRTs are reported in full-scale cycles so they compare directly
    with the (scale-free) TLM rung.  ``prepared`` accepts the result
    of a prior :func:`_anchor_setup` call so timing harnesses can
    exclude the (rung-independent) workload preparation; it must be
    freshly built -- task sets carry run state and are not reusable.
    """
    from repro.simulators.prototype import PrototypeConfig, PrototypeSimulator
    from repro.trace.metrics import compute_metrics

    taskset, bindings, arrivals, horizon = (
        prepared if prepared is not None else _anchor_setup(n_cpus, utilization)
    )
    proto = PrototypeSimulator(
        taskset,
        PrototypeConfig(n_cpus=n_cpus, tick=TICK, scale=scale),
        bindings=bindings,
        aperiodic_arrivals=arrivals,
    )
    proto.run(horizon)
    metrics = compute_metrics(proto.finished_jobs, horizon // scale)
    return {
        "wcrt": {
            name: proto.to_full_scale(value)
            for name, value in per_task_wcrt(proto.finished_jobs).items()
        },
        "misses": metrics.deadline_misses,
        "finished": len(proto.finished_jobs),
    }


def anchor_tlm_run(
    n_cpus: int,
    utilization: float,
    table: TLMCostTable = DEFAULT_COST_TABLE,
    trace: Optional[TraceRecorder] = None,
    metrics=None,
    prepared=None,
) -> Dict[str, Any]:
    """One TLM run of an anchor cell -> per-task WCRTs + verdict.

    ``prepared`` mirrors :func:`anchor_prototype_reference`: a fresh
    :func:`_anchor_setup` result, letting timing harnesses exclude the
    rung-independent workload preparation.
    """
    from repro.trace.metrics import compute_metrics

    taskset, bindings, arrivals, horizon = (
        prepared if prepared is not None else _anchor_setup(n_cpus, utilization)
    )
    sim = TLMSimulator(
        taskset,
        n_cpus,
        tick=TICK,
        bindings=bindings,
        aperiodic_arrivals=arrivals,
        table=table,
        trace=trace,
        metrics=metrics,
    )
    sim.run(horizon)
    schedule_metrics = compute_metrics(sim.finished_jobs, horizon)
    return {
        "wcrt": per_task_wcrt(sim.finished_jobs),
        "misses": schedule_metrics.deadline_misses,
        "finished": len(sim.finished_jobs),
    }


def _wcrt_deviation(
    reference: Dict[str, int], candidate: Dict[str, int]
) -> List[float]:
    """Relative per-task WCRT deviations over the shared task names."""
    deviations = []
    for name in sorted(reference):
        if name not in candidate or reference[name] <= 0:
            continue
        deviations.append(abs(candidate[name] - reference[name]) / reference[name])
    return deviations


#: Search grids of ``repro-perf calibrate-tlm``.  Bracketing by design:
#: gain 0 disables contention entirely; 1.6 nearly doubles the measured
#: collision costs; skew 0 is a symmetric arbiter, 0.75 close to the
#: strongest tilt the prototype exhibits.
CALIBRATION_GAINS = tuple(x / 10 for x in range(0, 17))
CALIBRATION_BASES = (0.0, 0.005, 0.01, 0.02)
CALIBRATION_SKEWS = (0.0, 0.25, 0.5, 0.75)


def calibrate(
    anchors: Sequence[Tuple[int, float]] = ANCHOR_CELLS,
    scale: int = 1_000,
    gains: Sequence[float] = CALIBRATION_GAINS,
    bases: Sequence[float] = CALIBRATION_BASES,
    skews: Sequence[float] = CALIBRATION_SKEWS,
    references: Optional[Dict[Tuple[int, float], Dict[str, Any]]] = None,
) -> TLMCostTable:
    """Fit the per-transaction cost table against prototype anchors.

    Runs the prototype once per anchor cell (the expensive part), then
    grid-searches ``(wait_gain, base_overhead, priority_skew)``
    minimising the mean squared relative per-task WCRT error of the TLM
    rung over parameter points whose schedulability verdicts match the
    prototype on every anchor, and returns the fitted table with
    ``residual`` set to the *maximum* relative deviation observed at
    the chosen point.  Pass ``references`` to reuse prototype runs
    (the CLI caches them across invocations).
    """
    if references is None:
        references = {
            cell: anchor_prototype_reference(*cell, scale=scale)
            for cell in anchors
        }

    best: Optional[Tuple[float, TLMCostTable, float]] = None  # err, table, worst
    for gain in gains:
        for base in bases:
            for skew in skews:
                table = TLMCostTable(
                    wait_gain=gain, base_overhead=base, priority_skew=skew
                )
                deviations: List[float] = []
                verdicts_ok = True
                for cell in anchors:
                    result = anchor_tlm_run(*cell, table=table)
                    reference = references[cell]
                    deviations.extend(
                        _wcrt_deviation(reference["wcrt"], result["wcrt"])
                    )
                    if (result["misses"] == 0) != (reference["misses"] == 0):
                        verdicts_ok = False
                if not deviations or not verdicts_ok:
                    continue
                err = sum(d * d for d in deviations) / len(deviations)
                worst = max(deviations)
                if best is None or err < best[0]:
                    best = (err, table, worst)
    if best is None:
        raise RuntimeError("calibration found no parameter point matching "
                           "the prototype verdicts")
    _, table, worst = best
    return TLMCostTable(
        wait_gain=table.wait_gain,
        base_overhead=table.base_overhead,
        priority_skew=table.priority_skew,
        residual=round(worst + 1e-4, 4),  # round up: the bound must hold
    )
