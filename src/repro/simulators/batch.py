"""Replication framework: confidence intervals for response times.

The paper reports *average* response times.  One run is one sample;
this module runs a family of independent replications (different
aperiodic arrival phases and/or workload seeds), aggregates the
response-time samples and reports mean, spread and a t-distribution
confidence interval -- the statistics a careful reader would want next
to Figure 4's bars.
"""

from __future__ import annotations

import functools
import math
import statistics
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.perf.cache import RunCache, cache_key
from repro.perf.executor import pmap

#: Two-sided 95 % t critical values for small sample sizes (df 1..30).
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def t_critical_95(df: int) -> float:
    """Two-sided 95 % Student-t critical value (normal beyond df 30)."""
    if df < 1:
        raise ValueError("df must be >= 1")
    if df <= len(_T95):
        return _T95[df - 1]
    return 1.96


@dataclass
class ReplicationSummary:
    """Aggregate over independent replications of one measurement."""

    label: str
    samples: List[float] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError(f"{self.label}: no samples")
        return statistics.fmean(self.samples)

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.samples) if self.n > 1 else 0.0

    @property
    def half_width_95(self) -> float:
        """Half width of the 95 % confidence interval of the mean."""
        if self.n < 2:
            return float("inf") if self.n < 1 else 0.0
        return t_critical_95(self.n - 1) * self.stdev / math.sqrt(self.n)

    @property
    def interval_95(self) -> tuple:
        half = self.half_width_95
        return (self.mean - half, self.mean + half)

    def format(self, unit: str = "") -> str:
        if self.n == 0:
            return f"{self.label}: (no samples)"
        lo, hi = self.interval_95
        return (
            f"{self.label}: mean {self.mean:.4g}{unit} "
            f"(n={self.n}, sd {self.stdev:.3g}, 95% CI [{lo:.4g}, {hi:.4g}])"
        )


def _sample(measure: Callable[[int], float], seed: int) -> float:
    """One replication, coerced to float on the worker side."""
    return float(measure(seed))


def replicate(
    label: str,
    measure: Callable[[int], float],
    replications: int,
    seeds: Optional[Sequence[int]] = None,
    max_workers: int = 1,
    cache: Optional[RunCache] = None,
    cache_tag: Optional[str] = None,
) -> ReplicationSummary:
    """Run ``measure(seed)`` for each replication and aggregate.

    ``seeds`` defaults to 0..replications-1; determinism is preserved
    because the seed is the only varying input.  Replications are
    independent, so ``max_workers > 1`` fans them out over worker
    processes (picklable measures only; closures run serially) with
    samples reassembled in seed order -- identical to a serial run.
    With a ``cache``, samples are keyed by (tag, seed, package
    version); ``cache_tag`` defaults to the label.
    """
    if replications < 1:
        raise ValueError("replications must be >= 1")
    if seeds is None:
        seeds = list(range(replications))
    else:
        seeds = list(seeds)
        if len(seeds) != replications:
            raise ValueError("seeds length must equal replications")
    summary = ReplicationSummary(label=label)
    samples: List[Optional[float]] = [None] * len(seeds)
    pending = list(range(len(seeds)))
    keys: List[Optional[str]] = [None] * len(seeds)
    if cache is not None:
        pending = []
        for index, seed in enumerate(seeds):
            keys[index] = cache_key(
                kind="replicate", tag=cache_tag or label, seed=seed
            )
            hit, value = cache.lookup(keys[index])
            if hit:
                samples[index] = value
            else:
                pending.append(index)
    computed = pmap(
        functools.partial(_sample, measure),
        [seeds[i] for i in pending],
        max_workers=max_workers,
    )
    for index, value in zip(pending, computed):
        samples[index] = value
        if cache is not None:
            cache.put(keys[index], value)
    summary.samples.extend(samples)
    return summary


def compare(
    a: ReplicationSummary, b: ReplicationSummary
) -> dict:
    """Welch-style comparison of two summaries.

    Returns the difference of means, its approximate 95 % half-width
    and whether the intervals allow calling a winner.
    """
    if a.n < 2 or b.n < 2:
        raise ValueError("need at least 2 samples per side")
    diff = a.mean - b.mean
    se = math.sqrt(a.stdev ** 2 / a.n + b.stdev ** 2 / b.n)
    # Welch-Satterthwaite df, floored at 1.
    if se == 0:
        return {"difference": diff, "half_width": 0.0, "significant": diff != 0}
    num = (a.stdev ** 2 / a.n + b.stdev ** 2 / b.n) ** 2
    den = (
        (a.stdev ** 2 / a.n) ** 2 / max(1, a.n - 1)
        + (b.stdev ** 2 / b.n) ** 2 / max(1, b.n - 1)
    )
    df = max(1, int(num / den)) if den > 0 else 1
    half = t_critical_95(df) * se
    return {
        "difference": diff,
        "half_width": half,
        "significant": abs(diff) > half,
    }
