"""The prototype simulator: microkernel + SoC in one callable package.

Builds the full hardware model (arbitrated OPB, per-core caches and
local memories, MPIC, timer, CAN peripherals), binds the analysed task
set with per-task execution profiles, runs the dual-priority
microkernel, and reports the same metrics as the theoretical
simulator so Figure 4 can put them side by side.

A ``scale`` knob divides all workload times (WCETs, periods,
deadlines, tick, horizon) by a power of two before simulation.  Every
quantity the paper reports is a *ratio* (slowdowns, response time vs
execution time), and those ratios are preserved because the bus
traffic per nominal cycle -- the contention driver -- is
scale-invariant; this keeps full Figure 4 sweeps tractable in pure
Python.  ``scale=1`` runs the full-size system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import TICK
from repro.core.task import AperiodicTask, PeriodicTask, TaskSet
from repro.hw.microblaze import ExecutionProfile
from repro.hw.soc import SoC, SoCConfig
from repro.kernel.costs import KernelCosts
from repro.kernel.microkernel import DualPriorityMicrokernel, TaskBinding
from repro.trace.recorder import TraceRecorder


#: Execution-chunk stride used when ``PrototypeConfig.chunk_cycles`` is
#: left unset; scaled runs additionally clamp it to a tenth of the
#: scaled tick so a slice never spans a whole scheduling period.
DEFAULT_CHUNK_CYCLES = 2_000

#: The simulation ladder, slowest/most faithful last.  ``theoretical``
#: is the paper's idealised baseline (flat 2 % overhead), ``tlm`` the
#: calibrated transaction-level rung (:mod:`repro.simulators.tlm`) and
#: ``prototype`` the cycle-approximate kernel-on-SoC run.  Defined here
#: (rather than in the package ``__init__``) so the config dataclass
#: can validate without an import cycle.
FIDELITIES = ("theoretical", "tlm", "prototype")


@dataclass(frozen=True)
class PrototypeConfig:
    """Run parameters for the prototype simulator.

    ``chunk_cycles=None`` (the default) picks
    :data:`DEFAULT_CHUNK_CYCLES` clamped against the scaled tick; an
    explicit value is used verbatim -- a user override always wins.

    ``fidelity`` names the simulation rung the config is meant for;
    :func:`repro.simulators.make_simulator` dispatches on it and
    experiment cache keys include it, so a TLM run can never alias a
    prototype result.  The prototype simulator itself only accepts
    ``fidelity="prototype"`` configs.
    """

    n_cpus: int = 2
    tick: int = TICK
    scale: int = 1
    chunk_cycles: Optional[int] = None
    costs: KernelCosts = field(default_factory=KernelCosts)
    fidelity: str = "prototype"

    def __post_init__(self):
        if self.scale < 1:
            raise ValueError("scale must be >= 1")
        if self.tick % self.scale:
            raise ValueError("tick must be divisible by scale")
        if self.chunk_cycles is not None and self.chunk_cycles <= 0:
            raise ValueError("chunk_cycles must be positive")
        if self.fidelity not in FIDELITIES:
            raise ValueError(
                f"fidelity must be one of {FIDELITIES}, got {self.fidelity!r}"
            )


def scale_taskset(taskset: TaskSet, scale: int) -> TaskSet:
    """Divide every time quantity of the set by ``scale`` (exact)."""
    if scale == 1:
        return taskset

    def div(value: int, what: str) -> int:
        scaled = value // scale
        if scaled <= 0:
            raise ValueError(f"{what}={value} too small for scale {scale}")
        return scaled

    periodic = [
        PeriodicTask(
            name=t.name,
            wcet=div(t.wcet, f"{t.name}.wcet"),
            period=div(t.period, f"{t.name}.period"),
            deadline=div(t.deadline, f"{t.name}.deadline"),
            low_priority=t.low_priority,
            high_priority=t.high_priority,
            cpu=t.cpu,
            promotion=(t.promotion // scale) if t.promotion is not None else None,
            offset=t.offset // scale,
            acet=div(t.acet, f"{t.name}.acet"),
        )
        for t in taskset.periodic
    ]
    aperiodic = [
        AperiodicTask(
            name=t.name,
            wcet=div(t.wcet, f"{t.name}.wcet"),
            arrivals=tuple(a // scale for a in t.arrivals),
            soft_deadline=(t.soft_deadline // scale) if t.soft_deadline else None,
            acet=div(t.acet, f"{t.name}.acet"),
        )
        for t in taskset.aperiodic
    ]
    return TaskSet(periodic, aperiodic)


class PrototypeSimulator:
    """Full-system run of the dual-priority multiprocessor."""

    def __init__(
        self,
        taskset: TaskSet,
        config: PrototypeConfig,
        bindings: Optional[Dict[str, TaskBinding]] = None,
        aperiodic_arrivals: Optional[Dict[str, Sequence[int]]] = None,
        trace: Optional[TraceRecorder] = None,
        metrics=None,
        recovery=None,
    ):
        if config.fidelity != "prototype":
            raise ValueError(
                f"PrototypeSimulator requires fidelity='prototype' "
                f"(got {config.fidelity!r}); use "
                f"repro.simulators.make_simulator to dispatch on fidelity"
            )
        self.config = config
        self.scale = config.scale
        self.taskset = scale_taskset(taskset, config.scale)

        scaled_tick = config.tick // config.scale
        if config.chunk_cycles is not None:
            chunk_cycles = config.chunk_cycles  # explicit override wins
        else:
            chunk_cycles = min(DEFAULT_CHUNK_CYCLES, max(100, scaled_tick // 10))
        soc_config = SoCConfig(
            n_cpus=config.n_cpus,
            tick_cycles=scaled_tick,
            chunk_cycles=chunk_cycles,
        )
        self.metrics = metrics
        self.soc = SoC(soc_config, metrics=metrics)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)

        # Kernel constants and context footprints must shrink with the
        # workload scale or their per-tick fraction would be inflated.
        source_bindings = dict(bindings or {})
        for task in taskset:
            source_bindings.setdefault(task.name, TaskBinding())
        scaled_bindings = {
            name: TaskBinding(
                profile=binding.profile,
                stack_words=max(1, binding.stack_words // config.scale),
                criticality=binding.criticality,
                retry_budget=binding.retry_budget,
            )
            for name, binding in source_bindings.items()
        }
        self.kernel = DualPriorityMicrokernel(
            self.soc,
            self.taskset,
            bindings=scaled_bindings,
            costs=config.costs.scaled(config.scale),
            trace=self.trace,
            metrics=metrics,
            recovery=recovery,
        )

        merged: Dict[str, List[int]] = {
            task.name: [a for a in task.arrivals] for task in self.taskset.aperiodic
        }
        for name, times in (aperiodic_arrivals or {}).items():
            merged.setdefault(name, []).extend(t // config.scale for t in times)
        for name, times in merged.items():
            if not times:
                continue
            can = self.soc.add_can_interface(f"can-{name}", task_name=name)
            can.program_frames(sorted(times))

    def run(self, until: int):
        """Simulate to ``until`` (pre-scale cycles); returns finished jobs."""
        self.kernel.run(until // self.scale)
        return self.kernel.finished_jobs

    # ----------------------------------------------------------------- queries
    @property
    def finished_jobs(self):
        return self.kernel.finished_jobs

    def to_full_scale(self, cycles: int) -> int:
        """Convert a scaled measurement back to full-size cycles."""
        return cycles * self.scale

    def stats(self) -> dict:
        return self.kernel.stats()
