"""End-to-end simulators -- the multi-fidelity simulation ladder.

Three rungs run the same MPDP workload at different cost/accuracy
points (:data:`FIDELITIES`, fastest first):

- :mod:`repro.simulators.theoretical` -- the paper's comparison
  baseline: MPDP with idealised hardware and a small uniform overhead
  (2 %) for context switching and contention;
- :mod:`repro.simulators.tlm` -- transaction-level middle rung:
  task segments as timed blocks with calibrated analytic bus
  contention, events still at exact instants (25x+ faster than the
  prototype at bounded accuracy loss);
- :mod:`repro.simulators.prototype` -- the full-system run: the
  microkernel of :mod:`repro.kernel` on the SoC of :mod:`repro.hw`;
- :mod:`repro.simulators.baselines` -- classical alternatives
  (partitioned fixed-priority with background aperiodics, global
  fixed-priority, global EDF) for the ablation benchmarks.

:func:`make_simulator` dispatches a :class:`PrototypeConfig` on its
``fidelity`` field so sweeps pick a rung per query.
"""

from typing import Any, Dict, Optional, Sequence

from repro.core.task import TaskSet
from repro.simulators.batch import ReplicationSummary, compare, replicate
from repro.simulators.theoretical import TheoreticalSimulator
from repro.simulators.validation import TaskComparison, ValidationResult, validate
from repro.simulators.prototype import (
    FIDELITIES,
    PrototypeConfig,
    PrototypeSimulator,
)
from repro.simulators.tlm import (
    ANCHOR_CELLS,
    DEFAULT_COST_TABLE,
    TLMCostTable,
    TLMSimulator,
    calibrate,
)
from repro.simulators.baselines import (
    BaselinePolicy,
    GlobalEDFPolicy,
    GlobalFixedPriorityPolicy,
    MultiprocessorSimulator,
    PartitionedFixedPriorityPolicy,
)

__all__ = [
    "FIDELITIES",
    "make_simulator",
    "TheoreticalSimulator",
    "TLMSimulator",
    "TLMCostTable",
    "DEFAULT_COST_TABLE",
    "ANCHOR_CELLS",
    "calibrate",
    "PrototypeSimulator",
    "PrototypeConfig",
    "MultiprocessorSimulator",
    "BaselinePolicy",
    "PartitionedFixedPriorityPolicy",
    "GlobalFixedPriorityPolicy",
    "GlobalEDFPolicy",
    "replicate",
    "compare",
    "ReplicationSummary",
    "validate",
    "ValidationResult",
    "TaskComparison",
]


def make_simulator(
    taskset: TaskSet,
    config: PrototypeConfig,
    bindings: Optional[Dict[str, Any]] = None,
    aperiodic_arrivals: Optional[Dict[str, Sequence[int]]] = None,
    trace=None,
    metrics=None,
    overhead: float = 0.02,
    table: TLMCostTable = DEFAULT_COST_TABLE,
):
    """Instantiate the simulator for ``config.fidelity``.

    One construction point for the whole ladder: ``theoretical`` and
    ``tlm`` ignore ``config.scale`` (they run full-size workloads --
    there is no per-cycle work to amortise) and the theoretical rung
    additionally ignores ``bindings``/``metrics`` (idealised hardware
    has no contention profile to bind).  ``overhead`` is the
    theoretical rung's uniform inflation; ``table`` the TLM rung's
    calibrated contention parameters.

    Note the returned simulators differ in time base: the prototype
    runs the workload scaled by ``config.scale`` (use its
    ``to_full_scale``), the other rungs always at full scale.
    """
    if config.fidelity == "theoretical":
        return TheoreticalSimulator(
            taskset,
            config.n_cpus,
            tick=config.tick,
            overhead=overhead,
            aperiodic_arrivals=aperiodic_arrivals,
            trace=trace,
        )
    if config.fidelity == "tlm":
        return TLMSimulator(
            taskset,
            config.n_cpus,
            tick=config.tick,
            bindings=bindings,
            aperiodic_arrivals=aperiodic_arrivals,
            trace=trace,
            metrics=metrics,
            costs=config.costs,
            table=table,
        )
    if config.fidelity == "prototype":
        return PrototypeSimulator(
            taskset,
            config,
            bindings=bindings,
            aperiodic_arrivals=aperiodic_arrivals,
            trace=trace,
            metrics=metrics,
        )
    raise ValueError(f"unknown fidelity {config.fidelity!r}")  # pragma: no cover
