"""End-to-end simulators.

- :mod:`repro.simulators.theoretical` -- the paper's comparison
  baseline: MPDP with idealised hardware and a small uniform overhead
  (2 %) for context switching and contention;
- :mod:`repro.simulators.prototype` -- the full-system run: the
  microkernel of :mod:`repro.kernel` on the SoC of :mod:`repro.hw`;
- :mod:`repro.simulators.baselines` -- classical alternatives
  (partitioned fixed-priority with background aperiodics, global
  fixed-priority, global EDF) for the ablation benchmarks.
"""

from repro.simulators.batch import ReplicationSummary, compare, replicate
from repro.simulators.theoretical import TheoreticalSimulator
from repro.simulators.validation import TaskComparison, ValidationResult, validate
from repro.simulators.prototype import PrototypeSimulator, PrototypeConfig
from repro.simulators.baselines import (
    BaselinePolicy,
    GlobalEDFPolicy,
    GlobalFixedPriorityPolicy,
    MultiprocessorSimulator,
    PartitionedFixedPriorityPolicy,
)

__all__ = [
    "TheoreticalSimulator",
    "PrototypeSimulator",
    "PrototypeConfig",
    "MultiprocessorSimulator",
    "BaselinePolicy",
    "PartitionedFixedPriorityPolicy",
    "GlobalFixedPriorityPolicy",
    "GlobalEDFPolicy",
    "replicate",
    "compare",
    "ReplicationSummary",
    "validate",
    "ValidationResult",
    "TaskComparison",
]
