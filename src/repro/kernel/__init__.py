"""The dual-priority real-time microkernel running on the SoC model.

Implements Section 4.2 of the paper: the MPDP policy driven by the
system timer through the MPIC, context switching through shared
memory, IPI-triggered task changes, interrupt-released aperiodic jobs
and completion-time self-service of the ready queues.
"""

from repro.kernel.context import ContextSwitchEngine, TaskContext
from repro.kernel.costs import KernelCosts
from repro.kernel.microkernel import DualPriorityMicrokernel, TaskBinding

__all__ = [
    "DualPriorityMicrokernel",
    "TaskBinding",
    "ContextSwitchEngine",
    "TaskContext",
    "KernelCosts",
]
