"""Context switching through shared memory.

The paper: "Tasks contexts are constituted by the register file of the
MicroBlaze processor and the stack.  During context switching, the
contexts are saved in shared memory, stored in a vector that contains
a location for each task runnable in the system.  The context switch
primitive, when executed, loads the register file into the processor
and the stack into the local memory."

So a switch-out writes (32 + stack_words) words to DDR over the OPB
and a switch-in reads them back, all arbitrated -- this is the traffic
the paper identifies as a main source of the real system's slowdown
("task switching, with movements of contexts and stacks for many
applications from and to shared memory, generates consistent traffic").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hw.microblaze import MicroBlaze

#: MicroBlaze register file size in words.
REGISTER_FILE_WORDS = 32

#: Burst length used when streaming stacks to/from DDR.
BURST_WORDS = 8


@dataclass
class TaskContext:
    """Saved state of one task in the shared-memory context vector."""

    task_name: str
    stack_words: int
    regfile_words: int = REGISTER_FILE_WORDS
    saved: bool = False
    save_count: int = 0
    restore_count: int = 0

    @property
    def total_words(self) -> int:
        return self.regfile_words + self.stack_words


class ContextSwitchEngine:
    """Performs the save/restore traffic for one core.

    All transfers go through the arbitrated bus to the DDR, in bursts
    of :data:`BURST_WORDS`, plus a fixed instruction overhead for the
    switch primitive itself (interrupt-state exit, stack relocation
    bookkeeping).
    """

    #: Default cycles of pure kernel code per half-switch.
    PRIMITIVE_OVERHEAD = 150

    def __init__(
        self,
        core: MicroBlaze,
        primitive_overhead: int = PRIMITIVE_OVERHEAD,
        regfile_words: int = REGISTER_FILE_WORDS,
    ):
        if primitive_overhead < 0:
            raise ValueError("primitive_overhead must be non-negative")
        if regfile_words < 0:
            raise ValueError("regfile_words must be non-negative")
        self.core = core
        self.primitive_overhead = primitive_overhead
        self.regfile_words = regfile_words
        self.contexts: Dict[str, TaskContext] = {}
        self.saves = 0
        self.restores = 0
        self.cycles_spent = 0

    def context_of(self, task_name: str, stack_words: int = 256) -> TaskContext:
        """The context-vector slot for a task (created on first use)."""
        if task_name not in self.contexts:
            self.contexts[task_name] = TaskContext(
                task_name, stack_words, regfile_words=self.regfile_words
            )
        return self.contexts[task_name]

    def _stream(self, words: int):
        """Generator: move ``words`` words over the bus in bursts."""
        remaining = words
        while remaining > 0:
            burst = min(BURST_WORDS, remaining)
            yield from self.core.bus.transfer(self.core.cpu_id, self.core.ddr, burst)
            remaining -= burst

    def save(self, context: TaskContext):
        """Generator: save register file + stack to shared memory."""
        start = self.core.sim.now
        yield self.core.sim.timeout(self.primitive_overhead)
        yield from self._stream(context.total_words)
        context.saved = True
        context.save_count += 1
        self.saves += 1
        self.cycles_spent += self.core.sim.now - start

    def restore(self, context: TaskContext):
        """Generator: load register file, relocate stack to local BRAM."""
        start = self.core.sim.now
        yield self.core.sim.timeout(self.primitive_overhead)
        yield from self._stream(context.total_words)
        context.restore_count += 1
        self.restores += 1
        self.cycles_spent += self.core.sim.now - start

    def switch(self, old: Optional[TaskContext], new: Optional[TaskContext]):
        """Generator: full switch (save old if any, restore new if any)."""
        if old is not None:
            yield from self.save(old)
        if new is not None:
            yield from self.restore(new)
