"""The dual-priority microkernel on the SoC model (Section 4.2).

One cooperative process per core plays the role of that core's
software stack: it executes the currently assigned job's nominal
cycles through the arbitrated bus, takes interrupts from the MPIC
(timer ticks, peripheral/aperiodic events, IPIs), runs the scheduling
cycle when the system timer lands on it, self-serves the ready queues
on task completion, and performs context switches through shared
memory.  Kernel sections run with interrupts disabled, so the MPIC's
fixed-priority-timeout scheme redistributes interrupts to free cores,
exactly as in the paper ("if a processor is executing the scheduling
cycle, or it is executing a context switch, it will not be burdened by
the aperiodic task release").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.mpdp import MPDPScheduler
from repro.core.task import AperiodicTask, Job, TaskSet
from repro.hw.intc import MultiprocessorInterruptController
from repro.hw.microblaze import DEFAULT_PROFILE, ExecutionProfile, SegmentResult
from repro.hw.soc import SoC
from repro.kernel.context import ContextSwitchEngine, TaskContext
from repro.kernel.costs import KernelCosts
from repro.sim.events import Interrupt
from repro.trace.recorder import TraceRecorder

#: Sync-engine lock id protecting the kernel task tables.
KERNEL_LOCK = 0


@dataclass(frozen=True)
class TaskBinding:
    """Per-task execution characterisation for the hardware model.

    ``criticality`` and ``retry_budget`` feed the fault-recovery
    machinery (docs/FAULTS.md): higher criticality survives graceful
    degradation longer, and ``retry_budget`` bounds per-instance
    re-execution after a detected crash fault.
    """

    profile: ExecutionProfile = DEFAULT_PROFILE
    stack_words: int = 256
    criticality: int = 1
    retry_budget: int = 1

    def __post_init__(self):
        if self.stack_words < 0:
            raise ValueError("stack_words must be non-negative")
        if self.criticality < 0:
            raise ValueError("criticality must be non-negative")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")


@dataclass(frozen=True)
class RecoveryConfig:
    """Fault-recovery policy of the microkernel (docs/FAULTS.md).

    The deadline-miss watchdog is always armed (it is pure
    observability); this config only governs the *actions* taken when
    faults are detected.  ``enabled`` turns on bounded re-execution of
    crashed jobs; ``degradation_threshold`` (> 0) arms graceful
    degradation: once that many kernel-level faults have been
    consumed, periodic tasks with ``criticality <
    shed_below_criticality`` are shed at release time until the end of
    the run.
    """

    enabled: bool = False
    degradation_threshold: int = 0
    shed_below_criticality: int = 1

    def __post_init__(self):
        if self.degradation_threshold < 0:
            raise ValueError("degradation_threshold must be non-negative")
        if self.shed_below_criticality < 0:
            raise ValueError("shed_below_criticality must be non-negative")


class DualPriorityMicrokernel:
    """MPDP microkernel bound to a :class:`~repro.hw.soc.SoC`."""

    def __init__(
        self,
        soc: SoC,
        taskset: TaskSet,
        bindings: Optional[Dict[str, TaskBinding]] = None,
        costs: Optional[KernelCosts] = None,
        trace: Optional[TraceRecorder] = None,
        metrics=None,
        recovery: Optional[RecoveryConfig] = None,
    ):
        self.soc = soc
        self.sim = soc.sim
        self.taskset = taskset
        self.n_cpus = soc.config.n_cpus
        self.policy = MPDPScheduler(
            taskset, self.n_cpus, promotion_granularity="tick"
        )
        self.bindings = dict(bindings or {})
        self.costs = costs or KernelCosts()
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)

        self.assigned: List[Optional[Job]] = [None] * self.n_cpus
        self._current: List[Optional[Job]] = [None] * self.n_cpus
        self._state: List[str] = ["boot"] * self.n_cpus
        self._procs: List[Optional[object]] = [None] * self.n_cpus
        self._context_engines = [
            ContextSwitchEngine(
                core,
                primitive_overhead=self.costs.context_primitive,
                regfile_words=self.costs.regfile_words,
            )
            for core in soc.cores
        ]
        self._aper_index: Dict[str, int] = {}

        # Statistics.
        self.context_switches = 0
        self.scheduling_cycles = 0
        self.aperiodic_releases = 0
        self.irqs_serviced = 0
        self._started = False

        # Fault-recovery state (docs/FAULTS.md).  ``_faults_armed``
        # stays False until an injection lands, so fault-free runs pay
        # one boolean check per dispatch/completion and nothing else.
        self.recovery = recovery if recovery is not None else RecoveryConfig()
        self.deadline_misses = 0
        self.faults_injected = 0
        self.task_retries = 0
        self.crashes_unrecovered = 0
        self.jobs_shed = 0
        self.degraded = False
        self._faults_armed = False
        self._pending_overruns: Dict[str, List[int]] = {}
        self._pending_crashes: Dict[str, int] = {}
        self._fault_count = 0
        self._shed_tasks: Dict[str, bool] = {}

        # Observability (optional MetricsRegistry).  Instrument
        # handles are resolved once here so instrumented runs pay no
        # registry lookup per event, and uninstrumented runs pay one
        # ``is None`` check per observation point.
        self.metrics = metrics
        self._m_sched = self._m_switches = self._m_irqs = None
        self._m_prq_depth = self._m_apq_depth = self._m_local_depth = None
        if metrics is not None:
            from repro.obs.metrics import DEFAULT_DEPTH_BUCKETS

            self._m_sched = metrics.histogram(
                "sched_cycle_cycles",
                help="latency of one scheduling cycle (lock request to done)",
            )
            self._m_switches = metrics.counter(
                "context_switches_total", help="context switches performed")
            self._m_irqs = metrics
            self._m_prq_depth = metrics.histogram(
                "queue_depth", buckets=DEFAULT_DEPTH_BUCKETS,
                labels={"queue": "periodic_ready"},
                help="ready-queue depth sampled at each scheduling cycle",
            )
            self._m_apq_depth = metrics.histogram(
                "queue_depth", buckets=DEFAULT_DEPTH_BUCKETS,
                labels={"queue": "aperiodic_ready"},
            )
            self._m_local_depth = [
                metrics.histogram(
                    "queue_depth", buckets=DEFAULT_DEPTH_BUCKETS,
                    labels={"queue": "local", "cpu": cpu},
                )
                for cpu in range(self.n_cpus)
            ]

    # ----------------------------------------------------------------- control
    def start(self) -> None:
        """Boot: wire interrupt hooks, spawn core loops, start the timer."""
        if self._started:
            raise RuntimeError("kernel already started")
        self._started = True
        for cpu in range(self.n_cpus):
            self._wire_interrupt_hook(cpu)
            self._procs[cpu] = self.sim.process(
                self._cpu_loop(cpu), name=f"cpu{cpu}-loop"
            )
        self.soc.timer.start(first_tick=self.sim.now)

    def run(self, until: int) -> None:
        """Start (if needed) and simulate up to ``until`` cycles."""
        if not self._started:
            self.start()
        self.sim.run(until=until)

    @property
    def finished_jobs(self) -> List[Job]:
        return self.policy.finished_jobs

    def release_aperiodic_via(self, peripheral_name: str, times) -> None:
        """Program a CAN peripheral to release its task at these times."""
        self.soc.peripherals[peripheral_name].program_frames(list(times))

    # ----------------------------------------------------------- interrupt glue
    def _wire_interrupt_hook(self, cpu: int) -> None:
        core = self.soc.cores[cpu]
        original = core.on_interrupt_line

        def hook(asserted: bool) -> None:
            original(asserted)
            if not asserted:
                return
            if self._state[cpu] == "user" and core.interrupts_enabled:
                proc = self._procs[cpu]
                if proc is not None and proc.is_alive:
                    proc.interrupt(
                        "irq",
                        guard=lambda: self._state[cpu] == "user"
                        and core.interrupts_enabled,
                    )

        self.soc.intc.connect_cpu(cpu, hook)

    # ------------------------------------------------------------- the cpu loop
    def _cpu_loop(self, cpu: int):
        core = self.soc.cores[cpu]
        while True:
            if self.assigned[cpu] is not self._current[cpu]:
                self._enter_kernel(cpu)
                yield from self._switch_to_assigned(cpu)
                self._leave_kernel(cpu)
                continue

            job = self._current[cpu]
            if job is None:
                self._state[cpu] = "idle"
                self.trace.record(self.sim.now, "idle", cpu=cpu)
                yield core.irq_event()
                self._enter_kernel(cpu)
                yield from self._service_interrupts(cpu)
                yield from self._switch_to_assigned(cpu)
                self._leave_kernel(cpu)
                continue

            # Execute the current job, interruptibly.
            self._state[cpu] = "user"
            binding = self._binding_of(job)
            if self._faults_armed:
                self._consume_overrun(cpu, job)
            segment = SegmentResult()
            try:
                yield from core.execute(job.remaining, binding.profile, segment)
                job.remaining = 0
                self._enter_kernel(cpu)
                yield from self._complete_or_recover(cpu, job)
                yield from self._switch_to_assigned(cpu)
                self._leave_kernel(cpu)
            except Interrupt:
                job.remaining -= segment.nominal_done
                self._enter_kernel(cpu)
                if job.remaining <= 0:
                    # Finished in the very cycle the interrupt landed.
                    job.remaining = 0
                    yield from self._complete_or_recover(cpu, job)
                yield from self._service_interrupts(cpu)
                yield from self._switch_to_assigned(cpu)
                self._leave_kernel(cpu)

    def _enter_kernel(self, cpu: int) -> None:
        self._state[cpu] = "kernel"
        self.soc.cores[cpu].disable_interrupts()

    def _leave_kernel(self, cpu: int) -> None:
        self.soc.cores[cpu].enable_interrupts()

    # --------------------------------------------------------- interrupt service
    def _service_interrupts(self, cpu: int):
        """Drain and handle every interrupt pending for this cpu."""
        core = self.soc.cores[cpu]
        intc = self.soc.intc
        while intc.pending_for(cpu):
            # Acknowledge: MPIC register read over the OPB.
            yield from core.bus.transfer(cpu, intc.REGISTERS, 1)
            source, payload = intc.acknowledge(cpu)
            yield self.sim.timeout(self.costs.irq_entry)
            self.irqs_serviced += 1
            kind = (payload or {}).get("kind", source.name)
            if self._m_irqs is not None:
                self._m_irqs.counter(
                    "kernel_irqs_total", labels={"kind": str(kind)},
                    help="interrupts serviced by the kernel, by kind",
                ).inc()
            self.trace.record(self.sim.now, "irq", cpu=cpu, info=str(kind))

            if kind == "timer":
                yield from self._scheduling_cycle(cpu)
            elif kind == "aperiodic":
                yield from self._aperiodic_release(cpu, payload)
            elif kind == "ipi":
                pass  # reconciliation below picks up the new assignment
            else:
                pass  # unknown peripherals are acknowledged and dropped

            # End-of-interrupt: MPIC register write over the OPB.
            yield from core.bus.transfer(cpu, intc.REGISTERS, 1)
            intc.complete(cpu)
            yield self.sim.timeout(self.costs.irq_exit)

    # -------------------------------------------------------------- kernel paths
    def _lock_kernel(self, cpu: int):
        grant = self.soc.sync_engine.acquire(KERNEL_LOCK, cpu)
        yield grant

    def _unlock_kernel(self, cpu: int) -> None:
        self.soc.sync_engine.release(KERNEL_LOCK, cpu)

    def _queue_traffic(self, cpu: int, jobs_moved: int):
        """Shared-memory task-table traffic for queue manipulation."""
        words = self.costs.queue_op_words * max(1, jobs_moved)
        core = self.soc.cores[cpu]
        remaining = words
        while remaining > 0:
            burst = min(8, remaining)
            yield from core.bus.transfer(cpu, core.ddr, burst)
            remaining -= burst

    def _scheduling_cycle(self, cpu: int):
        """The timer-triggered scheduling cycle, run by one processor."""
        entered = self.sim.now
        yield from self._lock_kernel(cpu)
        now = self.sim.now
        released = self.policy.release_due(now)
        promoted = self.policy.promote_due(now)
        moved = len(released) + len(promoted)
        for job in released:
            self.trace.record(now, "release", job=job.name)
        for job in promoted:
            self.trace.record(now, "promote", job=job.name)
        if self._shed_tasks:
            released = self._shed_released(released, now)
        for job in released:
            self._arm_watchdog(job)
        yield self.sim.timeout(self.costs.scheduler_cycle(moved))
        yield from self._queue_traffic(cpu, moved)

        allocation = self.policy.allocate(self.sim.now)
        self.assigned = list(allocation.assignment)
        self.scheduling_cycles += 1
        self.trace.record(self.sim.now, "tick", cpu=cpu)
        yield from self._notify_switches(cpu, allocation.switches)
        self._unlock_kernel(cpu)
        if self._m_sched is not None:
            self._m_sched.observe(self.sim.now - entered)
            self._observe_queue_depths()

    def _observe_queue_depths(self) -> None:
        """Sample ready-queue depths (global bands + per-cpu local)."""
        self._m_prq_depth.observe(len(self.policy.periodic_ready))
        self._m_apq_depth.observe(len(self.policy.aperiodic_ready))
        for cpu in range(self.n_cpus):
            self._m_local_depth[cpu].observe(len(self.policy.local[cpu]))

    def _aperiodic_release(self, cpu: int, payload: dict):
        """Release the aperiodic task named in the peripheral payload."""
        task_name = (payload or {}).get("task")
        if task_name is None:
            return
        task = self.taskset.by_name(task_name)
        if not isinstance(task, AperiodicTask):
            raise TypeError(f"{task_name} is not an aperiodic task")
        index = self._aper_index.get(task_name, 0)
        self._aper_index[task_name] = index + 1
        job = Job(task, release=self.sim.now, index=index)

        yield from self._lock_kernel(cpu)
        yield self.sim.timeout(self.costs.aperiodic_release)
        self.policy.add_aperiodic(job)
        self.aperiodic_releases += 1
        self.trace.record(self.sim.now, "release", job=job.name, info="aperiodic")
        yield from self._queue_traffic(cpu, 1)

        allocation = self.policy.allocate(self.sim.now)
        self.assigned = list(allocation.assignment)
        yield from self._notify_switches(cpu, allocation.switches)
        self._unlock_kernel(cpu)

    def _on_completion(self, cpu: int, job: Job):
        """Task finished: re-arm, self-serve the queues, notify peers."""
        yield from self._lock_kernel(cpu)
        yield self.sim.timeout(self.costs.completion)
        self.policy.job_finished(job, self.sim.now)
        self.trace.record(self.sim.now, "finish", job=job.name, cpu=cpu)
        self._current[cpu] = None
        yield from self._queue_traffic(cpu, 1)

        allocation = self.policy.allocate(self.sim.now)
        self.assigned = list(allocation.assignment)
        yield from self._notify_switches(cpu, allocation.switches)
        self._unlock_kernel(cpu)

    # ---------------------------------------------------------- fault recovery
    # Injection entry points (called by repro.faults.injector; the
    # kernel never imports repro.faults).  Faults are *armed* here and
    # consumed at well-defined points of the cpu loop, which keeps the
    # loop's structure -- and therefore fault-free timing -- unchanged.

    def inject_overrun(self, task_name: str, extra: int) -> None:
        """Arm a WCET-overrun: the next executed segment of this task
        runs ``extra`` cycles beyond its budget."""
        if extra <= 0:
            raise ValueError("overrun extra cycles must be positive")
        self.taskset.by_name(task_name)
        self._pending_overruns.setdefault(task_name, []).append(extra)
        self._faults_armed = True

    def inject_crash(self, task_name: str) -> None:
        """Arm a crash fault: the next completion of this task is
        detected as corrupted (silent-data-corruption model)."""
        self.taskset.by_name(task_name)
        self._pending_crashes[task_name] = (
            self._pending_crashes.get(task_name, 0) + 1
        )
        self._faults_armed = True

    def running_task_on(self, cpu: int) -> Optional[str]:
        """Name of the task currently executing on ``cpu`` (or None).

        Used by the injector to map hardware-level upsets (register
        bit-flips) onto the software-level job they corrupt.
        """
        job = self._current[cpu]
        return job.task.name if job is not None else None

    def _consume_overrun(self, cpu: int, job: Job) -> None:
        """Apply one armed overrun to the job about to execute."""
        queue = self._pending_overruns.get(job.task.name)
        if not queue:
            return
        extra = queue.pop(0)
        job.remaining += extra
        self._record_fault(cpu, job, f"overrun+{extra}")

    def _complete_or_recover(self, cpu: int, job: Job):
        """Completion gate: consume an armed crash fault, else finish."""
        if self._faults_armed and self._pending_crashes.get(job.task.name):
            yield from self._recover_crash(cpu, job)
            return
        yield from self._on_completion(cpu, job)

    def _recover_crash(self, cpu: int, job: Job):
        """A crash fault fires at completion: retry within budget, or
        let the instance complete with invalid output."""
        name = job.task.name
        remaining = self._pending_crashes[name] - 1
        if remaining:
            self._pending_crashes[name] = remaining
        else:
            del self._pending_crashes[name]
        self._record_fault(cpu, job, "crash")

        budget = self._binding_of(job).retry_budget
        if self.recovery.enabled and job.retries < budget:
            # Bounded re-execution: restart the instance from scratch.
            # The job stays current/assigned on this cpu; the loop
            # re-enters core.execute with a fresh budget.
            job.retries += 1
            self.task_retries += 1
            job.remaining = getattr(job.task, "acet", None) or job.task.wcet
            yield self.sim.timeout(self.costs.completion)
            self.trace.record(
                self.sim.now, "retry", job=job.name, cpu=cpu,
                info=f"attempt={job.retries}",
            )
            if self.metrics is not None:
                self.metrics.counter(
                    "task_retries_total", labels={"task": name},
                    help="crashed jobs re-executed by the recovery policy",
                ).inc()
            return
        # Budget exhausted (or recovery disabled): the instance
        # completes, but its output is corrupt -- the watchdog counts
        # it as a deadline miss.
        job.invalid = True
        self.crashes_unrecovered += 1
        yield from self._on_completion(cpu, job)

    def _record_fault(self, cpu: int, job: Job, info: str) -> None:
        """Count + trace one consumed kernel-level fault, and trip
        graceful degradation at the configured threshold."""
        self.faults_injected += 1
        self._fault_count += 1
        self.trace.record(self.sim.now, "fault", job=job.name, cpu=cpu, info=info)
        if self.metrics is not None:
            self.metrics.counter(
                "kernel_faults_total", labels={"task": job.task.name},
                help="kernel-level faults consumed (crashes + overruns)",
            ).inc()
        if (
            self.recovery.enabled
            and not self.degraded
            and self.recovery.degradation_threshold > 0
            and self._fault_count >= self.recovery.degradation_threshold
        ):
            self._enter_degraded_mode()

    def _enter_degraded_mode(self) -> None:
        """Sustained faults: shed low-criticality periodic tasks."""
        self.degraded = True
        floor = self.recovery.shed_below_criticality
        for task in self.taskset.periodic:
            if self._binding_of_name(task.name).criticality < floor:
                self._shed_tasks[task.name] = True
        self.trace.record(
            self.sim.now, "degrade",
            info=",".join(sorted(self._shed_tasks)) or "none",
        )

    def _shed_released(self, released: List[Job], now: int) -> List[Job]:
        """Drop just-released jobs of shed tasks (degraded mode only).

        A shed job is completed instantly at zero cost: removed from
        the PRQ, marked ``shed``, and run through ``job_finished`` so
        its next instance still parks in the WPQ (un-shedding future
        configs stays possible).  In-flight jobs of shed tasks are
        never aborted -- shedding applies to releases after the
        degradation point.
        """
        kept: List[Job] = []
        for job in released:
            if job.task.name in self._shed_tasks:
                self.policy.periodic_ready.remove(job)
                job.remaining = 0
                job.shed = True
                self.policy.job_finished(job, now)
                self.jobs_shed += 1
                self.trace.record(now, "shed", job=job.name)
            else:
                kept.append(job)
        return kept

    # Watchdog: a deadline-miss detector armed at every periodic
    # release.  It is pure observability -- the callback only reads job
    # state and bumps counters -- so it is always on and cannot perturb
    # the schedule.

    def _arm_watchdog(self, job: Job) -> None:
        deadline = job.absolute_deadline
        if deadline is None:
            return
        # +1: a completion event in the deadline cycle itself must be
        # seen as a meet (finish_time == deadline is on time).
        self.sim.schedule_at(deadline + 1, lambda j=job: self._watchdog_check(j))

    def _watchdog_check(self, job: Job) -> None:
        if job.shed:
            return
        deadline = job.absolute_deadline
        missed = (
            job.invalid
            or job.finish_time is None
            or job.finish_time > deadline
        )
        if not missed:
            return
        self.deadline_misses += 1
        self.trace.record(
            self.sim.now, "deadline_miss", job=job.name, cpu=job.cpu,
            info="invalid" if job.invalid else "late",
        )
        if self.metrics is not None:
            cpu = job.cpu if job.cpu is not None else getattr(job.task, "cpu", -1)
            self.metrics.counter(
                "deadline_misses_total",
                labels={"task": job.task.name, "cpu": cpu},
                help="periodic jobs without a valid completion by their deadline",
            ).inc()

    def _binding_of_name(self, name: str) -> TaskBinding:
        return self.bindings.get(name, TaskBinding())

    def _notify_switches(self, scheduler_cpu: int, switches: List[int]):
        """IPI every processor whose assignment changed (except self)."""
        core = self.soc.cores[scheduler_cpu]
        for target in switches:
            if target == scheduler_cpu:
                continue
            yield self.sim.timeout(self.costs.ipi_raise)
            yield from core.bus.transfer(scheduler_cpu, self.soc.intc.REGISTERS, 1)
            self.soc.intc.send_ipi(
                scheduler_cpu, target, payload={"kind": "ipi"}
            )

    # ------------------------------------------------------------ context switch
    def _switch_to_assigned(self, cpu: int):
        """Bring the cpu's loaded context in line with the assignment."""
        new = self.assigned[cpu]
        old = self._current[cpu]
        if new is old:
            return
        engine = self._context_engines[cpu]
        old_ctx: Optional[TaskContext] = None
        if old is not None and old.remaining > 0:
            old_ctx = engine.context_of(
                old.task.name, self._binding_of(old).stack_words
            )
            self.trace.record(self.sim.now, "preempt", job=old.name, cpu=cpu)
        new_ctx: Optional[TaskContext] = None
        if new is not None:
            new_ctx = engine.context_of(
                new.task.name, self._binding_of(new).stack_words
            )
        yield from engine.switch(old_ctx, new_ctx)
        self._current[cpu] = new
        if new is not None:
            self.context_switches += 1
            if self._m_switches is not None:
                self._m_switches.inc()
            self.trace.record(self.sim.now, "switch", job=new.name, cpu=cpu)
            self.trace.record(self.sim.now, "dispatch", job=new.name, cpu=cpu)

    # ----------------------------------------------------------------- utilities
    def _binding_of(self, job: Job) -> TaskBinding:
        return self.bindings.get(job.task.name, TaskBinding())

    def stats(self) -> dict:
        """Kernel counters (used by experiments and tests)."""
        return {
            "context_switches": self.context_switches,
            "scheduling_cycles": self.scheduling_cycles,
            "aperiodic_releases": self.aperiodic_releases,
            "irqs_serviced": self.irqs_serviced,
            "bus_busy_cycles": self.soc.bus.stats.busy_cycles,
            "bus_utilization": self.soc.bus.stats.utilization(max(1, self.sim.now)),
            "mpic_delivered": self.soc.intc.delivered,
            "mpic_timeouts": self.soc.intc.timeouts,
            "ipis": self.soc.intc.ipis_sent,
            "deadline_misses": self.deadline_misses,
            "faults_injected": self.faults_injected,
            "task_retries": self.task_retries,
            "crashes_unrecovered": self.crashes_unrecovered,
            "jobs_shed": self.jobs_shed,
            "degraded": self.degraded,
        }
