"""Kernel overhead model.

Every kernel activity costs cycles on the processor executing it and,
for queue manipulation, word traffic to the shared memory where the
task tables live.  These constants are the calibration surface between
the prototype and the theoretical simulator; the ablation benchmark
``benchmarks/test_bench_ablations.py`` sweeps them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelCosts:
    """Cycle costs of kernel paths (per invocation unless noted)."""

    #: Interrupt entry: vector, prologue, MPIC acknowledge read.
    irq_entry: int = 80
    #: Interrupt exit: MPIC EOI write, epilogue, rfi.
    irq_exit: int = 60
    #: Scheduling cycle fixed part (timer handling, loop setup).
    scheduler_base: int = 400
    #: Per job moved between queues during a scheduling cycle.
    scheduler_per_job: int = 60
    #: Shared-memory words touched per queue operation (task table).
    queue_op_words: int = 4
    #: Releasing an aperiodic task from a peripheral interrupt.
    aperiodic_release: int = 250
    #: Completion handling (dequeue, re-arm, self-service check).
    completion: int = 200
    #: Raising one IPI through the MPIC registers.
    ipi_raise: int = 40
    #: Pure-code cycles of each half context switch (save or restore).
    context_primitive: int = 150
    #: Register-file words moved per context switch half (MicroBlaze: 32).
    regfile_words: int = 32

    def scheduler_cycle(self, jobs_moved: int) -> int:
        """Processor cycles of one scheduling cycle body."""
        return self.scheduler_base + self.scheduler_per_job * max(0, jobs_moved)

    def scaled(self, scale: int) -> "KernelCosts":
        """Costs for a workload-scaled run (see PrototypeSimulator).

        When every workload time is divided by ``scale``, the fixed
        kernel costs must shrink by the same factor or their *fraction*
        of a tick would be exaggerated by ``scale``; each cost keeps a
        floor of 1 cycle.
        """
        if scale < 1:
            raise ValueError("scale must be >= 1")
        if scale == 1:
            return self

        def d(value: int) -> int:
            return max(1, value // scale)

        return KernelCosts(
            irq_entry=d(self.irq_entry),
            irq_exit=d(self.irq_exit),
            scheduler_base=d(self.scheduler_base),
            scheduler_per_job=d(self.scheduler_per_job),
            queue_op_words=d(self.queue_op_words),
            aperiodic_release=d(self.aperiodic_release),
            completion=d(self.completion),
            ipi_raise=d(self.ipi_raise),
            context_primitive=d(self.context_primitive),
            regfile_words=d(self.regfile_words),
        )
