"""Unified observability: metrics, trace sinks, Perfetto export, reports.

Four pieces, one import surface:

- :mod:`repro.obs.metrics` -- a Prometheus-flavoured
  :class:`MetricsRegistry` (counters, gauges, fixed-bucket
  histograms, labelled series) with deterministic JSON and
  exposition-text snapshots;
- :mod:`repro.obs.sinks` -- pluggable trace sinks behind the
  existing :class:`~repro.trace.recorder.TraceRecorder` API: the
  default in-memory list, a bounded ring buffer and a streaming
  JSONL file sink;
- :mod:`repro.obs.perfetto` -- Chrome trace-event export of recorded
  schedules, loadable in ``ui.perfetto.dev``;
- :mod:`repro.obs.report` -- per-run :class:`RunReport` artefacts
  folding kernel, interconnect, cache and bus telemetry into one
  JSON document.

Every hook is off by default (``metrics=None``) and costs one
attribute check when disabled; see :mod:`repro.obs.bench` for the
measured overhead.  The ``repro-obs`` CLI (:mod:`repro.obs.cli`)
fronts all of it.
"""

from repro.obs.metrics import (
    DEFAULT_CYCLE_BUCKETS,
    DEFAULT_DEPTH_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sinks import (
    JsonlFileSink,
    ListSink,
    RingBufferSink,
    event_from_dict,
    event_to_dict,
    trace_from_jsonl,
)
from repro.obs.perfetto import chrome_trace_json, trace_to_chrome, write_chrome_trace
from repro.obs.report import (
    RunReport,
    fold_bus_monitor,
    fold_icaches,
    fold_run_cache,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_CYCLE_BUCKETS",
    "DEFAULT_DEPTH_BUCKETS",
    "ListSink",
    "RingBufferSink",
    "JsonlFileSink",
    "event_to_dict",
    "event_from_dict",
    "trace_from_jsonl",
    "trace_to_chrome",
    "chrome_trace_json",
    "write_chrome_trace",
    "RunReport",
    "fold_bus_monitor",
    "fold_icaches",
    "fold_run_cache",
]
