"""Unified observability: metrics, spans, sinks, Perfetto, ledger, reports.

Six pieces, one import surface:

- :mod:`repro.obs.metrics` -- a Prometheus-flavoured
  :class:`MetricsRegistry` (counters, gauges, fixed-bucket
  histograms, labelled series) with deterministic JSON and
  exposition-text snapshots, cross-process :meth:`MetricsRegistry.merge`
  and a strict scrape-side :func:`parse_prometheus_text`;
- :mod:`repro.obs.spans` -- deterministic span tracing of the
  host-side experiment pipeline (``sweep`` -> ``cell`` -> ``measure``
  -> ``simulate``) with monotonic ids, explicit parent links, and
  cross-process grafting;
- :mod:`repro.obs.sinks` -- pluggable trace sinks behind the
  existing :class:`~repro.trace.recorder.TraceRecorder` API: the
  default in-memory list, a bounded ring buffer and a streaming
  JSONL file sink;
- :mod:`repro.obs.perfetto` -- Chrome trace-event export of recorded
  schedules and pipeline spans (per-worker process tracks), loadable
  in ``ui.perfetto.dev``;
- :mod:`repro.obs.ledger` -- the persistent append-only run history
  (``.repro/ledger.jsonl``) behind ``repro-obs history`` / ``diff``;
- :mod:`repro.obs.report` -- per-run :class:`RunReport` artefacts
  folding kernel, interconnect, cache and bus telemetry into one
  JSON document.

Every hook is off by default (``metrics=None``, no ambient telemetry)
and costs one attribute check when disabled; see :mod:`repro.obs.bench`
for the measured overhead.  The ``repro-obs`` CLI (:mod:`repro.obs.cli`)
fronts all of it.
"""

from repro.obs.ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_ENV,
    Ledger,
    LedgerEntry,
    diff_numeric,
    flatten_numeric,
    format_diff,
    format_history,
)
from repro.obs.metrics import (
    DEFAULT_CYCLE_BUCKETS,
    DEFAULT_DEPTH_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.obs.perfetto import (
    chrome_trace_json,
    spans_to_events,
    trace_to_chrome,
    write_chrome_trace,
)
from repro.obs.report import (
    RunReport,
    fold_bus_monitor,
    fold_icaches,
    fold_run_cache,
)
from repro.obs.sinks import (
    JsonlFileSink,
    ListSink,
    RingBufferSink,
    event_from_dict,
    event_to_dict,
    trace_from_jsonl,
)
from repro.obs.spans import Span, SpanEvent, SpanRecorder, spans_from_jsonl

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_CYCLE_BUCKETS",
    "DEFAULT_DEPTH_BUCKETS",
    "parse_prometheus_text",
    "Span",
    "SpanEvent",
    "SpanRecorder",
    "spans_from_jsonl",
    "ListSink",
    "RingBufferSink",
    "JsonlFileSink",
    "event_to_dict",
    "event_from_dict",
    "trace_from_jsonl",
    "trace_to_chrome",
    "chrome_trace_json",
    "write_chrome_trace",
    "spans_to_events",
    "Ledger",
    "LedgerEntry",
    "DEFAULT_LEDGER_PATH",
    "LEDGER_ENV",
    "flatten_numeric",
    "diff_numeric",
    "format_history",
    "format_diff",
    "RunReport",
    "fold_bus_monitor",
    "fold_icaches",
    "fold_run_cache",
]
