"""``repro-obs``: the observability front end.

Five modes, mirroring ``repro-lint``/``repro-perf``::

    repro-obs report [--cpus 2] [--util 0.5] [--scale N] [--out report.json]
                     [--prometheus] [--trace-jsonl FILE] [--perfetto FILE]
    repro-obs convert TRACE [--to perfetto|json|csv|jsonl] [--out FILE]
    repro-obs history [--last N] [--kind sweep|bench|...] [--ledger FILE]
    repro-obs diff A B [--threshold 0.10] [--ledger FILE] [--verbose]
    repro-obs --self-check

``report`` runs one fully instrumented Figure-4-style prototype cell
and emits its :class:`~repro.obs.report.RunReport` (JSON by default,
Prometheus text with ``--prometheus``); ``convert`` re-encodes a
recorded trace (JSON / CSV / JSONL autodetected by extension) into a
Perfetto-loadable Chrome trace or any of the flat formats.
``history`` lists the persistent run ledger
(:mod:`repro.obs.ledger`); ``diff`` compares two runs -- each side a
ledger index (``-1`` = newest) or a JSON results file such as
``BENCH_perf.json`` -- under a relative regression threshold and
exits 1 when a metric moved past it in its bad direction.
``--self-check`` smoke-runs the registry, the sinks, the exporter,
span tracing, the cross-process merge invariant (a parallel sweep's
merged metrics must equal the serial run's bit for bit), the
Prometheus parser round-trip and the ledger against built-in fixtures
in a few seconds and is part of the CI tier.

Exit status: 0 on success, 1 on any failure.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from typing import List, Optional


def _probe_measure(x: int) -> dict:
    """Module-level (picklable) measure for the cross-process checks."""
    return {"y": x * x, "misses": x % 2}


# ------------------------------------------------------------------ self-check
def self_check(out=None) -> int:
    """Smoke-run the observability machinery on built-in fixtures.

    Verifies counter/gauge/histogram accounting and both export
    formats, the three sinks (list, ring drop accounting, JSONL
    round-trip), the disabled recorder's short-circuit, the Perfetto
    exporter's span/instant reconstruction, and that an instrumented
    micro-run produces a RunReport carrying every headline section.
    Returns 0 on success.
    """
    out = out or sys.stdout
    failures: List[str] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        print(f"{'ok  ' if ok else 'FAIL'} {name}{': ' + detail if detail else ''}",
              file=out)
        if not ok:
            failures.append(name)

    # -- metrics registry
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("irqs_total", labels={"kind": "timer"}).inc(3)
    registry.gauge("depth").set(2.5)
    histogram = registry.histogram("lat", buckets=(10, 100))
    for value in (5, 50, 500):
        histogram.observe(value)
    snapshot = registry.snapshot()
    check("registry counts and buckets",
          snapshot["irqs_total"]["series"][0]["value"] == 3
          and snapshot["lat"]["series"][0]["buckets"] == {"10": 1, "100": 2, "+Inf": 3},
          json.dumps(snapshot.get("lat", {}).get("series", "missing")))
    text = registry.to_prometheus_text()
    check("prometheus text renders",
          '# TYPE lat histogram' in text
          and 'irqs_total{kind="timer"} 3' in text
          and 'lat_bucket{le="+Inf"} 3' in text)
    same = MetricsRegistry()
    same.counter("irqs_total", labels={"kind": "timer"}).inc(3)
    same.gauge("depth").set(2.5)
    h2 = same.histogram("lat", buckets=(10, 100))
    for value in (5, 50, 500):
        h2.observe(value)
    check("export deterministic", same.to_json() == registry.to_json())

    # -- sinks
    from repro.obs.sinks import JsonlFileSink, RingBufferSink, trace_from_jsonl
    from repro.trace.recorder import TraceRecorder

    ring = TraceRecorder(sink=RingBufferSink(capacity=4))
    for time in range(10):
        ring.record(time, "tick", cpu=0)
    check("ring buffer keeps the tail",
          len(ring) == 4 and ring.sink.dropped == 6
          and [e.time for e in ring] == [6, 7, 8, 9],
          f"retained={[e.time for e in ring]}")

    with tempfile.TemporaryDirectory(prefix="repro-obs-check-") as root:
        path = os.path.join(root, "trace.jsonl")
        streamed = TraceRecorder(sink=JsonlFileSink(path))
        streamed.record(0, "release", job="a#0")
        streamed.record(5, "dispatch", job="a#0", cpu=1)
        streamed.record(20, "finish", job="a#0", cpu=1)
        streamed.close()
        reloaded = trace_from_jsonl(path)
        check("jsonl sink round-trips",
              streamed.sink.emitted == 3 and len(streamed.events) == 0
              and [e.kind for e in reloaded] == ["release", "dispatch", "finish"])

    disabled = TraceRecorder(enabled=False, sink=RingBufferSink(capacity=4))
    disabled.record(0, "tick", cpu=0)
    check("disabled recorder short-circuits",
          len(disabled) == 0 and disabled.sink.emitted == 0)

    # -- perfetto exporter
    from repro.obs.perfetto import trace_to_chrome

    trace = TraceRecorder()
    trace.record(0, "release", job="a#0")
    trace.record(5, "dispatch", job="a#0", cpu=0)
    trace.record(20, "preempt", job="a#0", cpu=0)
    trace.record(20, "dispatch", job="b#0", cpu=0)
    trace.record(30, "finish", job="b#0", cpu=0)
    trace.record(12, "irq", cpu=0, info="timer")
    chrome = trace_to_chrome(trace, clock_hz=1_000_000)  # 1 cycle = 1 us
    slices = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
    instants = [e for e in chrome["traceEvents"] if e["ph"] == "i"]
    check("perfetto spans reconstructed",
          [(s["name"], s["ts"], s["dur"]) for s in slices]
          == [("a#0", 5.0, 15.0), ("b#0", 20.0, 10.0)],
          str([(s["name"], s["ts"], s["dur"]) for s in slices]))
    check("perfetto instants and tracks",
          any(e["name"] == "irq" and e["tid"] == 0 for e in instants)
          and any(e["ph"] == "M" and e["args"]["name"] == "cpu0"
                  for e in chrome["traceEvents"]))

    # -- instrumented micro-run -> RunReport
    from repro.experiments.runner import prototype_run_report

    report = prototype_run_report(n_cpus=2, utilization=0.4, scale=1_000,
                                  horizon_margin_s=12.0, label="self-check")
    payload = report.to_dict()
    required = ("sched_cycle_cycles", "queue_depth", "ipi_delivery_cycles",
                "sync_lock_wait_cycles", "bus_window_utilization",
                "icache_hit_rate")
    missing = [name for name in required if name not in payload["metrics"]]
    check("run report carries headline metrics", not missing,
          f"missing={missing}" if missing else f"{len(payload['metrics'])} families")
    sched = payload["metrics"].get("sched_cycle_cycles", {"series": []})
    check("scheduler cycles observed",
          sched["series"] and sched["series"][0]["count"] > 0)
    depths = payload["metrics"].get("queue_depth", {"series": []})
    cpus_covered = {row["labels"].get("cpu") for row in depths["series"]
                    if row["labels"].get("queue") == "local"}
    check("per-cpu queue depths present", cpus_covered == {"0", "1"},
          f"cpus={sorted(cpus_covered)}")
    check("report JSON parses back",
          json.loads(report.to_json())["label"] == "self-check")

    # -- TLM rung: transaction metrics + timed-block Perfetto track
    from repro import CLOCK_HZ, TICK
    from repro.simulators.tlm import TLMSimulator
    from repro.workloads.automotive import (
        AUTOMOTIVE_APERIODIC,
        automotive_bindings,
        build_automotive_taskset,
        prepare_taskset,
    )

    tlm_registry = MetricsRegistry()
    tlm_trace = TraceRecorder(sink=RingBufferSink(capacity=65_536))
    taskset = prepare_taskset(build_automotive_taskset(0.4, 2), 2, tick=TICK)
    arrival = int(1.0 * CLOCK_HZ)
    tlm = TLMSimulator(
        taskset, 2, tick=TICK,
        bindings=automotive_bindings(),
        aperiodic_arrivals={AUTOMOTIVE_APERIODIC: [arrival]},
        trace=tlm_trace, metrics=tlm_registry,
    )
    tlm.run(arrival + int(12.0 * CLOCK_HZ))
    tlm_snapshot = tlm_registry.snapshot()
    check("tlm metrics emitted",
          tlm_snapshot["tlm_transactions_total"]["series"][0]["value"] > 0
          and tlm_snapshot["tlm_calibration_residual"]["series"][0]["value"] > 0)
    tlm_chrome = trace_to_chrome(tlm_trace)
    tlm_slices = [e for e in tlm_chrome["traceEvents"]
                  if e["ph"] == "X" and e.get("cat") == "tlm"]
    check("tlm timed-block track exported",
          bool(tlm_slices)
          and all("contention_stretch" in s["args"] for s in tlm_slices)
          and any(e["ph"] == "M" and e["args"]["name"] == "tlm-cpu0"
                  for e in tlm_chrome["traceEvents"]),
          f"{len(tlm_slices)} block slice(s)")

    # -- span recorder invariants
    from repro.obs.spans import SpanRecorder, spans_from_jsonl

    recorder = SpanRecorder()
    with recorder.span("outer", k=1) as outer:
        with recorder.span("inner") as inner:
            recorder.event("mark", n=2)
    check("span ids monotonic, nesting parented",
          [s.span_id for s in recorder.spans] == [1, 2]
          and inner.parent_id == outer.span_id
          and outer.parent_id is None
          and all(s.end_s is not None and s.end_s >= s.start_s
                  for s in recorder.spans)
          and recorder.spans[1].events[0].name == "mark")
    with tempfile.TemporaryDirectory(prefix="repro-obs-spans-") as root:
        span_path = os.path.join(root, "spans.jsonl")
        recorder.write_jsonl(span_path)
        reloaded_spans = spans_from_jsonl(span_path)
        check("spans JSONL round-trip",
              [s.to_dict() for s in reloaded_spans]
              == [s.to_dict() for s in recorder.spans])

    # -- registry merge invariant (direct)
    def _fill(reg: MetricsRegistry, values) -> MetricsRegistry:
        for value in values:
            reg.counter("ops_total").inc()
            reg.histogram("cost", buckets=(10, 100)).observe(value)
            reg.gauge("last").set(value)
        return reg
    serial_reg = _fill(MetricsRegistry(), [5, 50, 500, 7])
    merged_reg = _fill(MetricsRegistry(), [5, 50])
    merged_reg.merge(_fill(MetricsRegistry(), [500, 7]))
    check("registry merge == serial bit-for-bit",
          merged_reg.to_json() == serial_reg.to_json())

    # -- cross-process sweep: workers=1 vs workers=2, merged telemetry
    from repro.experiments.runner import sweep
    from repro.perf.executor import Telemetry

    serial_t = Telemetry()
    serial_sweep = sweep(_probe_measure, {"x": [1, 2, 3, 4]},
                         max_workers=1, telemetry=serial_t)
    parallel_t = Telemetry()
    parallel_sweep = sweep(_probe_measure, {"x": [1, 2, 3, 4]},
                           max_workers=2, telemetry=parallel_t)
    check("cross-process merged metrics == serial bit-for-bit",
          parallel_t.metrics.to_json() == serial_t.metrics.to_json()
          and parallel_sweep.rows == serial_sweep.rows,
          f"{len(parallel_t.metrics.snapshot())} families")
    check("cross-process span structure == serial",
          parallel_t.spans.structure() == serial_t.spans.structure()
          and len(parallel_t.spans) == len(serial_t.spans) > 0,
          f"{len(parallel_t.spans)} span(s)")
    worker_labels = {s.process for s in parallel_t.spans} - {"main"}
    check("worker spans carry process labels",
          all(label.startswith("worker-") for label in worker_labels),
          f"labels={sorted(worker_labels)}")

    # -- perfetto: per-worker process tracks + cache hit/miss instants
    from repro.obs.perfetto import SPAN_PID_BASE, spans_to_events
    from repro.perf.cache import RunCache

    span_events = spans_to_events(list(parallel_t.spans))
    process_metas = {e["args"]["name"]: e["pid"] for e in span_events
                     if e["ph"] == "M" and e["name"] == "process_name"}
    check("perfetto span export: distinct per-worker process tracks",
          process_metas.get("main") == SPAN_PID_BASE
          and len(process_metas) >= 2
          and len(set(process_metas.values())) == len(process_metas),
          f"tracks={sorted(process_metas)}")

    with tempfile.TemporaryDirectory(prefix="repro-obs-ledger-") as root:
        cache = RunCache(os.path.join(root, "cache"))
        from repro.obs.ledger import Ledger

        ledger = Ledger(os.path.join(root, "ledger.jsonl"))
        cold_t = Telemetry()
        sweep(_probe_measure, {"x": [1, 2]}, cache=cache,
              cache_tag="obs-check", telemetry=cold_t, ledger=ledger)
        warm_t = Telemetry()
        warm = sweep(_probe_measure, {"x": [1, 2]}, cache=cache,
                     cache_tag="obs-check", telemetry=warm_t, ledger=ledger)
        warm_events = [e.name for s in warm_t.spans for e in s.events]
        check("cache hits/misses land as span events",
              [e.name for s in cold_t.spans for e in s.events]
              == ["cache_miss", "cache_miss"]
              and warm_events == ["cache_hit", "cache_hit"],
              f"warm={warm_events}")
        warm_chrome = spans_to_events(list(warm_t.spans))
        check("perfetto span export: cache instants on the sweep track",
              sum(1 for e in warm_chrome
                  if e["ph"] == "i" and e["name"] == "cache_hit") == 2)

        # -- ledger: append, read back, diff
        from repro.obs.ledger import diff_numeric

        entries = ledger.entries()
        check("ledger append/read round-trip",
              len(entries) == 2
              and all(e.kind == "sweep" and e.label == "obs-check"
                      and e.cells == 2 for e in entries)
              and entries[0].cache == {"hits": 0, "misses": 2, "hit_rate": 0.0}
              and entries[1].cache == {"hits": 2, "misses": 0, "hit_rate": 1.0},
              f"{len(entries)} entry(ies), corrupt={ledger.corrupt}")
        check("ledger digests stable across cache state",
              entries[0].metrics_digest and entries[0].config_hash
              and entries[0].config_hash == entries[1].config_hash)
        with open(ledger.path, "a") as handle:
            handle.write("{not json\n")
        survivors = ledger.entries()
        check("ledger tolerates corrupt lines",
              len(survivors) == 2 and ledger.corrupt == 1)

    report_diff = diff_numeric({"wall_time_s": 1.0, "events_per_s": 100},
                               {"wall_time_s": 2.0, "events_per_s": 100})
    check("diff flags bad-direction movement",
          report_diff["regressions"] == ["wall_time_s"])
    report_diff = diff_numeric({"wall_time_s": 2.0, "events_per_s": 100},
                               {"wall_time_s": 1.0, "events_per_s": 150})
    check("diff never flags improvements",
          report_diff["regressions"] == []
          and all(not row["regressed"] for row in report_diff["rows"]))

    # -- prometheus exposition round-trip (writer -> strict parser)
    from repro.obs.metrics import parse_prometheus_text

    exported = MetricsRegistry()
    exported.counter("reqs_total",
                     labels={"path": 'a"b\\c\nd'},
                     help='requests with "quotes"\nand newlines').inc(7)
    tricky = exported.histogram("lat_cycles", buckets=(10, 100))
    for value in (5, 50, 500):
        tricky.observe(value)
    parsed = parse_prometheus_text(exported.to_prometheus_text())
    counter_samples = parsed["reqs_total"]["samples"]
    bucket_rows = {labels: value
                   for name, labels, value in parsed["lat_cycles"]["samples"]
                   if name == "lat_cycles_bucket"}
    check("prometheus round-trip: escaped labels survive",
          counter_samples == [("reqs_total", (("path", 'a"b\\c\nd'),), 7.0)]
          and parsed["reqs_total"]["type"] == "counter",
          str(counter_samples))
    check("prometheus round-trip: histogram buckets and count",
          bucket_rows.get((("le", "+Inf"),)) == 3.0
          and any(name == "lat_cycles_count" and value == 3.0
                  for name, _, value in parsed["lat_cycles"]["samples"])
          and any(name == "lat_cycles_sum" and value == 555.0
                  for name, _, value in parsed["lat_cycles"]["samples"]),
          str(sorted(bucket_rows.items())))

    print(
        f"self-check: {'PASS' if not failures else 'FAIL'} "
        f"({len(failures)} failure(s))",
        file=out,
    )
    return 0 if not failures else 1


# --------------------------------------------------------------------- report
def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.runner import prototype_run_report
    from repro.obs.sinks import JsonlFileSink
    from repro.trace.recorder import TraceRecorder

    if args.perfetto and not args.trace_jsonl:
        print("--perfetto needs --trace-jsonl (the streamed events are "
              "the converter's input)", file=sys.stderr)
        return 1
    trace = None
    if args.trace_jsonl:
        trace = TraceRecorder(sink=JsonlFileSink(args.trace_jsonl))
    report = prototype_run_report(
        n_cpus=args.cpus,
        utilization=args.util,
        scale=args.scale,
        horizon_margin_s=args.horizon_margin,
        trace=trace,
    )
    if args.perfetto:
        from repro.obs.perfetto import write_chrome_trace
        from repro.obs.sinks import trace_from_jsonl

        write_chrome_trace(trace_from_jsonl(args.trace_jsonl), args.perfetto)
    # Write artefacts before printing anything: a broken stdout pipe
    # must not cost the run its report file.
    if args.out:
        report.write(args.out)
    if args.prometheus:
        print(report.summary())
    if args.out:
        print(f"run report written to {args.out}", file=sys.stderr)
    else:
        print(report.to_json())
    return 0


# -------------------------------------------------------------------- convert
def _load_trace(path: str):
    from repro.obs.sinks import trace_from_jsonl
    from repro.trace.export import trace_from_csv, trace_from_json

    if path.endswith(".jsonl"):
        return trace_from_jsonl(path)
    with open(path) as handle:
        text = handle.read()
    if path.endswith(".csv"):
        return trace_from_csv(text)
    return trace_from_json(text)


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.obs.sinks import event_to_dict
    from repro.trace.export import trace_to_csv, trace_to_json
    from repro.obs.perfetto import chrome_trace_json

    try:
        trace = _load_trace(args.trace)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"cannot load {args.trace}: {exc}", file=sys.stderr)
        return 1

    if args.to == "perfetto":
        text = chrome_trace_json(trace, clock_hz=args.clock_hz, indent=None) + "\n"
    elif args.to == "json":
        text = trace_to_json(trace, indent=2) + "\n"
    elif args.to == "csv":
        text = trace_to_csv(trace)
    else:  # jsonl
        text = "".join(
            json.dumps(event_to_dict(e), separators=(",", ":")) + "\n"
            for e in trace
        )

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"{len(trace.events)} events -> {args.out} ({args.to})",
              file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


# ------------------------------------------------------------- history / diff
def _cmd_history(args: argparse.Namespace) -> int:
    from repro.obs.ledger import Ledger, format_history

    ledger = Ledger(args.ledger or None)
    entries = ledger.entries()
    if args.kind:
        entries = [entry for entry in entries if entry.kind == args.kind]
    if args.last:
        entries = entries[-args.last:]
    print(format_history(entries, ledger.corrupt))
    return 0


def _entry_diffable(entry) -> dict:
    """The numeric surface of a ledger entry worth diffing.

    ``when``/``version`` are identity, not performance; everything
    else flattens into comparable scalars.
    """
    return {
        "wall_time_s": entry.wall_time_s,
        "cells": entry.cells,
        "cache": entry.cache or {},
        "results": entry.results,
    }


def _diff_source(spec: str, ledger) -> tuple:
    """Resolve one ``diff`` operand: a ledger index or a JSON file.

    ``-1`` is the newest ledger entry, ``-2`` the one before, matching
    the offsets ``repro-obs history`` prints; anything that is not an
    integer is read as a JSON results document (``BENCH_perf.json``,
    a RunReport, ...).
    """
    try:
        index = int(spec)
    except ValueError:
        with open(spec) as handle:
            return json.load(handle), spec
    entries = ledger.entries()
    if not entries:
        raise ValueError(f"ledger {ledger.path} has no entries")
    try:
        entry = entries[index]
    except IndexError:
        raise ValueError(
            f"ledger index {index} out of range ({len(entries)} entry(ies))"
        )
    label = f"[{index}] {entry.kind} {entry.label} @ {entry.timestamp()}"
    return _entry_diffable(entry), label


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs.ledger import Ledger, diff_numeric, format_diff

    ledger = Ledger(args.ledger or None)
    try:
        baseline, label_a = _diff_source(args.a, ledger)
        candidate, label_b = _diff_source(args.b, ledger)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot resolve diff operand: {exc}", file=sys.stderr)
        return 2
    report = diff_numeric(baseline, candidate, threshold=args.threshold)
    print(f"baseline : {label_a}")
    print(f"candidate: {label_b}")
    print(format_diff(report, verbose=args.verbose))
    return 1 if report["regressions"] else 0


# ----------------------------------------------------------------------- main
def build_parser() -> argparse.ArgumentParser:
    from repro import CLOCK_HZ

    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="observability: metrics registry snapshots, run reports, "
        "trace sink/format conversion (Perfetto, JSONL, CSV, JSON)",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="smoke-run the observability machinery on built-in fixtures and exit",
    )
    commands = parser.add_subparsers(dest="command")

    report = commands.add_parser(
        "report", help="run one instrumented prototype cell and emit its RunReport"
    )
    report.add_argument("--cpus", type=int, default=2)
    report.add_argument("--util", type=float, default=0.5)
    report.add_argument("--scale", type=int, default=1_000,
                        help="workload time divisor (1 = full size)")
    report.add_argument("--horizon-margin", type=float, default=17.0,
                        help="seconds simulated past the aperiodic arrival")
    report.add_argument("--out", default="",
                        help="write the report JSON here (default: stdout)")
    report.add_argument("--prometheus", action="store_true",
                        help="also print a human summary of the metric families")
    report.add_argument("--trace-jsonl", default="",
                        help="stream the full trace to this JSONL file")
    report.add_argument("--perfetto", default="",
                        help="also convert the streamed trace to a Perfetto file")
    report.set_defaults(func=_cmd_report)

    convert = commands.add_parser(
        "convert", help="re-encode a trace (json/csv/jsonl in) to "
        "perfetto/json/csv/jsonl"
    )
    convert.add_argument("trace", help="input trace (.json, .csv or .jsonl)")
    convert.add_argument("--to", choices=("perfetto", "json", "csv", "jsonl"),
                         default="perfetto")
    convert.add_argument("--out", default="", help="output file (default: stdout)")
    convert.add_argument("--clock-hz", type=int, default=CLOCK_HZ,
                         help="cycle clock for perfetto timestamps")
    convert.set_defaults(func=_cmd_convert)

    history = commands.add_parser(
        "history", help="list the persistent run ledger (newest last)"
    )
    history.add_argument("--last", type=int, default=0,
                         help="show only the newest N entries")
    history.add_argument("--kind", default="",
                         help="filter by entry kind (sweep/bench/figure4/...)")
    history.add_argument("--ledger", default="",
                         help="ledger file (default: $REPRO_LEDGER or "
                         ".repro/ledger.jsonl)")
    history.set_defaults(func=_cmd_history)

    diff = commands.add_parser(
        "diff", help="compare two runs (ledger indices like -1/-2, or JSON "
        "results files); exit 1 on regression"
    )
    diff.add_argument("a", help="baseline: ledger index or JSON file")
    diff.add_argument("b", help="candidate: ledger index or JSON file")
    diff.add_argument("--threshold", type=float, default=0.10,
                      help="relative movement flagged as regression "
                      "(default 0.10)")
    diff.add_argument("--ledger", default="",
                      help="ledger file (default: $REPRO_LEDGER or "
                      ".repro/ledger.jsonl)")
    diff.add_argument("--verbose", action="store_true",
                      help="show every shared metric, not just movers")
    diff.set_defaults(func=_cmd_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.self_check:
        return self_check()
    if not getattr(args, "command", None):
        parser.print_help(sys.stderr)
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
