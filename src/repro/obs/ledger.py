"""The persistent run ledger: an append-only history of experiment runs.

``BENCH_perf.json`` and ``RunReport`` files are snapshots -- each one
overwrites the last, so yesterday's numbers are gone.  The ledger is
the missing trajectory: one JSON line per sweep / benchmark / campaign
appended to ``.repro/ledger.jsonl`` (override with ``$REPRO_LEDGER``),
recording what ran, under which configuration hash and fidelity rung,
how long it took, how the run cache behaved, and a content digest of
the collected metrics.  ``repro-obs history`` lists it; ``repro-obs
diff`` compares two entries (or two ``BENCH_perf.json`` files) under
regression thresholds.

Appends are atomic the same way :class:`~repro.perf.cache.RunCache`
writes are: each entry is a single short ``O_APPEND`` write of one
complete line, so concurrent sweep processes interleave whole entries,
never torn ones, and a crashed run leaves at most its own unwritten
line.  Readers skip corrupt lines (counting them) instead of dying on
a truncated tail.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import __version__

__all__ = [
    "LedgerEntry",
    "Ledger",
    "DEFAULT_LEDGER_PATH",
    "LEDGER_ENV",
    "flatten_numeric",
    "diff_numeric",
    "format_history",
    "format_diff",
]

#: Environment variable overriding the default ledger file.
LEDGER_ENV = "REPRO_LEDGER"
#: Default ledger location (created on first append).
DEFAULT_LEDGER_PATH = os.path.join(".repro", "ledger.jsonl")


@dataclass
class LedgerEntry:
    """One recorded run."""

    #: What ran: ``sweep`` / ``figure4`` / ``bench`` / ``campaign`` / ...
    kind: str
    #: Human handle (the sweep's cache tag, the bench file, ...).
    label: str
    #: Content hash of everything that determined the run's outcome.
    config_hash: str = ""
    #: Fidelity rung, when the run picked one.
    fidelity: Optional[str] = None
    #: Host wall-clock cost of the whole run.
    wall_time_s: float = 0.0
    #: Number of cells / sections the run covered.
    cells: int = 0
    #: Run-cache share of the run ({hits, misses, hit_rate}), if cached.
    cache: Optional[Dict[str, Any]] = None
    #: Fingerprint of the collected metrics snapshot, if instrumented.
    metrics_digest: Optional[str] = None
    #: Scalar result columns worth diffing (events_per_s, speedups, ...).
    results: Dict[str, Any] = field(default_factory=dict)
    #: Seconds since the epoch at append time (wall clock, host-local).
    when: float = 0.0
    version: str = __version__

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "label": self.label,
            "config_hash": self.config_hash,
            "fidelity": self.fidelity,
            "wall_time_s": self.wall_time_s,
            "cells": self.cells,
            "cache": self.cache,
            "metrics_digest": self.metrics_digest,
            "results": self.results,
            "when": self.when,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "LedgerEntry":
        return cls(
            kind=row.get("kind", "?"),
            label=row.get("label", "?"),
            config_hash=row.get("config_hash", ""),
            fidelity=row.get("fidelity"),
            wall_time_s=row.get("wall_time_s", 0.0),
            cells=row.get("cells", 0),
            cache=row.get("cache"),
            metrics_digest=row.get("metrics_digest"),
            results=dict(row.get("results") or {}),
            when=row.get("when", 0.0),
            version=row.get("version", "?"),
        )

    def timestamp(self) -> str:
        """``YYYY-mm-dd HH:MM:SS`` local time of the append."""
        if not self.when:
            return "-"
        return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(self.when))


class Ledger:
    """Append-only JSONL run history with atomic whole-line appends."""

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None):
        if path is None:
            path = os.environ.get(LEDGER_ENV, DEFAULT_LEDGER_PATH)
        self.path = Path(path)
        #: Corrupt lines skipped by the last :meth:`entries` call.
        self.corrupt = 0

    def append(self, entry: LedgerEntry) -> LedgerEntry:
        """Record one entry (stamping ``when`` if unset) and return it."""
        if not entry.when:
            entry.when = time.time()
        line = json.dumps(entry.to_dict(), sort_keys=True,
                          separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # One O_APPEND write per entry: concurrent writers interleave
        # whole lines (same crash-safety stance as RunCache.put).
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        return entry

    def entries(self) -> List[LedgerEntry]:
        """Every readable entry, oldest first (corrupt lines counted)."""
        self.corrupt = 0
        rows: List[LedgerEntry] = []
        try:
            with open(self.path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rows.append(LedgerEntry.from_dict(json.loads(line)))
                    except (ValueError, TypeError, AttributeError):
                        self.corrupt += 1
        except OSError:
            return []
        return rows

    def tail(self, n: int) -> List[LedgerEntry]:
        return self.entries()[-n:] if n > 0 else []

    def __len__(self) -> int:
        return len(self.entries())


# --------------------------------------------------------------------- diffs
#: Key-name fragments where a *higher* value is better.
_HIGHER_IS_BETTER = ("events_per_s", "speedup", "hit_rate", "hits")
#: Key-name fragments where a *lower* value is better.
_LOWER_IS_BETTER = ("_s", "wall_time", "misses", "dropped", "put_errors",
                    "deviation", "deadline")


def _direction(key: str) -> int:
    """+1 when higher is better, -1 when lower is better, 0 neutral."""
    leaf = key.rsplit(".", 1)[-1]
    for fragment in _HIGHER_IS_BETTER:
        if fragment in leaf:
            return 1
    for fragment in _LOWER_IS_BETTER:
        if leaf.endswith(fragment) or fragment in leaf:
            return -1
    return 0


def flatten_numeric(obj: Any, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a nested dict/list as dotted-path -> value."""
    out: Dict[str, float] = {}
    if isinstance(obj, bool):
        return out
    if isinstance(obj, (int, float)):
        out[prefix or "value"] = float(obj)
        return out
    if isinstance(obj, dict):
        for key in sorted(obj, key=str):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(obj[key], path))
        return out
    if isinstance(obj, (list, tuple)):
        for index, item in enumerate(obj):
            path = f"{prefix}[{index}]" if prefix else f"[{index}]"
            out.update(flatten_numeric(item, path))
        return out
    return out


def diff_numeric(
    a: Dict[str, Any],
    b: Dict[str, Any],
    threshold: float = 0.10,
) -> Dict[str, Any]:
    """Compare the numeric leaves of two result documents.

    ``a`` is the baseline, ``b`` the candidate.  Every shared numeric
    path yields a row; a row *regresses* when it moves past
    ``threshold`` (relative) in its key's bad direction
    (``wall_time_s`` up, ``events_per_s`` down, ...); neutral keys are
    reported but never regress.  Returns ``{"rows": [...],
    "regressions": [...], "only_a": [...], "only_b": [...]}``.
    """
    flat_a = flatten_numeric(a)
    flat_b = flatten_numeric(b)
    rows: List[Dict[str, Any]] = []
    regressions: List[str] = []
    for key in sorted(set(flat_a) & set(flat_b)):
        before, after = flat_a[key], flat_b[key]
        if before == 0:
            delta = 0.0 if after == 0 else float("inf")
        else:
            delta = (after - before) / abs(before)
        direction = _direction(key)
        regressed = bool(
            direction and delta * direction < 0 and abs(delta) > threshold
        )
        rows.append({
            "key": key,
            "a": before,
            "b": after,
            "delta": delta,
            "direction": direction,
            "regressed": regressed,
        })
        if regressed:
            regressions.append(key)
    return {
        "rows": rows,
        "regressions": regressions,
        "only_a": sorted(set(flat_a) - set(flat_b)),
        "only_b": sorted(set(flat_b) - set(flat_a)),
        "threshold": threshold,
    }


# ---------------------------------------------------------------- rendering
def format_history(entries: Sequence[LedgerEntry], corrupt: int = 0) -> str:
    """One line per entry, newest last (the ``repro-obs history`` view)."""
    if not entries:
        return "(empty ledger)"
    lines = []
    for index, entry in enumerate(entries):
        offset = index - len(entries)  # -1 == newest
        cache = ""
        if entry.cache:
            cache = (f"  cache {entry.cache.get('hits', 0)}/"
                     f"{entry.cache.get('hits', 0) + entry.cache.get('misses', 0)}"
                     f" hit")
        fidelity = f"  {entry.fidelity}" if entry.fidelity else ""
        digest = f"  metrics {entry.metrics_digest[:8]}" if entry.metrics_digest else ""
        lines.append(
            f"[{offset:>3}] {entry.timestamp()}  {entry.kind:<9} "
            f"{entry.label:<24} {entry.cells:>4} cell(s) "
            f"{entry.wall_time_s:8.2f} s{fidelity}{cache}{digest}"
            f"  (v{entry.version}, cfg {entry.config_hash[:8] or '-'})"
        )
    if corrupt:
        lines.append(f"({corrupt} corrupt line(s) skipped)")
    return "\n".join(lines)


def format_diff(report: Dict[str, Any], verbose: bool = False) -> str:
    """Human rendering of a :func:`diff_numeric` report."""
    lines: List[str] = []
    shown = [row for row in report["rows"]
             if verbose or row["regressed"] or
             (row["direction"] != 0 and abs(row["delta"]) > report["threshold"])]
    for row in shown:
        if row["regressed"]:
            marker = "REGRESSED"
        elif row["delta"] == 0:
            marker = "unchanged"
        elif row["direction"] != 0:
            marker = "improved"
        else:
            marker = "changed"
        delta = row["delta"]
        delta_text = "inf" if delta == float("inf") else f"{delta:+.1%}"
        lines.append(
            f"  {row['key']}: {row['a']:g} -> {row['b']:g} "
            f"({delta_text}) {marker}"
        )
    if not shown:
        lines.append(f"  no movement beyond {report['threshold']:.0%} "
                     f"on {len(report['rows'])} shared metric(s)")
    for key in report["only_a"]:
        lines.append(f"  {key}: only in baseline")
    for key in report["only_b"]:
        lines.append(f"  {key}: only in candidate")
    verdict = (f"{len(report['regressions'])} regression(s) beyond "
               f"{report['threshold']:.0%}" if report["regressions"]
               else f"no regressions beyond {report['threshold']:.0%}")
    lines.append(f"diff: {verdict}")
    return "\n".join(lines)
