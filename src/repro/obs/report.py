"""Per-run observability artefacts (``RunReport``).

A :class:`RunReport` is the JSON artefact an instrumented run leaves
behind: the metrics-registry snapshot (scheduler-cycle latency,
queue depths, IPI latency, lock wait/hold times, per-peripheral
interrupt counts), kernel counters, bus utilization from the windowed
monitor, instruction-cache and run-cache hit rates, and a compact
trace summary.  ``experiments.runner.prototype_run_report`` builds
one for a Figure-4-style cell; ``repro-obs report`` is the CLI front
end.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional

from repro import __version__
from repro.obs.metrics import MetricsRegistry

__all__ = ["RunReport", "fold_bus_monitor", "fold_icaches", "fold_run_cache"]


def fold_bus_monitor(metrics: MetricsRegistry, monitor, prefix: str = "bus") -> None:
    """Fold a :class:`~repro.hw.monitor.BusMonitor`'s series into gauges
    and a per-window utilization histogram."""
    buckets = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
    histogram = metrics.histogram(
        f"{prefix}_window_utilization", buckets=buckets,
        help="per-window OPB busy fraction",
    )
    for sample in monitor.samples:
        histogram.observe(round(sample.utilization, 6))
    metrics.gauge(f"{prefix}_peak_utilization",
                  help="max windowed OPB utilization").set(
        round(monitor.peak_utilization(), 6))
    metrics.gauge(f"{prefix}_steady_state_utilization",
                  help="mean OPB utilization after warm-up").set(
        round(monitor.steady_state_utilization(), 6))


def fold_icaches(metrics: MetricsRegistry, caches: Iterable) -> None:
    """Per-cpu instruction-cache hit/miss counters and hit-rate gauges."""
    for cache in caches:
        labels = {"cpu": cache.cpu_id}
        metrics.counter("icache_hits_total", labels=labels,
                        help="instruction-cache hits").inc(cache.hits)
        metrics.counter("icache_misses_total", labels=labels,
                        help="instruction-cache misses").inc(cache.misses)
        metrics.gauge("icache_hit_rate", labels=labels,
                      help="instruction-cache hit fraction").set(
            round(cache.hit_rate, 6))


def fold_run_cache(metrics: MetricsRegistry, cache) -> None:
    """Hit/miss accounting of a :class:`~repro.perf.cache.RunCache`."""
    stats = cache.stats()
    metrics.counter("run_cache_hits_total",
                    help="experiment cells served from the run cache").inc(stats["hits"])
    metrics.counter("run_cache_misses_total",
                    help="experiment cells computed fresh").inc(stats["misses"])
    metrics.gauge("run_cache_hit_rate",
                  help="run-cache hit fraction").set(stats["hit_rate"])


@dataclass
class RunReport:
    """One run's observability artefact."""

    label: str
    params: Dict[str, Any] = field(default_factory=dict)
    kernel: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    trace: Dict[str, Any] = field(default_factory=dict)
    #: Watchdog-detected deadline misses (first-class robustness
    #: signal; mirrors ``kernel["deadline_misses"]`` for consumers
    #: that only read the report surface).
    deadline_misses: int = 0
    version: str = __version__

    @classmethod
    def build(
        cls,
        label: str,
        registry: MetricsRegistry,
        params: Optional[Dict[str, Any]] = None,
        kernel_stats: Optional[Dict[str, Any]] = None,
        trace=None,
    ) -> "RunReport":
        """Assemble a report from a registry and optional extras.

        ``trace`` may be a :class:`~repro.trace.recorder.TraceRecorder`;
        only a summary (event counts by kind, emitted/retained totals)
        lands in the report -- full traces are exported separately
        (JSONL sink, Perfetto converter).
        """
        trace_summary: Dict[str, Any] = {}
        if trace is not None:
            retained = trace.events
            by_kind: Dict[str, int] = {}
            for event in retained:
                by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
            # ``retained`` counts what is still queryable, which for a
            # streaming sink is zero even though everything was written.
            trace_summary = {
                "emitted": trace.sink.emitted,
                "retained": len(retained),
                "by_kind": dict(sorted(by_kind.items())),
            }
            # Sink-specific loss/volume accounting, surfaced only when
            # the sink keeps it: ring-buffer overflow (events emitted
            # but pushed out of the retained window) and streamed bytes.
            dropped = getattr(trace.sink, "dropped", None)
            if dropped is not None:
                trace_summary["dropped"] = dropped
            bytes_written = getattr(trace.sink, "bytes_written", None)
            if bytes_written is not None:
                trace_summary["bytes_written"] = bytes_written
        kernel = dict(kernel_stats or {})
        return cls(
            label=label,
            params=dict(params or {}),
            kernel=kernel,
            metrics=registry.snapshot(),
            trace=trace_summary,
            deadline_misses=int(kernel.get("deadline_misses", 0)),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "version": self.version,
            "params": self.params,
            "kernel": self.kernel,
            "metrics": self.metrics,
            "trace": self.trace,
            "deadline_misses": self.deadline_misses,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    # ------------------------------------------------------------- convenience
    def metric(self, name: str) -> Dict[str, Any]:
        """One metric family from the snapshot (KeyError when absent)."""
        return self.metrics[name]

    def summary(self) -> str:
        """A one-screen human rendering (used by the CLI)."""
        lines = [f"run report: {self.label} (repro {self.version})"]
        if self.params:
            lines.append("  params : " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.params.items())))
        if self.kernel:
            lines.append("  kernel : " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.kernel.items())))
        for name in sorted(self.metrics):
            family = self.metrics[name]
            for series in family["series"]:
                labels = ",".join(f"{k}={v}" for k, v in sorted(series["labels"].items()))
                label_text = f"{{{labels}}}" if labels else ""
                if family["type"] == "histogram":
                    value = (f"count={series['count']} mean={series['mean']}"
                             f" max={series['max']}")
                else:
                    value = str(series["value"])
                lines.append(f"  {name}{label_text}: {value}")
        if self.trace:
            extras = ""
            if self.trace.get("dropped"):
                extras += f", {self.trace['dropped']} dropped"
            if self.trace.get("bytes_written") is not None:
                extras += f", {self.trace['bytes_written']} byte(s) streamed"
            lines.append(f"  trace  : {self.trace['emitted']} events emitted, "
                         f"{self.trace['retained']} retained{extras}")
        return "\n".join(lines)
