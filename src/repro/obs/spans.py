"""Deterministic span tracing for the experiment pipeline.

Where :mod:`repro.trace.recorder` records what happens *inside* a
simulated SoC (cycle-timestamped schedule events), this module records
what happens *around* it: the host-side experiment pipeline.  A
:class:`Span` covers one pipeline stage -- ``sweep`` -> ``cell`` ->
``measure`` -> ``simulate`` -- with wall-clock bounds, free-form
attributes, point-in-time :class:`SpanEvent` annotations (run-cache
hits and misses land here), and an explicit parent link.

Design constraints, mirroring the metrics registry:

- **Deterministic identity.**  Span ids are small monotonic integers
  assigned in ``begin()`` order, never random: two identical runs
  produce identical id sequences, and :meth:`SpanRecorder.structure`
  strips the remaining wall-clock noise so serial and parallel runs of
  the same sweep can be compared structurally bit for bit.
- **Cross-process capture.**  A worker process records into its own
  recorder and ships the rows home (they are plain dicts);
  :meth:`SpanRecorder.graft` re-ids them into the parent recorder in
  chunk order -- deterministic again -- re-parenting the worker's root
  spans under the parent's current span and tagging every grafted span
  with the worker's process label.
- **JSONL-serialisable.**  One span per line via
  :meth:`SpanRecorder.write_jsonl` / :func:`spans_from_jsonl`, the
  same shape :mod:`repro.obs.perfetto` renders as per-worker process
  tracks.

Spans are **off by default** everywhere: pipeline code only records
when a recorder was explicitly passed in (through
:class:`repro.perf.executor.Telemetry`), so the uninstrumented hot
path pays nothing beyond one ``is None`` check per *cell*, not per
event.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Span",
    "SpanEvent",
    "SpanRecorder",
    "spans_from_jsonl",
]


@dataclass
class SpanEvent:
    """A point-in-time annotation attached to a span (e.g. a cache hit)."""

    time_s: float
    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"time_s": self.time_s, "name": self.name, "attrs": self.attrs}

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "SpanEvent":
        return cls(time_s=row["time_s"], name=row["name"],
                   attrs=dict(row.get("attrs") or {}))


@dataclass
class Span:
    """One pipeline stage: id, explicit parent link, bounds, attributes."""

    span_id: int
    name: str
    parent_id: Optional[int] = None
    start_s: float = 0.0
    end_s: Optional[float] = None
    #: Which process recorded the span ("main", or a worker label).
    process: str = "main"
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "process": self.process,
            "attrs": self.attrs,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "Span":
        return cls(
            span_id=row["span_id"],
            name=row["name"],
            parent_id=row.get("parent_id"),
            start_s=row.get("start_s", 0.0),
            end_s=row.get("end_s"),
            process=row.get("process", "main"),
            attrs=dict(row.get("attrs") or {}),
            events=[SpanEvent.from_dict(e) for e in row.get("events") or []],
        )


class SpanRecorder:
    """Append-only span log with a current-span stack for implicit parenting."""

    def __init__(self, process: Optional[str] = None):
        #: Default process label stamped on spans begun by this recorder.
        self.process = process if process is not None else "main"
        self.spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._stack: List[Span] = []
        self._next_id = 1

    # --------------------------------------------------------------- recording
    def begin(self, name: str, parent_id: Optional[int] = None,
              **attrs: Any) -> Span:
        """Open a span; the parent defaults to the innermost open span."""
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        span = Span(
            span_id=self._next_id,
            name=name,
            parent_id=parent_id,
            start_s=time.time(),
            process=self.process,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        self._stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close ``span`` (and any unclosed children, innermost first)."""
        while self._stack:
            top = self._stack.pop()
            if top.end_s is None:
                top.end_s = time.time()
            if top is span:
                break
        else:
            if span.end_s is None:
                span.end_s = time.time()
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """``with recorder.span("cell", x=3):`` -- begin/end as a block."""
        opened = self.begin(name, **attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    def event(self, name: str, **attrs: Any) -> Optional[SpanEvent]:
        """Annotate the innermost open span (no-op when none is open)."""
        if not self._stack:
            return None
        event = SpanEvent(time_s=time.time(), name=name, attrs=attrs)
        self._stack[-1].events.append(event)
        return event

    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # ----------------------------------------------------------- cross-process
    def graft(
        self,
        rows: Iterable[Union[Span, Dict[str, Any]]],
        process: str,
        parent_id: Optional[int] = None,
    ) -> List[Span]:
        """Adopt spans recorded in another process.

        Every grafted span gets a fresh monotonic id from *this*
        recorder (so ids stay unique and deterministic given call
        order), parent links *within* the grafted batch are remapped,
        the batch's root spans are re-parented under ``parent_id``
        (default: this recorder's innermost open span), and every span
        is stamped with the worker's ``process`` label.
        """
        if parent_id is None and self._stack:
            parent_id = self._stack[-1].span_id
        batch = [row if isinstance(row, Span) else Span.from_dict(row)
                 for row in rows]
        id_map: Dict[int, int] = {}
        grafted: List[Span] = []
        for span in batch:
            id_map[span.span_id] = self._next_id
            self._next_id += 1
        for span in batch:
            span.span_id = id_map[span.span_id]
            span.parent_id = (
                id_map[span.parent_id]
                if span.parent_id in id_map
                else parent_id
            )
            span.process = process
            self.spans.append(span)
            self._by_id[span.span_id] = span
            grafted.append(span)
        return grafted

    # ------------------------------------------------------------------ export
    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def get(self, span_id: int) -> Optional[Span]:
        return self._by_id.get(span_id)

    def of_name(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def to_rows(self) -> List[Dict[str, Any]]:
        """Plain-dict rows in id order (the cross-process wire format)."""
        return [span.to_dict() for span in self.spans]

    def structure(self) -> List[Tuple]:
        """Wall-clock- and worker-free view for determinism comparisons.

        Each span reduces to ``(name, parent_position, sorted_attrs,
        event_structure)`` where ``parent_position`` is the parent's
        index in the span list (None for roots) -- so a serial run and
        a parallel run of the same pipeline compare equal even though
        their ids, timestamps and process labels differ.
        """
        positions = {span.span_id: index
                     for index, span in enumerate(self.spans)}

        def attr_items(attrs: Dict[str, Any]) -> Tuple:
            return tuple(sorted((str(k), str(v)) for k, v in attrs.items()))

        return [
            (
                span.name,
                positions.get(span.parent_id),
                attr_items(span.attrs),
                tuple((event.name, attr_items(event.attrs))
                      for event in span.events),
            )
            for span in self.spans
        ]

    def write_jsonl(self, path: Union[str, os.PathLike]) -> None:
        """One span per line, id order."""
        with open(path, "w") as handle:
            for span in self.spans:
                json.dump(span.to_dict(), handle, separators=(",", ":"),
                          sort_keys=True)
                handle.write("\n")


def spans_from_jsonl(path: Union[str, os.PathLike]) -> List[Span]:
    """Reload spans written by :meth:`SpanRecorder.write_jsonl`."""
    spans: List[Span] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans
