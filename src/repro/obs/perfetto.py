"""Chrome trace-event / Perfetto JSON export.

Converts a schedule trace into the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``ui.perfetto.dev`` and ``chrome://tracing``:

- every cpu becomes a track (pid 0 = "soc", tid = cpu index, named
  ``cpu0`` ... ``cpuN``);
- job execution is reconstructed from ``dispatch`` ->
  ``preempt``/``finish``/``idle`` into complete-duration (``"X"``)
  slices on the cpu's track;
- ``irq``/``tick``/``acquire``/``unlock``/``barrier`` become
  thread-scoped instant events on their cpu track;
- cpu-less scheduler events (``release``/``promote``) land on a
  dedicated ``scheduler`` track so job arrivals line up visually with
  the execution slices they trigger;
- TLM timed blocks (``tlm_block``, emitted by
  :mod:`repro.simulators.tlm`) become slices on per-cpu ``tlm-cpuN``
  tracks, annotated with the block's nominal cycles and the
  contention stretch factor applied to them.

Timestamps are microseconds (the format's unit), converted from
integer cycles at ``clock_hz`` (default: the 50 MHz prototype clock).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro import CLOCK_HZ
from repro.obs.spans import Span
from repro.trace.recorder import TraceEvent, TraceRecorder

__all__ = ["trace_to_chrome", "chrome_trace_json", "write_chrome_trace",
           "spans_to_events"]

#: Kinds rendered as instants on their cpu track.
INSTANT_KINDS = ("irq", "tick", "promote", "release", "migrate",
                 "acquire", "unlock", "barrier", "access",
                 "fault_injected", "fault", "deadline_miss", "retry",
                 "shed", "degrade")

#: The pid all tracks live under.
SOC_PID = 0
#: Synthetic tid for cpu-less scheduler events.
SCHEDULER_TID = 1_000
#: Base tid of the per-cpu TLM timed-block tracks (tid = base + cpu).
TLM_TID_BASE = 2_000
#: Base pid of the per-worker pipeline-span process tracks.  The SoC's
#: cycle-time tracks stay under pid 0; host-side spans (sweep / cell /
#: measure / simulate, recorded per worker process) each get their own
#: pid so Perfetto shows one process group per worker.
SPAN_PID_BASE = 100


def _meta(name: str, tid: int, value: str) -> Dict[str, Any]:
    return {"ph": "M", "pid": SOC_PID, "tid": tid, "name": name,
            "args": {"name": value}}


def _tlm_slice(event: TraceEvent, scale: float) -> Dict[str, Any]:
    """One TLM timed block -> a complete slice on the cpu's TLM track.

    ``tlm_block`` events mark the *end* of a block and carry
    ``start=<cycle> nominal=<cycles> stretch=<factor>`` in ``info``
    (the stretch is the contention adjustment applied to the nominal
    cycles).  A malformed/missing field degrades to a zero-length
    slice at the event instant rather than dropping the block.
    """
    fields: Dict[str, str] = {}
    for part in (event.info or "").split():
        key, _, value = part.partition("=")
        fields[key] = value
    try:
        start = int(fields.get("start", ""))
    except ValueError:
        start = event.time
    start = min(start, event.time)
    args: Dict[str, Any] = {"start_cycle": start, "end_cycle": event.time}
    if "nominal" in fields:
        args["nominal_cycles"] = fields["nominal"]
    if "stretch" in fields:
        args["contention_stretch"] = fields["stretch"]
    return {
        "ph": "X",
        "name": event.job or "?",
        "cat": "tlm",
        "pid": SOC_PID,
        "tid": TLM_TID_BASE + (event.cpu or 0),
        "ts": start * scale,
        "dur": (event.time - start) * scale,
        "args": args,
    }


def spans_to_events(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """Pipeline spans -> trace events on per-worker process tracks.

    Each distinct ``span.process`` label ("main" first, then worker
    labels sorted) becomes its own Chrome process (pid
    ``SPAN_PID_BASE + index``) so a parallel sweep renders as one track
    group per worker.  Spans become complete (``"X"``) slices --
    wall-clock timestamps are rebased to the earliest span start --
    and span events (cache hits/misses, ...) become instants on the
    same track.
    """
    spans = list(spans)
    if not spans:
        return []
    labels = sorted({span.process for span in spans},
                    key=lambda label: (label != "main", label))
    pids = {label: SPAN_PID_BASE + index
            for index, label in enumerate(labels)}
    t0 = min(span.start_s for span in spans)
    t_end = max([span.end_s or span.start_s for span in spans]
                + [event.time_s for span in spans for event in span.events])

    out: List[Dict[str, Any]] = []
    for label in labels:
        out.append({"ph": "M", "pid": pids[label], "tid": 0,
                    "name": "process_name", "args": {"name": label}})
        out.append({"ph": "M", "pid": pids[label], "tid": 0,
                    "name": "thread_name", "args": {"name": "pipeline"}})
    for span in spans:
        pid = pids[span.process]
        start = span.start_s
        end = span.end_s if span.end_s is not None else t_end
        args: Dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update({str(k): v for k, v in span.attrs.items()})
        out.append({
            "ph": "X",
            "name": span.name,
            "cat": "span",
            "pid": pid,
            "tid": 0,
            "ts": (start - t0) * 1e6,
            "dur": max(0.0, (end - start) * 1e6),
            "args": args,
        })
        for event in span.events:
            out.append({
                "ph": "i",
                "name": event.name,
                "cat": "span_event",
                "pid": pid,
                "tid": 0,
                "ts": (event.time_s - t0) * 1e6,
                "s": "t",
                "args": {"span_id": span.span_id,
                         **{str(k): v for k, v in event.attrs.items()}},
            })
    return out


def trace_to_chrome(
    trace: Union[TraceRecorder, Iterable[TraceEvent]],
    clock_hz: int = CLOCK_HZ,
    horizon: Optional[int] = None,
    spans: Optional[Sequence[Span]] = None,
) -> Dict[str, Any]:
    """Render a trace as a Chrome trace-event dictionary.

    ``horizon`` (cycles) closes any execution slice still open at the
    end of the trace; it defaults to the last event time.
    """
    if clock_hz <= 0:
        raise ValueError("clock_hz must be positive")
    events = sorted(trace, key=lambda e: e.time)
    scale = 1e6 / clock_hz  # cycles -> microseconds

    out: List[Dict[str, Any]] = [_meta("process_name", 0, "soc")]
    cpus = sorted({e.cpu for e in events if e.cpu is not None})
    for cpu in cpus:
        out.append(_meta("thread_name", cpu, f"cpu{cpu}"))
    if any(e.cpu is None for e in events):
        out.append(_meta("thread_name", SCHEDULER_TID, "scheduler"))
    tlm_cpus = sorted(
        {e.cpu for e in events if e.kind == "tlm_block" and e.cpu is not None}
    )
    for cpu in tlm_cpus:
        out.append(_meta("thread_name", TLM_TID_BASE + cpu, f"tlm-cpu{cpu}"))

    last = max((e.time for e in events), default=0)
    end_of_trace = last if horizon is None else max(horizon, last)

    open_run: Dict[int, TraceEvent] = {}

    def close_slice(cpu: int, end: int) -> None:
        started = open_run.pop(cpu, None)
        if started is None or end <= started.time:
            return
        out.append({
            "ph": "X",
            "name": started.job or "?",
            "cat": "exec",
            "pid": SOC_PID,
            "tid": cpu,
            "ts": started.time * scale,
            "dur": (end - started.time) * scale,
            "args": {"start_cycle": started.time, "end_cycle": end},
        })

    for event in events:
        if event.kind == "dispatch" and event.cpu is not None:
            close_slice(event.cpu, event.time)
            open_run[event.cpu] = event
        elif event.kind in ("preempt", "finish", "idle") and event.cpu is not None:
            close_slice(event.cpu, event.time)
        elif event.kind == "tlm_block" and event.cpu is not None:
            out.append(_tlm_slice(event, scale))

        if event.kind in INSTANT_KINDS:
            tid = event.cpu if event.cpu is not None else SCHEDULER_TID
            args: Dict[str, Any] = {"cycle": event.time}
            if event.job:
                args["job"] = event.job
            if event.info:
                args["info"] = event.info
            name = event.kind if not event.job else f"{event.kind} {event.job}"
            out.append({
                "ph": "i",
                "name": name,
                "cat": event.kind,
                "pid": SOC_PID,
                "tid": tid,
                "ts": event.time * scale,
                "s": "t" if event.cpu is not None else "p",
                "args": args,
            })

    for cpu in sorted(open_run):
        close_slice(cpu, end_of_trace)

    if spans:
        out.extend(spans_to_events(spans))

    return {"traceEvents": out, "displayTimeUnit": "ms",
            "metadata": {"clock_hz": clock_hz}}


def chrome_trace_json(
    trace: Union[TraceRecorder, Iterable[TraceEvent]],
    clock_hz: int = CLOCK_HZ,
    horizon: Optional[int] = None,
    indent: Optional[int] = None,
    spans: Optional[Sequence[Span]] = None,
) -> str:
    """The exporter's JSON text (what ``repro-obs convert`` writes)."""
    return json.dumps(trace_to_chrome(trace, clock_hz=clock_hz, horizon=horizon,
                                      spans=spans),
                      indent=indent)


def write_chrome_trace(
    trace: Union[TraceRecorder, Iterable[TraceEvent]],
    path: str,
    clock_hz: int = CLOCK_HZ,
    horizon: Optional[int] = None,
    spans: Optional[Sequence[Span]] = None,
) -> None:
    """Write a Perfetto-loadable trace file."""
    with open(path, "w") as handle:
        handle.write(chrome_trace_json(trace, clock_hz=clock_hz, horizon=horizon,
                                       spans=spans))
        handle.write("\n")
