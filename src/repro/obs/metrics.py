"""The metrics registry: counters, gauges and fixed-bucket histograms.

Every instrument belongs to a *family* (one metric name, one type, one
help string) and is addressed by an optional label set, so the same
``queue_depth`` histogram can carry per-cpu series and the same
``mpic_delivered_total`` counter can carry per-peripheral series::

    registry = MetricsRegistry()
    registry.counter("irqs_total", labels={"kind": "timer"}).inc()
    registry.histogram("sched_cycle_cycles", buckets=SCHED_BUCKETS).observe(420)

Design constraints, in order:

- **Zero cost when absent.**  Components take ``metrics=None`` and
  guard every observation with one ``is not None`` check; the hot
  paths of an uninstrumented run never touch this module.
- **Cheap when present.**  ``counter()``/``gauge()``/``histogram()``
  return the instrument object; callers look it up once (at wiring
  time) and then call bound methods (``inc``/``set``/``observe``)
  with no dict lookup per event.
- **Deterministic export.**  :meth:`MetricsRegistry.snapshot` renders
  families and series in sorted order so two identical runs produce
  byte-identical JSON / Prometheus text.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_CYCLE_BUCKETS",
    "DEFAULT_DEPTH_BUCKETS",
    "parse_prometheus_text",
]

#: Bucket upper bounds for cycle-latency histograms (log-ish spacing
#: from a register access to a full scheduling tick).
DEFAULT_CYCLE_BUCKETS = (
    10, 30, 100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 1_000_000
)

#: Bucket upper bounds for queue-depth histograms.
DEFAULT_DEPTH_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64)

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Optional[Mapping[str, Any]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Exposition-format label-value escaping (backslash, quote, newline)."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """HELP-line escaping (backslash and newline only, per the format)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_text(labels: LabelSet, extra: str = "") -> str:
    parts = [f'{key}="{_escape_label_value(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, utilization)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with cumulative-bucket export.

    ``buckets`` are inclusive upper bounds in increasing order; an
    implicit ``+Inf`` bucket catches the overflow, so ``observe``
    never loses a sample.
    """

    __slots__ = ("buckets", "counts", "overflow", "total", "count",
                 "minimum", "maximum")

    def __init__(self, buckets: Sequence[float]):
        bounds = tuple(buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        self.buckets = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.total = 0.0
        self.count = 0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(le, cumulative_count)`` pairs, Prometheus-style."""
        pairs: List[Tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            text = str(int(bound)) if float(bound).is_integer() else str(bound)
            pairs.append((text, running))
        pairs.append(("+Inf", running + self.overflow))
        return pairs

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's samples in (bucket bounds must match)."""
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.overflow += other.overflow
        self.total += other.total
        self.count += other.count
        if other.minimum is not None:
            self.minimum = (other.minimum if self.minimum is None
                            else min(self.minimum, other.minimum))
        if other.maximum is not None:
            self.maximum = (other.maximum if self.maximum is None
                            else max(self.maximum, other.maximum))


class _Family:
    """All series of one metric name (one type, shared histogram buckets)."""

    __slots__ = ("name", "kind", "help", "buckets", "series")

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: Optional[Sequence[float]] = None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = tuple(buckets) if buckets is not None else None
        self.series: Dict[LabelSet, Any] = {}


class MetricsRegistry:
    """Names instruments, owns their storage, renders exports."""

    def __init__(self):
        self._families: Dict[str, _Family] = {}

    # ----------------------------------------------------------- instruments
    def counter(self, name: str, labels: Optional[Mapping[str, Any]] = None,
                help: str = "") -> Counter:
        return self._series(name, "counter", labels, help, Counter)

    def gauge(self, name: str, labels: Optional[Mapping[str, Any]] = None,
              help: str = "") -> Gauge:
        return self._series(name, "gauge", labels, help, Gauge)

    def histogram(self, name: str, buckets: Sequence[float] = DEFAULT_CYCLE_BUCKETS,
                  labels: Optional[Mapping[str, Any]] = None,
                  help: str = "") -> Histogram:
        family = self._family(name, "histogram", help, buckets=buckets)
        if family.buckets != tuple(buckets):
            raise ValueError(
                f"{name}: histogram family registered with buckets "
                f"{family.buckets}, got {tuple(buckets)}"
            )
        key = _labelset(labels)
        series = family.series.get(key)
        if series is None:
            series = family.series[key] = Histogram(buckets)
        return series

    def _family(self, name: str, kind: str, help_text: str,
                buckets: Optional[Sequence[float]] = None) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(name, kind, help_text, buckets)
        elif family.kind != kind:
            raise ValueError(
                f"{name} already registered as {family.kind}, not {kind}"
            )
        if help_text and not family.help:
            family.help = help_text
        return family

    def _series(self, name: str, kind: str, labels, help_text: str, factory):
        family = self._family(name, kind, help_text)
        key = _labelset(labels)
        series = family.series.get(key)
        if series is None:
            series = family.series[key] = factory()
        return series

    # ------------------------------------------------------------------ merge
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's series into this one.

        The merge rule per instrument type is chosen so that merging
        per-worker registries **in submission (chunk) order** reproduces
        the serial run's registry bit for bit:

        - counters add (grouping never changes an integer sum);
        - histograms add counts/sum/min/max (exact for the
          integer-valued cycle/count observations the pipeline emits);
        - gauges take the incoming value -- last writer wins in merge
          order, which is the serial program order.

        A name registered with a different type, or a histogram family
        with different buckets, raises ``ValueError``.  Returns
        ``self`` so merges chain.
        """
        for name in sorted(other._families):
            theirs = other._families[name]
            family = self._family(name, theirs.kind, theirs.help,
                                  buckets=theirs.buckets)
            if family.buckets is None and theirs.buckets is not None:
                family.buckets = theirs.buckets
            for key in sorted(theirs.series):
                instrument = theirs.series[key]
                if theirs.kind == "histogram":
                    mine = family.series.get(key)
                    if mine is None:
                        mine = family.series[key] = Histogram(instrument.buckets)
                    mine.merge(instrument)
                elif theirs.kind == "counter":
                    mine = family.series.get(key)
                    if mine is None:
                        mine = family.series[key] = Counter()
                    mine.value += instrument.value
                else:  # gauge: last writer (merge order) wins
                    mine = family.series.get(key)
                    if mine is None:
                        mine = family.series[key] = Gauge()
                    mine.value = instrument.value
        return self

    # ----------------------------------------------------------------- export
    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view: ``{name: {type, help, series: [...]}}``."""
        out: Dict[str, Any] = {}
        for name in sorted(self._families):
            family = self._families[name]
            series_rows = []
            for key in sorted(family.series):
                instrument = family.series[key]
                row: Dict[str, Any] = {"labels": dict(key)}
                if family.kind == "histogram":
                    row.update(
                        count=instrument.count,
                        sum=instrument.total,
                        mean=round(instrument.mean, 4),
                        min=instrument.minimum,
                        max=instrument.maximum,
                        buckets={le: n for le, n in instrument.cumulative()},
                    )
                else:
                    row["value"] = instrument.value
                series_rows.append(row)
            out[name] = {"type": family.kind, "help": family.help,
                         "series": series_rows}
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus_text(self) -> str:
        """Prometheus exposition format (text/plain version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.series):
                instrument = family.series[key]
                if family.kind == "histogram":
                    for le, cum in instrument.cumulative():
                        le_pair = 'le="%s"' % le
                        lines.append(
                            f"{name}_bucket{_label_text(key, le_pair)} {cum}"
                        )
                    lines.append(f"{name}_sum{_label_text(key)} {instrument.total}")
                    lines.append(f"{name}_count{_label_text(key)} {instrument.count}")
                else:
                    value = instrument.value
                    if isinstance(value, float) and value.is_integer():
                        value = int(value)
                    lines.append(f"{name}{_label_text(key)} {value}")
        return "\n".join(lines) + ("\n" if lines else "")


# ------------------------------------------------------------------- parsing
#: One sample line: ``name{labels} value`` (labels optional).
_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>.*)\})?'
    r'\s+(?P<value>\S+)\s*$'
)
#: One ``key="value"`` pair inside a label set (value may hold escapes).
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _unescape_label_value(value: str) -> str:
    # Left-to-right scan: sequential str.replace would corrupt values
    # containing a literal backslash-n (r"\\n" must stay "\n"-literal,
    # not become a newline).
    out: List[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            follow = value[index + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(
                follow, "\\" + follow))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse exposition-format text back into a families dict.

    A strict scrape-side reader for round-trip tests and the ledger:
    returns ``{family: {"type", "help", "samples": [(name, labels,
    value)]}}`` where ``name`` keeps its ``_bucket``/``_sum``/
    ``_count`` suffix and ``labels`` is a sorted tuple of pairs.
    Malformed lines raise ``ValueError`` -- an export a parser cannot
    read is a bug, not noise.
    """
    families: Dict[str, Dict[str, Any]] = {}

    def family_for(name: str) -> Dict[str, Any]:
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                break
        return families.setdefault(
            base, {"type": "untyped", "help": "", "samples": []}
        )

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )["help"] = _unescape_label_value(help_text)
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )["type"] = kind
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: unparsable sample {line!r}")
        labels: List[Tuple[str, str]] = []
        label_text = match.group("labels")
        if label_text:
            consumed = 0
            for pair in _LABEL_RE.finditer(label_text):
                labels.append((pair.group("key"),
                               _unescape_label_value(pair.group("value"))))
                consumed = pair.end()
            leftover = label_text[consumed:].strip().strip(",").strip()
            if leftover:
                raise ValueError(
                    f"line {lineno}: unparsable label text {leftover!r}"
                )
        raw = match.group("value")
        if raw == "+Inf":
            value: float = float("inf")
        elif raw == "-Inf":
            value = float("-inf")
        else:
            value = float(raw)
        family_for(match.group("name"))["samples"].append(
            (match.group("name"), tuple(sorted(labels)), value)
        )
    return families
