"""Trace sinks beyond the in-memory list.

The :class:`~repro.trace.recorder.TraceRecorder` API stays the single
entry point for emitting events; these sinks change where the events
go:

- :class:`RingBufferSink` -- bounded memory, keeps the *last* N events
  (flight-recorder style: when something goes wrong at the end of a
  long run, the tail is what you want);
- :class:`JsonlFileSink` -- streams one JSON object per line to a
  file, so a full-horizon sweep can trace every event without O(events)
  memory; reload with :func:`trace_from_jsonl`.

``ListSink`` (the historical default) is re-exported for symmetry.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import IO, List, Optional, Union

from repro.trace.recorder import ListSink, TraceEvent, TraceRecorder, TraceSink

__all__ = [
    "ListSink",
    "RingBufferSink",
    "JsonlFileSink",
    "event_to_dict",
    "event_from_dict",
    "trace_from_jsonl",
]


def event_to_dict(event: TraceEvent) -> dict:
    """Stable-key-order dictionary for one event."""
    return {
        "time": event.time,
        "kind": event.kind,
        "job": event.job,
        "cpu": event.cpu,
        "info": event.info,
    }


def event_from_dict(row: dict) -> TraceEvent:
    return TraceEvent(
        time=row["time"],
        kind=row["kind"],
        job=row.get("job"),
        cpu=row.get("cpu"),
        info=row.get("info"),
    )


class RingBufferSink(TraceSink):
    """Keeps the most recent ``capacity`` events; older ones drop."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        super().__init__()
        self.capacity = capacity
        self._ring: "deque[TraceEvent]" = deque(maxlen=capacity)

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring so far."""
        return self.emitted - len(self._ring)

    def emit(self, event: TraceEvent) -> None:
        self.emitted += 1
        self._ring.append(event)

    def retained(self) -> List[TraceEvent]:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


class JsonlFileSink(TraceSink):
    """Streams events to a JSON-lines file, one object per line.

    Usable as a context manager; :meth:`close` is idempotent and also
    reachable through ``TraceRecorder.close()``.  Memory use is O(1)
    in the number of events -- :meth:`retained` is always empty, so
    recorder *queries* on a streaming trace see nothing; reload the
    file with :func:`trace_from_jsonl` to analyse it.
    """

    def __init__(self, path: Union[str, os.PathLike]):
        super().__init__()
        self.path = os.fspath(path)
        #: Bytes written so far (events + newlines) -- lets RunReport
        #: surface the stream's size without a stat call on a handle
        #: that may still be buffered.
        self.bytes_written = 0
        self._handle: Optional[IO[str]] = open(self.path, "w")

    def emit(self, event: TraceEvent) -> None:
        if self._handle is None:
            raise RuntimeError(f"sink for {self.path} is closed")
        self.emitted += 1
        line = json.dumps(event_to_dict(event), separators=(",", ":")) + "\n"
        self._handle.write(line)
        self.bytes_written += len(line)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlFileSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def trace_from_jsonl(path: Union[str, os.PathLike]) -> TraceRecorder:
    """Rebuild an in-memory trace from a :class:`JsonlFileSink` file."""
    trace = TraceRecorder()
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                trace.events.append(event_from_dict(json.loads(line)))
    return trace
