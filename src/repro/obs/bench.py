"""Instrumentation overhead microbenchmark.

The observability hooks are designed to be zero-cost when disabled:
every instrumented component defaults to ``metrics=None`` and the hot
paths pay exactly one attribute-``is not None`` check.  This module
puts a number on that claim by timing the Figure 4 hot path (one
prototype cell, the same workload ``bench_figure4`` times) three ways:

- ``disabled``: the default, uninstrumented run -- the configuration
  every existing experiment and ``BENCH_perf.json`` baseline uses;
- ``enabled``: the fully instrumented run behind
  :func:`repro.experiments.runner.prototype_run_report` (metrics
  registry + ring-buffer trace + bus monitor);
- ``baseline``: the recorded per-cell wall clock from
  ``BENCH_perf.json``, when that file exists and was produced on a
  matching host (cross-host wall-clock comparisons are meaningless,
  so the ratio is only reported when the platform strings agree).

``benchmarks/test_bench_obs.py`` asserts ``overhead_vs_baseline``
stays under 2% on a matching host.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Dict, Optional

#: Maximum tolerated disabled-instrumentation slowdown vs the recorded
#: baseline (fraction; 0.02 == 2%).
OVERHEAD_BUDGET = 0.02


def _host() -> Dict[str, Any]:
    return {
        "cpus": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def _best_of(fn, repeats: int) -> float:
    """Best (minimum) wall clock over ``repeats`` calls.

    Minimum, not mean: scheduling noise only ever adds time, so the
    fastest observation is the closest to the true cost.
    """
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def load_baseline_cell_s(bench_file: str = "BENCH_perf.json") -> Optional[Dict[str, Any]]:
    """Per-cell serial wall clock recorded by ``repro-perf bench``.

    Returns ``None`` when the file is absent or malformed; sets
    ``host_matches`` so callers can refuse cross-host comparisons.
    """
    try:
        with open(bench_file) as handle:
            recorded = json.load(handle)
        figure4 = recorded["figure4"]
        cell_s = figure4["serial_s"] / figure4["cells"]
    except (OSError, KeyError, TypeError, ValueError, ZeroDivisionError):
        return None
    recorded_host = recorded.get("host", {})
    return {
        "cell_s": cell_s,
        "host_matches": recorded_host.get("platform") == platform.platform(),
        "recorded_platform": recorded_host.get("platform"),
    }


def bench_obs_overhead(
    repeats: int = 3,
    utilization: float = 0.5,
    scale: int = 1_000,
    bench_file: str = "BENCH_perf.json",
) -> Dict[str, Any]:
    """Time the Figure 4 cell disabled vs enabled vs recorded baseline."""
    from repro.experiments.runner import prototype_response_s, prototype_run_report

    def disabled_run():
        prototype_response_s(n_cpus=2, utilization=utilization, scale=scale)

    def enabled_run():
        prototype_run_report(n_cpus=2, utilization=utilization, scale=scale)

    disabled_s = _best_of(disabled_run, repeats)
    enabled_s = _best_of(enabled_run, repeats)

    result: Dict[str, Any] = {
        "host": _host(),
        "repeats": repeats,
        "utilization": utilization,
        "scale": scale,
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "enabled_overhead": round(enabled_s / disabled_s - 1.0, 4)
        if disabled_s > 0 else None,
        "overhead_budget": OVERHEAD_BUDGET,
    }
    baseline = load_baseline_cell_s(bench_file)
    if baseline is not None:
        result["baseline_cell_s"] = round(baseline["cell_s"], 4)
        result["baseline_host_matches"] = baseline["host_matches"]
        if baseline["cell_s"] > 0:
            result["overhead_vs_baseline"] = round(
                disabled_s / baseline["cell_s"] - 1.0, 4
            )
    return result


def format_overhead(result: Dict[str, Any]) -> str:
    """Human-readable one-screen summary."""
    lines = [
        f"figure4 cell, scale={result['scale']}, util={result['utilization']:.0%}, "
        f"best of {result['repeats']}:",
        f"  disabled instrumentation : {result['disabled_s']:.3f}s",
        f"  enabled  instrumentation : {result['enabled_s']:.3f}s "
        f"({result['enabled_overhead']:+.1%} vs disabled)",
    ]
    if "baseline_cell_s" in result:
        suffix = "" if result.get("baseline_host_matches") else "  [different host]"
        lines.append(
            f"  recorded baseline        : {result['baseline_cell_s']:.3f}s "
            f"({result.get('overhead_vs_baseline', 0):+.1%} vs baseline, "
            f"budget {result['overhead_budget']:.0%}){suffix}"
        )
    else:
        lines.append("  recorded baseline        : (no BENCH_perf.json)")
    return "\n".join(lines)
