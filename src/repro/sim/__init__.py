"""Discrete-event simulation kernel.

A small, deterministic, cycle-resolution event engine in the style of
SimPy, built from scratch because the reproduction must not rely on
external simulation frameworks.  It provides:

- :class:`~repro.sim.engine.Simulator` -- the event loop with integer
  cycle time,
- :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.Timeout`
  -- one-shot signalling primitives,
- :class:`~repro.sim.engine.Process` -- generator-based cooperative
  processes with SimPy-style interrupts (used to model preemption),
- :class:`~repro.sim.resources.Resource` /
  :class:`~repro.sim.resources.PriorityResource` -- queued resources
  used for bus arbitration style contention.
"""

from repro.sim.engine import Process, Simulator
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.resources import PriorityResource, Resource, Store

__all__ = [
    "Simulator",
    "Process",
    "Event",
    "Timeout",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "Resource",
    "PriorityResource",
    "Store",
]
