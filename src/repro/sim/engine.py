"""The simulator event loop and generator-based processes.

Time is an integer number of clock cycles.  All hardware models in
:mod:`repro.hw` and the microkernel in :mod:`repro.kernel` run on top of
this loop.  Determinism matters for reproduction, so ties in the event
queue are broken by insertion order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.events import (
    PENDING,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
)


class Simulator:
    """A deterministic discrete-event simulator with integer cycle time.

    Example
    -------
    >>> sim = Simulator()
    >>> log = []
    >>> def worker(sim):
    ...     yield sim.timeout(5)
    ...     log.append(sim.now)
    >>> _ = sim.process(worker(sim))
    >>> sim.run()
    >>> log
    [5]
    """

    def __init__(self):
        self.now: int = 0
        self._heap: List[tuple] = []
        self._eid = 0
        self._stopped = False

    # -- event factories ----------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create a fresh untriggered event owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` cycles from now."""
        return Timeout(self, int(delay), value=value)

    def process(self, generator: Generator, name: Optional[str] = None) -> "Process":
        """Spawn a cooperative process from a generator."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any child event fires."""
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when every child event has fired."""
        return AllOf(self, list(events))

    # -- scheduling ----------------------------------------------------------
    def schedule_at(self, time: int, callback: Callable[[], None]) -> None:
        """Run ``callback()`` at absolute cycle ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._push(time, callback)

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback()`` after ``delay`` cycles."""
        self.schedule_at(self.now + int(delay), callback)

    def _push(self, time: int, item: Any) -> None:
        self._eid += 1
        heapq.heappush(self._heap, (time, self._eid, item))

    def _queue_event(self, event: Event) -> None:
        """Queue a triggered event's callbacks to run at the current time."""
        self._push(self.now, event)

    def _schedule_timeout(self, event: Timeout, delay: int) -> None:
        self._push(self.now + delay, event)

    # -- main loop -----------------------------------------------------------
    def step(self) -> None:
        """Process the single next queue entry, advancing ``now``."""
        time, _eid, item = heapq.heappop(self._heap)
        if time < self.now:  # pragma: no cover - defensive
            raise RuntimeError("event queue time went backwards")
        self.now = time
        if isinstance(item, Event):
            if item._state == PENDING:
                # A timeout reaching its instant: trigger it now.
                item._state = "triggered"
            item._run_callbacks()
        else:
            item()

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or ``now`` would pass ``until``.

        When ``until`` is given the clock is left exactly at ``until``
        even if no event is scheduled there, so back-to-back ``run``
        calls compose predictably.
        """
        self._stopped = False
        while self._heap and not self._stopped:
            time = self._heap[0][0]
            if until is not None and time > until:
                break
            self.step()
        if until is not None and self.now < until:
            self.now = until

    def stop(self) -> None:
        """Stop the loop after the current callback returns."""
        self._stopped = True

    @property
    def pending_count(self) -> int:
        """Number of entries still in the queue (diagnostic)."""
        return len(self._heap)


class Process(Event):
    """A cooperative process driven by a generator.

    The generator yields :class:`Event` instances; the process resumes
    when the yielded event triggers.  The process is itself an event
    that fires with the generator's return value, so processes can wait
    on each other.  :meth:`interrupt` throws
    :class:`~repro.sim.events.Interrupt` inside the generator at the
    current simulation time, which is how preemption is modelled.

    Wake-ups (start, interrupt delivery, already-processed targets) are
    pushed into the queue as bare callbacks rather than throwaway
    ``Event`` objects: one queue entry is pushed either way, so tie
    ordering — and therefore the schedule — is unchanged, but the
    allocation and callback-dispatch cost disappears from the hottest
    paths of full-system runs.
    """

    __slots__ = ("_generator", "_waiting_on", "_wait_list", "_wait_slot")

    def __init__(self, sim: Simulator, generator: Generator, name: Optional[str] = None):
        super().__init__(sim, name=name or getattr(generator, "__name__", "Process"))
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator (did you call the function?)")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Where our _resume callback sits inside the waited event's
        # callback list, for O(1) tombstone detach on interrupt.
        self._wait_list: Optional[list] = None
        self._wait_slot: int = -1
        # Kick off at the current time, but through the queue so that
        # construction order stays deterministic.
        sim._push(sim.now, self._start)

    def _start(self) -> None:
        self._resume(None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None, guard: Optional[Callable[[], bool]] = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        ``guard`` is re-evaluated at the instant the throw would land;
        if it returns False the interrupt is silently dropped.  This
        closes same-cycle races where the target left the interruptible
        region between the decision to interrupt and the delivery (the
        kernel model uses it to never throw into kernel-mode code).
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self!r}")

        def deliver() -> None:
            if self.triggered:
                return
            if guard is not None and not guard():
                return
            self._resume(None, throw=Interrupt(cause))

        self.sim._push(self.sim.now, deliver)

    # -- internal -------------------------------------------------------------
    def _resume(self, event: Optional[Event], throw: Optional[BaseException] = None) -> None:
        if self.triggered:
            return
        # Detach from whatever we were waiting on (interrupt case).
        # Tombstone our recorded slot instead of list.remove: entries
        # are append-only (only swapped out wholesale by
        # _run_callbacks, which our recorded reference survives), so
        # the slot index stays valid and detach is O(1) even for
        # heavily-interrupted processes.
        if self._waiting_on is not None and self._waiting_on is not event:
            self._wait_list[self._wait_slot] = None
        self._waiting_on = None
        self._wait_list = None
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            elif event is not None and event is not self and not event.ok:
                target = self._generator.throw(event.value)
            else:
                value = event.value if isinstance(event, Event) and event.triggered else None
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except Interrupt:
            # Process let the interrupt escape: treat as termination.
            self.succeed(None)
            return
        except BaseException as exc:  # propagate failures to waiters
            if self.callbacks:
                self.fail(exc)
            else:
                raise
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; processes must yield Events"
            )
        if target._state == PENDING or not target.processed:
            self._waiting_on = target
            self._wait_list = target.callbacks
            self._wait_slot = len(target.callbacks)
            target.callbacks.append(self._resume)
        else:
            # Already processed event: resume immediately via queue.
            self.sim._push(self.sim.now, lambda: self._resume(target))
