"""The simulator event loop and generator-based processes.

Time is an integer number of clock cycles.  All hardware models in
:mod:`repro.hw` and the microkernel in :mod:`repro.kernel` run on top of
this loop.  Determinism matters for reproduction, so ties in the event
queue are broken by insertion order.

Two interchangeable queue implementations back the loop:

- ``"bucket"`` (the default): a hybrid bucketed timer queue.  A
  near-horizon window of :data:`BUCKET_HORIZON` per-cycle FIFO buckets
  absorbs the short delays that dominate full-system runs (bus grants,
  kernel costs, execution chunks) with O(1) pushes and pops; anything
  scheduled at least a full window ahead overflows into a regular heap.
  FIFO buckets make insertion order the tie order by construction, and
  a heap entry at cycle ``T`` was necessarily pushed at least
  ``BUCKET_HORIZON`` cycles before any bucketed entry at ``T``, so
  draining the heap first at each instant reproduces the global
  insertion order exactly.  When the window is empty the loop
  fast-forwards ``now`` straight to the heap's next instant -- idle
  stretches (all cores parked on their interrupt lines) cost zero
  per-cycle work.
- ``"heap"``: the original flat ``heapq`` with explicit insertion-id
  tie-breaks.  Kept as the reference implementation; the determinism
  sentinel in ``repro-perf --self-check`` replays identical workloads
  on both queues and requires bit-for-bit identical schedules.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.events import (
    PENDING,
    PROCESSED,
    TRIGGERED,
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Timeout,
)

#: Width (in cycles) of the bucketed near-horizon window.  Power of two
#: so bucket indexing is a mask.  Delays shorter than this are O(1)
#: pushes; longer ones take the heap path.
BUCKET_HORIZON = 1024
_MASK = BUCKET_HORIZON - 1
_WORDS = BUCKET_HORIZON >> 6  # 64-bit occupancy words
_WMASK = _WORDS - 1
_INF = float("inf")


class Simulator:
    """A deterministic discrete-event simulator with integer cycle time.

    Parameters
    ----------
    queue:
        ``"bucket"`` (default) or ``"heap"``; both produce identical
        schedules (see the module docstring).  ``None`` selects
        :attr:`DEFAULT_QUEUE`, which the perf tier's determinism
        sentinel flips to A/B the implementations.

    Example
    -------
    >>> sim = Simulator()
    >>> log = []
    >>> def worker(sim):
    ...     yield sim.timeout(5)
    ...     log.append(sim.now)
    >>> _ = sim.process(worker(sim))
    >>> sim.run()
    >>> log
    [5]
    """

    #: Queue implementation used when the constructor gets ``queue=None``.
    DEFAULT_QUEUE = "bucket"

    def __init__(self, queue: Optional[str] = None):
        kind = queue or Simulator.DEFAULT_QUEUE
        if kind not in ("bucket", "heap"):
            raise ValueError(f"unknown queue implementation: {kind!r}")
        self.queue_kind = kind
        self.now: int = 0
        self._eid = 0
        self._stopped = False
        if kind == "heap":
            self._heap: List[tuple] = []
            self._push = self._push_heap
        else:
            self._buckets = [deque() for _ in range(BUCKET_HORIZON)]
            # One occupancy bit per bucket, 64 buckets per word, so the
            # scan for the next non-empty bucket skips empty stretches
            # in word-sized strides.
            self._occ = [0] * _WORDS
            self._bucket_count = 0
            # Exact earliest bucketed instant (None <=> window empty);
            # maintained eagerly so peeks are O(1).
            self._next_bt: Optional[int] = None
            self._far: List[tuple] = []
            self._push = self._push_bucket

    # -- event factories ----------------------------------------------------
    def event(self, name: Optional[str] = None) -> Event:
        """Create a fresh untriggered event owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` cycles from now."""
        return Timeout(self, delay, value=value)

    def advance(self, delay: int, sleeper: Optional[Timeout] = None) -> Timeout:
        """Fast path for coalesced sleeps: a timeout that recycles its event.

        The block-mode ISA interpreter (and any similar temporally
        decoupled model) sleeps once per basic-block window, always from
        the same process.  Passing the previous window's ``sleeper``
        back in lets the consumed :class:`Timeout` object be re-armed in
        place -- same queue entry shape, same tie ordering as a fresh
        ``timeout(delay)``, minus the allocation.  A sleeper is only
        reused when it was consumed normally (processed, no callbacks
        left); anything else -- including an early-succeeded event whose
        stale queue entry may still be in flight -- gets a fresh
        Timeout, which is always safe.
        """
        delay = int(delay)
        if delay < 0:
            raise ValueError(f"negative advance delay: {delay}")
        if (sleeper is not None and sleeper._state == PROCESSED
                and not sleeper.callbacks):
            sleeper._state = PENDING
            sleeper._value = None
            sleeper._ok = True
            sleeper.delay = delay
            self._push(self.now + delay, sleeper)
            return sleeper
        return Timeout(self, delay)

    def process(self, generator: Generator, name: Optional[str] = None) -> "Process":
        """Spawn a cooperative process from a generator."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any child event fires."""
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when every child event has fired."""
        return AllOf(self, list(events))

    # -- scheduling ----------------------------------------------------------
    def schedule_at(self, time: int, callback: Callable[[], None]) -> None:
        """Run ``callback()`` at absolute cycle ``time``."""
        time = int(time)
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._push(time, callback)

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback()`` after ``delay`` cycles."""
        self.schedule_at(self.now + int(delay), callback)

    def _push_heap(self, time: int, item: Any) -> None:
        self._eid += 1
        heapq.heappush(self._heap, (time, self._eid, item))

    def _push_bucket(self, time: int, item: Any) -> None:
        self._eid += 1
        if time - self.now < BUCKET_HORIZON:
            idx = time & _MASK
            bucket = self._buckets[idx]
            if not bucket:
                # A non-empty bucket already holds entries at exactly
                # this instant (the window spans less than one wrap), so
                # the cached minimum only moves on empty-bucket pushes.
                self._occ[idx >> 6] |= 1 << (idx & 63)
                nbt = self._next_bt
                if nbt is None or time < nbt:
                    self._next_bt = time
            bucket.append(item)
            self._bucket_count += 1
        else:
            heapq.heappush(self._far, (time, self._eid, item))

    # ``_push`` is bound per-instance in ``__init__`` to the selected
    # implementation; this class-level alias keeps the attribute
    # documented and introspectable.
    _push = _push_heap

    def _queue_event(self, event: Event) -> None:
        """Queue a triggered event's callbacks to run at the current time."""
        self._push(self.now, event)

    def _schedule_timeout(self, event: Timeout, delay: int) -> None:
        self._push(self.now + delay, event)

    # -- queue internals (bucket mode) ---------------------------------------
    def _scan_bucket_time(self) -> int:
        """Earliest occupied bucket instant (requires a non-empty window).

        Scans the occupancy bitmap from ``now`` forward, one 64-bucket
        word at a time; a set bit at ring position ``p`` maps back to
        the unique instant ``now + ((p - now) mod BUCKET_HORIZON)``.
        """
        occ = self._occ
        base = self.now & _MASK
        word = occ[base >> 6] >> (base & 63)
        if word:
            return self.now + ((word & -word).bit_length() - 1)
        w = base >> 6
        for off in range(1, _WORDS + 1):
            wi = (w + off) & _WMASK
            wd = occ[wi]
            if wd:
                pos = (wi << 6) + ((wd & -wd).bit_length() - 1)
                return self.now + ((pos - base) & _MASK)
        raise RuntimeError("bucket occupancy out of sync")  # pragma: no cover

    def _pop_next(self) -> tuple:
        """Remove and return ``(time, item)`` for the next queue entry."""
        if self.queue_kind == "heap":
            time, _eid, item = heapq.heappop(self._heap)
            return time, item
        nbt = self._next_bt
        far = self._far
        if far and (nbt is None or far[0][0] <= nbt):
            entry = heapq.heappop(far)
            return entry[0], entry[2]
        if nbt is None:
            raise IndexError("pop from an empty event queue")
        idx = nbt & _MASK
        bucket = self._buckets[idx]
        if not bucket:  # stale cache after an exception mid-run: heal
            self._occ[idx >> 6] &= ~(1 << (idx & 63))
            self._next_bt = self._scan_bucket_time() if self._bucket_count else None
            return self._pop_next()
        item = bucket.popleft()
        self._bucket_count -= 1
        if not bucket:
            self._occ[idx >> 6] &= ~(1 << (idx & 63))
            self._next_bt = self._scan_bucket_time() if self._bucket_count else None
        return nbt, item

    # -- main loop -----------------------------------------------------------
    def next_event_time(self) -> Optional[int]:
        """The next scheduled instant, or None when the queue is empty.

        This is the instant an idle system fast-forwards to: callers
        modelling quiescent hardware (all cores parked on interrupt
        lines) can observe how far the clock will jump.
        """
        if self.queue_kind == "heap":
            return self._heap[0][0] if self._heap else None
        nbt = self._next_bt
        far = self._far
        if far:
            ft = far[0][0]
            if nbt is None or ft < nbt:
                return ft
        return nbt

    def step(self) -> None:
        """Process the single next queue entry, advancing ``now``."""
        time, item = self._pop_next()
        if time < self.now:  # pragma: no cover - defensive
            raise RuntimeError("event queue time went backwards")
        self.now = time
        if isinstance(item, Event):
            if item._state == PENDING:
                # A timeout reaching its instant: trigger it now.
                item._state = TRIGGERED
            item._run_callbacks()
        else:
            item()

    def run(self, until: Optional[int] = None) -> None:
        """Run until the queue drains or ``now`` would pass ``until``.

        When ``until`` is given the clock is left exactly at ``until``
        even if no event is scheduled there, so back-to-back ``run``
        calls compose predictably.
        """
        if self.queue_kind == "heap":
            self._run_heap(until)
        else:
            self._run_bucket(until)

    def _run_heap(self, until: Optional[int]) -> None:
        self._stopped = False
        heap = self._heap
        while heap and not self._stopped:
            time = heap[0][0]
            if until is not None and time > until:
                break
            self.step()
        if until is not None and self.now < until:
            self.now = until

    def _run_bucket(self, until: Optional[int]) -> None:
        # The hot loop: one iteration per *instant*, draining first the
        # far heap's entries at that instant (strictly older insertion
        # ids -- see the module docstring), then the FIFO bucket.
        # Event dispatch is inlined (state flip + callback sweep) to
        # keep per-event call overhead off the critical path.
        self._stopped = False
        limit = _INF if until is None else until
        buckets = self._buckets
        occ = self._occ
        far = self._far
        heappop = heapq.heappop
        event_cls = Event
        while not self._stopped:
            nbt = self._next_bt
            if far:
                ft = far[0][0]
                if nbt is None:
                    t = ft
                else:
                    t = ft if ft < nbt else nbt
            elif nbt is None:
                break  # queue drained
            else:
                t = nbt
            if t > limit:
                break
            # Idle fast-forward: nothing is scheduled between now and t,
            # so the clock jumps in one assignment.
            self.now = t
            while far and far[0][0] == t:
                item = heappop(far)[2]
                if isinstance(item, event_cls):
                    item._state = PROCESSED
                    callbacks = item.callbacks
                    if callbacks:
                        item.callbacks = []
                        for cb in callbacks:
                            if cb is not None:
                                cb(item)
                else:
                    item()
                if self._stopped:
                    break
            if self._stopped:
                break
            if self._next_bt == t:
                idx = t & _MASK
                bucket = buckets[idx]
                while bucket:
                    item = bucket.popleft()
                    self._bucket_count -= 1
                    if isinstance(item, event_cls):
                        item._state = PROCESSED
                        callbacks = item.callbacks
                        if callbacks:
                            item.callbacks = []
                            for cb in callbacks:
                                if cb is not None:
                                    cb(item)
                    else:
                        item()
                    if self._stopped:
                        break
                if not bucket:
                    occ[idx >> 6] &= ~(1 << (idx & 63))
                    self._next_bt = (
                        self._scan_bucket_time() if self._bucket_count else None
                    )
        if until is not None and self.now < until:
            self.now = until

    def stop(self) -> None:
        """Stop the loop after the current callback returns."""
        self._stopped = True

    @property
    def pending_count(self) -> int:
        """Number of entries still in the queue (diagnostic)."""
        if self.queue_kind == "heap":
            return len(self._heap)
        return self._bucket_count + len(self._far)


class Process(Event):
    """A cooperative process driven by a generator.

    The generator yields :class:`Event` instances; the process resumes
    when the yielded event triggers.  The process is itself an event
    that fires with the generator's return value, so processes can wait
    on each other.  :meth:`interrupt` throws
    :class:`~repro.sim.events.Interrupt` inside the generator at the
    current simulation time, which is how preemption is modelled.

    Wake-ups (start, interrupt delivery, already-processed targets) are
    pushed into the queue as bare callbacks rather than throwaway
    ``Event`` objects: one queue entry is pushed either way, so tie
    ordering -- and therefore the schedule -- is unchanged, but the
    allocation and callback-dispatch cost disappears from the hottest
    paths of full-system runs.
    """

    __slots__ = ("_generator", "_waiting_on", "_wait_list", "_wait_slot",
                 "_resume_cb")

    def __init__(self, sim: Simulator, generator: Generator, name: Optional[str] = None):
        super().__init__(sim, name=name or getattr(generator, "__name__", "Process"))
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator (did you call the function?)")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Where our _resume callback sits inside the waited event's
        # callback list, for O(1) tombstone detach on interrupt.
        self._wait_list: Optional[list] = None
        self._wait_slot: int = -1
        # The bound method is appended to a callback list on every
        # yield; binding it once saves an allocation per wait.
        self._resume_cb = self._resume
        # Kick off at the current time, but through the queue so that
        # construction order stays deterministic.
        sim._push(sim.now, self._start)

    def _start(self) -> None:
        self._resume(None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == PENDING

    def interrupt(self, cause: Any = None, guard: Optional[Callable[[], bool]] = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        ``guard`` is re-evaluated at the instant the throw would land;
        if it returns False the interrupt is silently dropped.  This
        closes same-cycle races where the target left the interruptible
        region between the decision to interrupt and the delivery (the
        kernel model uses it to never throw into kernel-mode code).
        """
        if self._state != PENDING:
            raise RuntimeError(f"cannot interrupt finished process {self!r}")

        def deliver() -> None:
            if self._state != PENDING:
                return
            if guard is not None and not guard():
                return
            self._resume(None, throw=Interrupt(cause))

        self.sim._push(self.sim.now, deliver)

    # -- internal -------------------------------------------------------------
    def _resume(self, event: Optional[Event], throw: Optional[BaseException] = None) -> None:
        if self._state != PENDING:
            return
        # Detach from whatever we were waiting on (interrupt case).
        # Tombstone our recorded slot instead of list.remove: entries
        # are append-only (only swapped out wholesale by
        # _run_callbacks, which our recorded reference survives), so
        # the slot index stays valid and detach is O(1) even for
        # heavily-interrupted processes.
        waiting = self._waiting_on
        if waiting is not None and waiting is not event:
            self._wait_list[self._wait_slot] = None
        self._waiting_on = None
        self._wait_list = None
        generator = self._generator
        try:
            if throw is not None:
                target = generator.throw(throw)
            elif event is None or event is self:
                target = generator.send(None)
            elif event._ok:
                target = generator.send(
                    event._value if event._state != PENDING else None
                )
            else:
                target = generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except Interrupt:
            # Process let the interrupt escape: treat as termination.
            self.succeed(None)
            return
        except BaseException as exc:  # propagate failures to waiters
            if self.callbacks:
                self.fail(exc)
            else:
                raise
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; processes must yield Events"
            )
        if target._state != PROCESSED:
            self._waiting_on = target
            callbacks = target.callbacks
            self._wait_list = callbacks
            self._wait_slot = len(callbacks)
            callbacks.append(self._resume_cb)
        else:
            # Already processed event: resume immediately via queue.
            sim = self.sim
            sim._push(sim.now, lambda: self._resume(target))
