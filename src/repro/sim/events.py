"""Event primitives for the discrete-event kernel.

Events are one-shot: they may be *succeeded* (or *failed*) exactly once,
after which their callbacks run inside the simulator loop.  Processes
(see :mod:`repro.sim.engine`) wait on events by yielding them.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` carries arbitrary user data (for the kernel model this
    is typically the preemption reason, e.g. ``"ipi"`` or
    ``"promotion"``).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """A one-shot occurrence that processes can wait for.

    Events are allocated on every timeout, wake-up and resource grant,
    so the class is slotted: full-system runs create millions of them
    and the per-instance ``__dict__`` would dominate the allocation
    cost.  Entries in ``callbacks`` may be tombstoned to ``None`` by a
    detaching waiter (see ``Process._resume``); ``_run_callbacks``
    skips them.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulator`.
    name:
        Optional label used in tracebacks and ``repr``.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok", "_state")

    def __init__(self, sim: "Simulator", name: Optional[str] = None):  # noqa: F821
        self.sim = sim
        self.name = name
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok = True
        self._state = PENDING

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks have been executed."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful if triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The payload passed to :meth:`succeed` or :meth:`fail`."""
        if self._state == PENDING:
            raise RuntimeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful and schedule its callbacks now."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        sim = self.sim
        sim._push(sim.now, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Mark the event failed; waiting processes see the exception."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        sim = self.sim
        sim._push(sim.now, self)
        return self

    # -- internal ----------------------------------------------------------
    def _run_callbacks(self) -> None:
        self._state = PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                if callback is not None:  # skip tombstoned (detached) waiters
                    callback(self)

    def __repr__(self) -> str:
        label = self.name or self.__class__.__name__
        return f"<{label} state={self._state}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` cycles in the future.

    It stays *pending* until its scheduled instant (so composite
    AnyOf/AllOf conditions treat it correctly) and is triggered by the
    simulator loop when its queue entry is reached.

    Timeouts are the single hottest allocation in full-system runs, so
    the constructor inlines the :class:`Event` field initialisation and
    leaves ``name`` unset (``repr`` derives a label lazily) instead of
    rendering an f-string per instance.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None, name: Optional[str] = None):  # noqa: F821
        delay = int(delay)
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.name = name
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = PENDING
        self.delay = delay
        sim._push(sim.now + delay, self)

    def __repr__(self) -> str:
        label = self.name or f"Timeout({self.delay})"
        return f"<{label} state={self._state}>"


class ConditionEvent(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_done")

    def __init__(self, sim: "Simulator", events: List[Event], name: str):  # noqa: F821
        super().__init__(sim, name=name)
        self.events = list(events)
        self._done = 0
        if not self.events:
            # Degenerate condition: trivially satisfied.
            self.succeed({})
            return
        for event in self.events:
            if event.triggered:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._done += 1
        if self._satisfied():
            self.succeed({e: e.value for e in self.events if e.triggered and e.ok})


class AnyOf(ConditionEvent):
    """Fires when any constituent event fires."""

    __slots__ = ()

    def __init__(self, sim, events):
        super().__init__(sim, events, name="AnyOf")

    def _satisfied(self) -> bool:
        return self._done >= 1


class AllOf(ConditionEvent):
    """Fires when all constituent events have fired."""

    __slots__ = ()

    def __init__(self, sim, events):
        super().__init__(sim, events, name="AllOf")

    def _satisfied(self) -> bool:
        return self._done == len(self.events)
