"""Queued resources for modelling contention.

:class:`Resource` is a FIFO-granted counted resource;
:class:`PriorityResource` grants by (priority, fifo) order, which is the
shape of the OPB bus arbiter (fixed master priorities).  :class:`Store`
is an unbounded FIFO of items used by mailbox-style hardware (the
crossbar message channels).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.sim.events import Event


class Request(Event):
    """The event handed back by ``resource.request()``.

    Fires when the resource is granted.  Must be released via
    ``resource.release(request)`` (or used as a context token).
    """

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.sim, name=f"Request({resource.name})")
        self.resource = resource
        self.priority = priority

    def release(self) -> None:
        """Give the resource back."""
        self.resource.release(self)


class Resource:
    """A counted resource granting at most ``capacity`` holders at once."""

    def __init__(self, sim, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.users: List[Request] = []
        self._waiting: Deque[Request] = deque()
        self.grant_count = 0
        self.wait_cycles_total = 0
        self._request_times = {}

    # -- public API -----------------------------------------------------------
    def request(self, priority: int = 0) -> Request:
        """Ask for the resource; the returned event fires when granted."""
        req = Request(self, priority=priority)
        self._request_times[id(req)] = self.sim.now
        self._enqueue(req)
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return the resource and wake the next waiter."""
        try:
            self.users.remove(request)
        except ValueError:
            # Cancelled before grant: drop from the wait queue instead.
            try:
                self._waiting.remove(request)
            except ValueError:
                raise RuntimeError("release of a request this resource never saw")
        self._grant()

    @property
    def queue_length(self) -> int:
        """Number of ungranted requests."""
        return len(self._waiting)

    @property
    def busy(self) -> bool:
        """True when at least one holder is active."""
        return bool(self.users)

    # -- internals --------------------------------------------------------------
    def _enqueue(self, req: Request) -> None:
        self._waiting.append(req)

    def _next(self) -> Optional[Request]:
        if not self._waiting:
            return None
        return self._waiting.popleft()

    def _grant(self) -> None:
        while len(self.users) < self.capacity:
            req = self._next()
            if req is None:
                return
            self.users.append(req)
            self.grant_count += 1
            started = self._request_times.pop(id(req), self.sim.now)
            self.wait_cycles_total += self.sim.now - started
            req.succeed(self)


class PriorityResource(Resource):
    """Resource granted in (priority, arrival) order; lower wins.

    This matches a fixed-priority bus arbiter: the pending master with
    the numerically lowest priority value is granted first, FIFO among
    equals.
    """

    def __init__(self, sim, capacity: int = 1, name: str = "priority-resource"):
        super().__init__(sim, capacity=capacity, name=name)
        self._counter = 0
        self._pq: List[Tuple[int, int, Request]] = []

    def _enqueue(self, req: Request) -> None:
        self._counter += 1
        self._pq.append((req.priority, self._counter, req))
        self._pq.sort(key=lambda item: (item[0], item[1]))

    def _next(self) -> Optional[Request]:
        if not self._pq:
            return None
        _prio, _order, req = self._pq.pop(0)
        return req

    @property
    def queue_length(self) -> int:
        return len(self._pq)

    def release(self, request: Request) -> None:
        try:
            self.users.remove(request)
        except ValueError:
            for i, (_p, _o, r) in enumerate(self._pq):
                if r is request:
                    del self._pq[i]
                    break
            else:
                raise RuntimeError("release of a request this resource never saw")
        self._grant()


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks; ``get`` returns an event that fires with the
    next item (immediately if one is buffered).
    """

    def __init__(self, sim, name: str = "store"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item in FIFO order."""
        event = Event(self.sim, name=f"{self.name}.get")
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)
