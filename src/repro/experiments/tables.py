"""Reference values from the paper and table rendering helpers.

Single home for every number the paper's evaluation quotes, so tests
and benchmarks assert against one source of truth, plus the renderer
that prints our task tables in the paper's format.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro import CLOCK_HZ

#: The prototype clock (Virtex-II PRO XC2VP30, speed grade -7).
PAPER_CLOCK_HZ = 50_000_000
assert PAPER_CLOCK_HZ == CLOCK_HZ

#: Scheduling tick: "Scheduling phase is triggered each 0.1 seconds".
PAPER_TICK_S = 0.1

#: Uniform overhead the paper's simulator charges.
PAPER_SIM_OVERHEAD = 0.02

#: "The aperiodic task, on a single processor architecture, should
#: execute in [~10.1] seconds with the given dataset at 50 MHz."
PAPER_APERIODIC_EXEC_S = 10.1

#: "... with the only overheads of context switching when moving the
#: task on free processors (10.32 seconds in the worst case)."
PAPER_APERIODIC_WORST_S = 10.32

#: "our architecture can reach a response time of [~12.9] seconds,
#: 25% worse than the optimal response time obtained in simulation"
PAPER_4P60_RESPONSE_S = 12.9

#: The evaluation grid.
PAPER_CPUS: Tuple[int, ...] = (2, 3, 4)
PAPER_UTILIZATIONS: Tuple[float, ...] = (0.40, 0.50, 0.60)

#: Real-vs-simulated slowdown percentages quoted in Section 5.
PAPER_SLOWDOWN_MATRIX: Dict[Tuple[int, float], float] = {
    (2, 0.40): 7.0,
    (2, 0.50): 8.0,
    (2, 0.60): 12.0,
    (3, 0.40): 15.0,
    (3, 0.50): 22.0,
    (3, 0.60): 27.0,
    (4, 0.60): 25.0,
}

#: Workload composition: "a total of 19 tasks ... 18 periodic and 1
#: aperiodic.  The aperiodic task is the susan benchmark with the
#: large dataset."
PAPER_N_PERIODIC = 18
PAPER_N_APERIODIC = 1

#: Figure 3 priority bands: periodic low 0-1, aperiodic 2, periodic
#: high 3-4.
PAPER_FIG3_LOW_PRIORITIES = (0, 1)
PAPER_FIG3_APERIODIC_PRIORITY = 2
PAPER_FIG3_HIGH_PRIORITIES = (3, 4)


def format_task_table(rows: Sequence[dict], clock_hz: int = CLOCK_HZ) -> str:
    """Render analysis rows (see promotion_table) paper-style.

    Times are shown both in cycles and in milliseconds at the clock.
    """
    header = (
        f"{'task':<28}{'cpu':>4}{'C (ms)':>10}{'T (ms)':>10}"
        f"{'D (ms)':>10}{'W (ms)':>10}{'U (ms)':>10}{'ok':>4}"
    )
    lines = [header, "-" * len(header)]

    def ms(cycles) -> str:
        if cycles is None:
            return "-"
        return f"{1e3 * cycles / clock_hz:.1f}"

    for row in rows:
        lines.append(
            f"{row['task']:<28}{row['cpu']:>4}{ms(row['wcet']):>10}"
            f"{ms(row['period']):>10}{ms(row['deadline']):>10}"
            f"{ms(row['wcrt']):>10}{ms(row['promotion']):>10}"
            f"{'y' if row['schedulable'] else 'N':>4}"
        )
    return "\n".join(lines)


def format_slowdown_matrix(
    measured: Dict[Tuple[int, float], float],
    paper: Dict[Tuple[int, float], float] = PAPER_SLOWDOWN_MATRIX,
) -> str:
    """Measured-vs-paper slowdown grid, one row per processor count."""
    lines = [
        "slowdown real-vs-theoretical, % -- measured (paper)",
        " " * 6 + "".join(f"{u:>16.0%}" for u in PAPER_UTILIZATIONS),
    ]
    for n in PAPER_CPUS:
        cells = []
        for u in PAPER_UTILIZATIONS:
            value = measured.get((n, u))
            reference = paper.get((n, round(u, 2)))
            text = f"{value:.1f}" if value is not None else "-"
            if reference is not None:
                text += f" ({reference:.0f})"
            cells.append(f"{text:>16}")
        lines.append(f"{n}P:   " + "".join(cells))
    return "\n".join(lines)
