"""One-shot reproduction report generator.

``python -m repro.experiments.report [out.md]`` runs the whole
evaluation (Figure 3, Figure 4, the analysis tables) and writes a
self-contained markdown report with measured-vs-paper numbers -- the
artefact to attach to a reproduction claim.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import TICK
from repro.analysis.promotion import promotion_table
from repro.experiments.figure3 import (
    narrative_checks_a,
    narrative_checks_b,
    run_schedule_a,
    run_schedule_b,
    schedule_report,
)
from repro.experiments.figure4 import figure4_sweep
from repro.experiments.tables import (
    PAPER_APERIODIC_EXEC_S,
    PAPER_APERIODIC_WORST_S,
    PAPER_SLOWDOWN_MATRIX,
    format_slowdown_matrix,
    format_task_table,
)
from repro.workloads.automotive import build_automotive_taskset, prepare_taskset


def build_report(quick: bool = False, max_workers: int = 1) -> str:
    """Assemble the full report as markdown."""
    lines: List[str] = [
        "# Reproduction report",
        "",
        "Paper: *A Dual-Priority Real-Time Multiprocessor System on FPGA "
        "for Automotive Applications* (DATE 2008).",
        "",
    ]

    # ----------------------------------------------------------- Figure 3
    lines += ["## Figure 3 — worked schedule", ""]
    sim_a, trace_a = run_schedule_a()
    sim_b, trace_b = run_schedule_b()
    lines += ["```", schedule_report("A (periodic only)", sim_a, trace_a), "```", ""]
    lines += ["```", schedule_report("B (with aperiodics)", sim_b, trace_b), "```", ""]
    for label, checks in (
        ("A", narrative_checks_a(sim_a, trace_a)),
        ("B", narrative_checks_b(sim_b, trace_b)),
    ):
        for claim, holds in checks.items():
            lines.append(f"- schedule {label}: {'PASS' if holds else 'FAIL'} — {claim}")
    lines.append("")

    # ------------------------------------------------------ analysis table
    lines += ["## Offline analysis (2 processors @ 50 %)", ""]
    taskset = prepare_taskset(build_automotive_taskset(0.5, 2), 2, tick=TICK)
    lines += ["```", format_task_table(promotion_table(taskset, 2)), "```", ""]

    # ----------------------------------------------------------- Figure 4
    lines += ["## Figure 4 — aperiodic response, theoretical vs real", ""]
    lines.append(
        f"Paper anchors: standalone execution {PAPER_APERIODIC_EXEC_S} s, "
        f"theoretical worst case {PAPER_APERIODIC_WORST_S} s."
    )
    lines.append("")
    cpus = (2,) if quick else (2, 3, 4)
    utils = (0.5,) if quick else (0.40, 0.50, 0.60)
    cells = figure4_sweep(cpus, utils, max_workers=max_workers)
    measured = {
        (cell.n_cpus, round(cell.utilization, 2)): cell.slowdown_pct
        for cell in cells
    }
    lines += ["```"]
    for cell in cells:
        lines.append(cell.row())
    lines += ["```", "", "```", format_slowdown_matrix(measured), "```", ""]

    ok = all(cell.real_s > cell.theoretical_s for cell in cells)
    lines.append(
        f"Verdict: prototype slower than simulation in "
        f"{'every' if ok else 'NOT every'} measured cell; see EXPERIMENTS.md "
        "for the shape assessment."
    )
    lines.append("")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Generate the reproduction report")
    parser.add_argument("output", nargs="?", default="-",
                        help="output file ('-' = stdout)")
    parser.add_argument("--quick", action="store_true",
                        help="single Figure 4 cell instead of the full grid")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the Figure 4 sweep (0 = one per CPU)")
    args = parser.parse_args(argv)
    text = build_report(quick=args.quick, max_workers=args.workers)
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"report written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
