"""Figure 4: aperiodic response time, theoretical vs real prototype.

"Figure 4 shows the average response time of the selected aperiodic
task on architectures from 2 to 4 processors, with a periodic
utilization of the systems from 40% to 60%."  The paper's headline
observations, which this module regenerates:

- the theoretical simulator (2 % uniform overhead) responds near the
  10.1 s standalone execution time at these utilizations (10.32 s
  worst case including switch overheads);
- the prototype is slower: ~7/8/12 % at 2 processors for 40/50/60 %,
  ~15/22/27 % at 3 processors;
- 4 processors behave like 3 (slightly better): the bus has
  saturated, even though the total periodic work is double that of
  the 2-processor system at equal utilization;
- at 4 processors / 60 % the prototype still reaches ~12.9 s, about
  25 % over the simulated optimum.
"""

from __future__ import annotations

import argparse
import functools
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import CLOCK_HZ, TICK, cycles_to_seconds
from repro.obs.ledger import Ledger, LedgerEntry
from repro.perf.cache import RunCache, cache_key, fingerprint, taskset_rows
from repro.perf.executor import Telemetry, current_telemetry, pmap
from repro.simulators.prototype import FIDELITIES, PrototypeConfig, PrototypeSimulator
from repro.simulators.theoretical import TheoreticalSimulator
from repro.trace.metrics import compute_metrics
from repro.workloads.automotive import (
    AUTOMOTIVE_APERIODIC,
    automotive_bindings,
    build_automotive_taskset,
    prepare_taskset,
)

#: The paper's slowdown matrix (real vs theoretical), (n_cpus, util) -> %.
PAPER_SLOWDOWNS: Dict[Tuple[int, float], float] = {
    (2, 0.40): 7.0,
    (2, 0.50): 8.0,
    (2, 0.60): 12.0,
    (3, 0.40): 15.0,
    (3, 0.50): 22.0,
    (3, 0.60): 27.0,
    # 4 processors: "almost the same results obtained with 3
    # MicroBlazes, even slightly better"; at 60% about 25%.
    (4, 0.60): 25.0,
}

#: Standalone execution time of the aperiodic task (paper: ~10.1 s).
APERIODIC_STANDALONE_S = 10.1
#: Paper's worst-case theoretical response including switch overheads.
APERIODIC_THEORETICAL_WORST_S = 10.32


@dataclass
class Figure4Cell:
    """One (n_cpus, utilization) measurement pair."""

    n_cpus: int
    utilization: float
    theoretical_s: float
    real_s: float

    @property
    def slowdown_pct(self) -> float:
        """How much slower the prototype is than the simulation."""
        return 100.0 * (self.real_s / self.theoretical_s - 1.0)

    def row(self) -> str:
        return (
            f"{self.n_cpus}P  {self.utilization:4.0%}   "
            f"theoretical {self.theoretical_s:7.3f} s   "
            f"real {self.real_s:7.3f} s   "
            f"slowdown {self.slowdown_pct:5.1f} %"
        )


#: Arrival phases (seconds) averaged per cell; staggered against the
#: periodic releases so the mean does not ride one alignment.
ARRIVAL_PHASES_S = (1.0, 3.55, 7.3)


def run_cell(
    n_cpus: int,
    utilization: float,
    scale: int = 1_000,
    arrival_phases_s: Sequence[float] = ARRIVAL_PHASES_S,
    horizon_margin_s: float = 25.0,
    fidelity: str = "prototype",
) -> Figure4Cell:
    """Measure one Figure 4 cell (theoretical + the chosen real rung).

    The paper reports the *average* response time of the aperiodic
    task; each phase in ``arrival_phases_s`` is run independently (one
    arrival per run, so samples never interfere) and the means are
    averaged.

    ``fidelity`` picks the rung standing in for the "real" column:
    the cycle-approximate prototype (the paper's measurement), or the
    calibrated ``tlm`` rung for fast exploratory sweeps (accurate to
    its calibration residual).  ``theoretical`` degenerates to a
    self-comparison (slowdown ~0) and is mostly useful as a sanity
    anchor.
    """
    if fidelity not in FIDELITIES:
        raise ValueError(f"fidelity must be one of {FIDELITIES}, got {fidelity!r}")
    taskset = build_automotive_taskset(utilization, n_cpus)
    taskset = prepare_taskset(taskset, n_cpus, tick=TICK)

    theo_samples: List[float] = []
    real_samples: List[float] = []
    for arrival_s in arrival_phases_s:
        arrival = int(arrival_s * CLOCK_HZ)
        horizon = arrival + int(horizon_margin_s * CLOCK_HZ)
        arrivals = {AUTOMOTIVE_APERIODIC: [arrival]}

        theoretical = TheoreticalSimulator(
            taskset, n_cpus, tick=TICK, overhead=0.02, aperiodic_arrivals=arrivals
        )
        theoretical.run(horizon)
        theo_metrics = compute_metrics(theoretical.finished_jobs, horizon)
        theo_samples.append(theo_metrics.response_of(AUTOMOTIVE_APERIODIC).mean)

        if fidelity == "theoretical":
            real_samples.append(theo_samples[-1])
        elif fidelity == "tlm":
            from repro.simulators.tlm import TLMSimulator

            tlm = TLMSimulator(
                taskset,
                n_cpus,
                tick=TICK,
                bindings=automotive_bindings(),
                aperiodic_arrivals=arrivals,
            )
            tlm.run(horizon)
            tlm_metrics = compute_metrics(tlm.finished_jobs, horizon)
            real_samples.append(tlm_metrics.response_of(AUTOMOTIVE_APERIODIC).mean)
        else:
            prototype = PrototypeSimulator(
                taskset,
                PrototypeConfig(n_cpus=n_cpus, tick=TICK, scale=scale),
                bindings=automotive_bindings(),
                aperiodic_arrivals=arrivals,
            )
            prototype.run(horizon)
            proto_metrics = compute_metrics(
                prototype.finished_jobs, horizon // scale
            )
            real_samples.append(
                prototype.to_full_scale(
                    int(proto_metrics.response_of(AUTOMOTIVE_APERIODIC).mean)
                )
            )

    mean_theo = sum(theo_samples) / len(theo_samples)
    mean_real = sum(real_samples) / len(real_samples)
    return Figure4Cell(
        n_cpus=n_cpus,
        utilization=utilization,
        theoretical_s=cycles_to_seconds(mean_theo),
        real_s=cycles_to_seconds(mean_real),
    )


def _cell_key(
    n_cpus: int, utilization: float, scale: int, fidelity: str = "prototype"
) -> str:
    """Content hash of everything a Figure 4 cell's result depends on."""
    taskset = prepare_taskset(
        build_automotive_taskset(utilization, n_cpus), n_cpus, tick=TICK
    )
    return cache_key(
        kind="figure4-cell",
        taskset=taskset_rows(taskset),
        n_cpus=n_cpus,
        utilization=utilization,
        scale=scale,
        tick=TICK,
        arrival_phases_s=list(ARRIVAL_PHASES_S),
        horizon_margin_s=25.0,
        fidelity=fidelity,
    )


def _run_cell_point(
    point: Tuple[int, float], scale: int, fidelity: str
) -> Figure4Cell:
    """Picklable per-cell worker body for the parallel sweep."""
    n_cpus, utilization = point
    telemetry = current_telemetry()
    if telemetry is None:
        return run_cell(n_cpus, utilization, scale=scale, fidelity=fidelity)
    with telemetry.spans.span("cell", n_cpus=n_cpus,
                              utilization=utilization, fidelity=fidelity):
        cell = run_cell(n_cpus, utilization, scale=scale, fidelity=fidelity)
    telemetry.metrics.counter(
        "sweep_cells_total", labels={"fidelity": fidelity},
        help="sweep cells evaluated (cache hits excluded)").inc()
    return cell


def figure4_sweep(
    cpus: Sequence[int] = (2, 3, 4),
    utilizations: Sequence[float] = (0.40, 0.50, 0.60),
    scale: int = 1_000,
    max_workers: int = 1,
    cache: Optional[RunCache] = None,
    fidelity: str = "prototype",
    telemetry: Optional[Telemetry] = None,
    ledger: Optional[Ledger] = None,
) -> List[Figure4Cell]:
    """The full Figure 4 grid.

    Cells are independent simulations, so with ``max_workers > 1``
    they run across worker processes; results are reassembled in grid
    order and are bit-for-bit identical to a serial sweep.  With a
    ``cache``, previously-computed cells (keyed by task-set content,
    configuration, fidelity rung and package version) are loaded
    instead of re-run.  ``fidelity`` picks the rung standing in for
    the "real" column (see :func:`run_cell`).

    ``telemetry`` records the sweep as spans (``sweep`` -> per-cell
    ``cell`` spans, cache hits/misses as events on the sweep span) and
    per-cell counters, merged deterministically across workers;
    ``ledger`` appends one ``figure4`` entry to the run history.
    """
    started = time.perf_counter()
    points = [(n_cpus, u) for n_cpus in cpus for u in utilizations]
    cells: List[Optional[Figure4Cell]] = [None] * len(points)
    # No execution-geometry attrs (worker count) on the sweep span: span
    # structure must not vary with parallelism.
    sweep_ctx = (
        telemetry.spans.span("sweep", tag="figure4", cells=len(points))
        if telemetry is not None else None
    )
    if sweep_ctx is not None:
        sweep_ctx.__enter__()
    try:
        pending = list(range(len(points)))
        keys: List[Optional[str]] = [None] * len(points)
        hits = 0
        if cache is not None:
            pending = []
            for index, (n_cpus, utilization) in enumerate(points):
                keys[index] = _cell_key(n_cpus, utilization, scale, fidelity)
                hit, value = cache.lookup(keys[index])
                if telemetry is not None:
                    name = "cache_hit" if hit else "cache_miss"
                    telemetry.spans.event(name, index=index,
                                          key=keys[index][:16])
                    telemetry.metrics.counter(
                        "sweep_cache_lookups_total",
                        labels={"outcome": name[6:]},
                        help="run-cache lookups by outcome").inc()
                if hit:
                    cells[index] = Figure4Cell(**value)
                    hits += 1
                else:
                    pending.append(index)
        computed = pmap(
            functools.partial(_run_cell_point, scale=scale, fidelity=fidelity),
            [points[i] for i in pending],
            max_workers=max_workers,
            telemetry=telemetry,
        )
        for index, cell in zip(pending, computed):
            cells[index] = cell
            if cache is not None:
                cache.put(keys[index], asdict(cell))
    finally:
        if sweep_ctx is not None:
            sweep_ctx.__exit__(None, None, None)
    if ledger is not None:
        misses = len(points) - hits
        slowdowns = [cell.slowdown_pct for cell in cells if cell is not None]
        ledger.append(LedgerEntry(
            kind="figure4",
            label="figure4_sweep",
            config_hash=fingerprint({
                "cpus": list(cpus), "utilizations": list(utilizations),
                "scale": scale, "fidelity": fidelity,
            }),
            fidelity=fidelity,
            wall_time_s=round(time.perf_counter() - started, 4),
            cells=len(points),
            cache=(
                {"hits": hits, "misses": misses,
                 "hit_rate": round(hits / len(points), 4) if points else 0.0}
                if cache is not None else None
            ),
            metrics_digest=(
                fingerprint(telemetry.metrics.snapshot())
                if telemetry is not None else None
            ),
            results=(
                {"max_slowdown_pct": round(max(slowdowns), 4),
                 "mean_slowdown_pct":
                     round(sum(slowdowns) / len(slowdowns), 4)}
                if slowdowns else {}
            ),
        ))
    return cells


def slowdown_table(cells: Sequence[Figure4Cell]) -> str:
    """Side-by-side measured vs paper slowdowns."""
    lines = [
        f"{'config':<12}{'theoretical':>14}{'real':>10}{'slowdown':>11}{'paper':>9}"
    ]
    for cell in cells:
        paper = PAPER_SLOWDOWNS.get((cell.n_cpus, round(cell.utilization, 2)))
        paper_text = f"{paper:.0f} %" if paper is not None else "-"
        lines.append(
            f"{cell.n_cpus}P @ {cell.utilization:4.0%}  "
            f"{cell.theoretical_s:11.3f} s {cell.real_s:8.3f} s "
            f"{cell.slowdown_pct:8.1f} % {paper_text:>8}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Reproduce Figure 4")
    parser.add_argument("--cpus", type=int, nargs="+", default=[2, 3, 4])
    parser.add_argument(
        "--utilizations", type=float, nargs="+", default=[0.40, 0.50, 0.60]
    )
    parser.add_argument("--scale", type=int, default=1_000)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (0 = one per CPU)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="content-addressed run cache directory")
    parser.add_argument("--fidelity", choices=list(FIDELITIES),
                        default="prototype",
                        help="simulation rung for the 'real' column")
    parser.add_argument("--ledger", metavar="FILE", nargs="?",
                        const="", default=None,
                        help="append this run to the persistent run ledger "
                             "(default: .repro/ledger.jsonl or $REPRO_LEDGER)")
    args = parser.parse_args(argv)

    cache = RunCache(args.cache) if args.cache else None
    ledger = (Ledger(args.ledger or None)
              if args.ledger is not None else None)
    cells = figure4_sweep(args.cpus, args.utilizations, scale=args.scale,
                          max_workers=args.workers, cache=cache,
                          fidelity=args.fidelity, ledger=ledger)
    print("Figure 4 -- aperiodic (susan/large) response time")
    print(f"standalone execution: {APERIODIC_STANDALONE_S} s; paper's")
    print(f"theoretical worst case with switching: {APERIODIC_THEORETICAL_WORST_S} s")
    print()
    print(slowdown_table(cells))
    if cache is not None:
        stats = cache.stats()
        print(f"\ncache: {stats['hits']} hit(s), {stats['misses']} miss(es) "
              f"({stats['hit_rate']:.0%} hit rate) in {stats['root']}")
    if ledger is not None:
        print(f"ledger: appended figure4 entry to {ledger.path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
