"""Experiment drivers reproducing the paper's figures and tables."""

from repro.experiments.figure3 import (
    figure3_taskset,
    run_schedule_a,
    run_schedule_b,
)
from repro.experiments.figure4 import (
    PAPER_SLOWDOWNS,
    Figure4Cell,
    figure4_sweep,
    run_cell,
    slowdown_table,
)
from repro.experiments.runner import (
    SweepResult,
    context_cost_sweep,
    mpic_timeout_sweep,
    processor_scaling_sweep,
    sweep,
    traffic_intensity_sweep,
)
from repro.experiments.tables import (
    PAPER_SLOWDOWN_MATRIX,
    format_slowdown_matrix,
    format_task_table,
)

__all__ = [
    "figure3_taskset",
    "run_schedule_a",
    "run_schedule_b",
    "run_cell",
    "figure4_sweep",
    "slowdown_table",
    "Figure4Cell",
    "PAPER_SLOWDOWNS",
    "sweep",
    "SweepResult",
    "context_cost_sweep",
    "traffic_intensity_sweep",
    "processor_scaling_sweep",
    "mpic_timeout_sweep",
    "PAPER_SLOWDOWN_MATRIX",
    "format_task_table",
    "format_slowdown_matrix",
]
