"""Generic experiment sweeps and the prepackaged ablation studies.

The Figure 3/4 modules regenerate the paper's artefacts; this module
provides the machinery for *new* experiments over the same system: a
cartesian-product sweep runner with CSV export, plus the canned
ablations that the benchmarks exercise (context-switch cost, MPIC ack
timeout, bus-traffic intensity, scheduler baselines).
"""

from __future__ import annotations

import csv
import io
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence

from repro import CLOCK_HZ, cycles_to_seconds
from repro.hw.microblaze import ExecutionProfile
from repro.kernel.costs import KernelCosts
from repro.kernel.microkernel import TaskBinding
from repro.lint.tasks import check_taskset
from repro.simulators.prototype import PrototypeConfig, PrototypeSimulator
from repro.trace.metrics import compute_metrics
from repro.workloads.automotive import (
    AUTOMOTIVE_APERIODIC,
    automotive_bindings,
    build_automotive_taskset,
    prepare_taskset,
)

TICK = 5_000_000


@dataclass
class SweepResult:
    """Rows produced by :func:`sweep`, with rendering helpers."""

    parameters: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def to_csv(self) -> str:
        if not self.rows:
            return ""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(self.rows[0].keys()))
        writer.writeheader()
        writer.writerows(self.rows)
        return buffer.getvalue()

    def format(self) -> str:
        if not self.rows:
            return "(empty sweep)"
        keys = list(self.rows[0].keys())
        widths = {
            k: max(len(k), max(len(self._cell(r[k])) for r in self.rows))
            for k in keys
        }
        lines = ["  ".join(k.ljust(widths[k]) for k in keys)]
        for row in self.rows:
            lines.append("  ".join(self._cell(row[k]).ljust(widths[k]) for k in keys))
        return "\n".join(lines)

    @staticmethod
    def _cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    def column(self, key: str) -> List[Any]:
        return [row[key] for row in self.rows]


def sweep(
    measure: Callable[..., Mapping[str, Any]],
    grid: Mapping[str, Sequence[Any]],
) -> SweepResult:
    """Run ``measure(**point)`` over the cartesian product of ``grid``.

    ``measure`` returns a mapping of result columns; the sweep prepends
    the parameter values to every row.
    """
    names = list(grid.keys())
    result = SweepResult(parameters=names)
    for values in itertools.product(*(grid[name] for name in names)):
        point = dict(zip(names, values))
        outcome = measure(**point)
        row = dict(point)
        row.update(outcome)
        result.rows.append(row)
    return result


# --------------------------------------------------------------- measurements
def prototype_response_s(
    n_cpus: int = 2,
    utilization: float = 0.5,
    scale: int = 1_000,
    costs: KernelCosts = None,
    bindings: Dict[str, TaskBinding] = None,
    mpic_ack_timeout: int = None,
    arrival_s: float = 1.0,
    horizon_margin_s: float = 17.0,
) -> Dict[str, Any]:
    """One prototype run; returns response time and kernel counters."""
    taskset = prepare_taskset(
        build_automotive_taskset(utilization, n_cpus), n_cpus, tick=TICK
    )
    check_taskset(taskset, n_cpus, tick=TICK)
    arrival = int(arrival_s * CLOCK_HZ)
    horizon = arrival + int(horizon_margin_s * CLOCK_HZ)
    proto = PrototypeSimulator(
        taskset,
        PrototypeConfig(n_cpus=n_cpus, tick=TICK, scale=scale,
                        costs=costs or KernelCosts()),
        bindings=bindings if bindings is not None else automotive_bindings(),
        aperiodic_arrivals={AUTOMOTIVE_APERIODIC: [arrival]},
    )
    if mpic_ack_timeout is not None:
        proto.soc.intc.ack_timeout = mpic_ack_timeout
    proto.run(horizon)
    metrics = compute_metrics(proto.finished_jobs, horizon // scale)
    response = proto.to_full_scale(
        int(metrics.response_of(AUTOMOTIVE_APERIODIC).mean)
    )
    stats = proto.stats()
    return {
        "response_s": cycles_to_seconds(response),
        "misses": metrics.deadline_misses,
        "bus_utilization": round(stats["bus_utilization"], 4),
        "context_switches": stats["context_switches"],
        "mpic_timeouts": stats["mpic_timeouts"],
    }


# ------------------------------------------------------------------ ablations
def context_cost_sweep(multipliers: Sequence[int] = (1, 10, 100, 1000)) -> SweepResult:
    """Response vs context-switch cost (primitive + regfile scaled)."""

    def measure(multiplier: int) -> Dict[str, Any]:
        base = KernelCosts()
        costs = KernelCosts(
            context_primitive=base.context_primitive * multiplier,
            regfile_words=base.regfile_words * multiplier,
        )
        return prototype_response_s(costs=costs)

    return sweep(measure, {"multiplier": list(multipliers)})


def traffic_intensity_sweep(
    scales: Sequence[float] = (0.25, 0.5, 1.0, 2.0)
) -> SweepResult:
    """Response vs shared-memory traffic density (x the characterised
    profiles; 1.0 = calibrated)."""

    def measure(traffic: float) -> Dict[str, Any]:
        bindings = {}
        for name, binding in automotive_bindings().items():
            period = max(20, int(round(binding.profile.access_period / traffic)))
            bindings[name] = TaskBinding(
                profile=ExecutionProfile(access_period=period,
                                         access_words=binding.profile.access_words),
                stack_words=binding.stack_words,
            )
        return prototype_response_s(bindings=bindings)

    return sweep(measure, {"traffic": list(scales)})


def processor_scaling_sweep(
    cpus: Sequence[int] = (2, 3, 4), utilization: float = 0.5
) -> SweepResult:
    """Response vs processor count at fixed per-cpu utilization."""

    def measure(n_cpus: int) -> Dict[str, Any]:
        return prototype_response_s(n_cpus=n_cpus, utilization=utilization)

    return sweep(measure, {"n_cpus": list(cpus)})


def mpic_timeout_sweep(
    timeouts: Sequence[int] = (50, 500, 5_000, 50_000)
) -> SweepResult:
    """Response vs the MPIC acknowledge timeout (re-routing window)."""

    def measure(ack_timeout: int) -> Dict[str, Any]:
        return prototype_response_s(mpic_ack_timeout=ack_timeout)

    return sweep(measure, {"ack_timeout": list(timeouts)})
