"""Generic experiment sweeps and the prepackaged ablation studies.

The Figure 3/4 modules regenerate the paper's artefacts; this module
provides the machinery for *new* experiments over the same system: a
cartesian-product sweep runner with CSV export, plus the canned
ablations that the benchmarks exercise (context-switch cost, MPIC ack
timeout, bus-traffic intensity, scheduler baselines).
"""

from __future__ import annotations

import csv
import functools
import io
import itertools
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro import CLOCK_HZ, TICK, cycles_to_seconds
from repro.hw.microblaze import ExecutionProfile
from repro.kernel.costs import KernelCosts
from repro.kernel.microkernel import TaskBinding
from repro.lint.tasks import check_taskset
from repro.obs.ledger import Ledger, LedgerEntry
from repro.perf.cache import RunCache, cache_key, fingerprint
from repro.perf.executor import Telemetry, current_telemetry, pmap
from repro.simulators.prototype import FIDELITIES, PrototypeConfig, PrototypeSimulator
from repro.trace.metrics import compute_metrics
from repro.workloads.automotive import (
    AUTOMOTIVE_APERIODIC,
    automotive_bindings,
    build_automotive_taskset,
    prepare_taskset,
)


@dataclass
class SweepResult:
    """Rows produced by :func:`sweep`, with rendering helpers."""

    parameters: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: Run-cache accounting for this sweep (None when no cache given).
    cache_stats: Optional[Dict[str, Any]] = None

    def to_csv(self) -> str:
        if not self.rows:
            return ""
        # Union of keys across all rows, first-seen order: ragged
        # sweeps (a column only some measure calls report) must not
        # blow up DictWriter.
        fieldnames: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in fieldnames:
                    fieldnames.append(key)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=fieldnames, restval="")
        writer.writeheader()
        writer.writerows(self.rows)
        return buffer.getvalue()

    def format(self) -> str:
        if not self.rows:
            return "(empty sweep)"
        keys: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in keys:
                    keys.append(key)
        widths = {
            k: max(len(k), max(len(self._cell(r.get(k, ""))) for r in self.rows))
            for k in keys
        }
        lines = ["  ".join(k.ljust(widths[k]) for k in keys)]
        for row in self.rows:
            lines.append(
                "  ".join(self._cell(row.get(k, "")).ljust(widths[k]) for k in keys)
            )
        if self.cache_stats is not None:
            stats = self.cache_stats
            lines.append(
                f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es) "
                f"({stats['hit_rate']:.0%} hit rate)"
            )
        return "\n".join(lines)

    @staticmethod
    def _cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    def column(self, key: str) -> List[Any]:
        return [row[key] for row in self.rows]


def _pipeline_span(name: str, **attrs: Any):
    """A span on the active telemetry, or a no-op context.

    This is the whole disabled-path cost of span tracing: one module
    global read and a ``None`` check per *cell* (not per event).
    """
    telemetry = current_telemetry()
    if telemetry is None:
        return nullcontext()
    return telemetry.spans.span(name, **attrs)


def _eval_point(measure: Callable[..., Mapping[str, Any]], point: Dict[str, Any]) -> Dict[str, Any]:
    """One sweep cell: parameters first, then the measured columns."""
    telemetry = current_telemetry()
    if telemetry is None:
        row = dict(point)
        row.update(measure(**point))
        return row
    with telemetry.spans.span("cell", **point):
        row = dict(point)
        with telemetry.spans.span("measure", measure=_measure_tag(measure)):
            row.update(measure(**point))
    labels = ({"fidelity": point["fidelity"]} if "fidelity" in point else None)
    telemetry.metrics.counter(
        "sweep_cells_total", labels=labels,
        help="sweep cells evaluated (cache hits excluded)").inc()
    misses = row.get("misses")
    if isinstance(misses, int):
        telemetry.metrics.counter(
            "sweep_deadline_misses_total", labels=labels,
            help="deadline misses summed over evaluated cells").inc(misses)
    return row


def _timed_eval_point(
    measure: Callable[..., Mapping[str, Any]], point: Dict[str, Any]
) -> Dict[str, Any]:
    """:func:`_eval_point` plus a ``wall_time_s`` host-clock column."""
    start = time.perf_counter()
    row = _eval_point(measure, point)
    row["wall_time_s"] = round(time.perf_counter() - start, 4)
    return row


def _measure_tag(measure: Callable) -> str:
    """A stable cache tag for a measure callable (never a repr with an
    object address, which would defeat cross-run caching)."""
    tag = getattr(measure, "__qualname__", None)
    if tag is None and isinstance(measure, functools.partial):
        tag = getattr(measure.func, "__qualname__", None)
    return tag or f"measure:{getattr(measure, '__module__', '?')}"


def sweep(
    measure: Callable[..., Mapping[str, Any]],
    grid: Mapping[str, Sequence[Any]],
    max_workers: int = 1,
    cache: Optional[RunCache] = None,
    cache_tag: Optional[str] = None,
    fidelity: Optional[str] = None,
    record_timing: bool = False,
    telemetry: Optional[Telemetry] = None,
    ledger: Optional[Ledger] = None,
    ledger_kind: str = "sweep",
) -> SweepResult:
    """Run ``measure(**point)`` over the cartesian product of ``grid``.

    ``measure`` returns a mapping of result columns; the sweep prepends
    the parameter values to every row.  Cells are independent, so with
    ``max_workers > 1`` they are fanned out over worker processes (when
    ``measure`` is picklable; closures silently run serially) with
    results reassembled in grid order -- identical to a serial run.

    With a ``cache``, each cell is keyed by (tag, point, package
    version) and only missing cells are computed.  ``cache_tag``
    defaults to the measure's qualified name; pass an explicit tag if
    the measure's behaviour depends on state the point does not encode.

    ``fidelity`` picks a simulation rung
    (:data:`repro.simulators.prototype.FIDELITIES`) for the whole
    sweep: it becomes a parameter column on every row -- and thereby
    part of every cell's cache key, so rungs never alias -- and is
    passed to ``measure`` as a keyword, which must accept it
    (:func:`prototype_response_s` does).

    ``record_timing=True`` appends a ``wall_time_s`` column with each
    cell's host-clock cost.  Off by default: the column is
    machine-dependent, and cache hits replay the *computing* run's
    timing, so timed sweeps are for sizing runs, not for comparing
    against cached results.

    ``telemetry`` turns on pipeline observability: the sweep runs
    under a ``sweep`` span, every computed cell records ``cell`` /
    ``measure`` / ``simulate`` child spans and per-cell counters (in
    the worker process when parallel -- the executor ships them home
    and merges in submission order), and cache hits/misses land as
    span events on the sweep span.  ``ledger`` additionally appends
    one :class:`~repro.obs.ledger.LedgerEntry` (kind ``ledger_kind``)
    recording the run's config hash, wall time, cache share and
    metrics digest.
    """
    started = time.perf_counter()
    grid_names = list(grid.keys())
    names = list(grid_names)
    extra: Dict[str, Any] = {}
    if fidelity is not None:
        if fidelity not in FIDELITIES:
            raise ValueError(
                f"fidelity must be one of {FIDELITIES}, got {fidelity!r}"
            )
        if "fidelity" in grid:
            raise ValueError("pass fidelity either in the grid or as the "
                             "sweep argument, not both")
        names.append("fidelity")
        extra["fidelity"] = fidelity
    points = [
        dict(zip(grid_names, values), **extra)
        for values in itertools.product(*(grid[name] for name in grid_names))
    ]
    tag = cache_tag or _measure_tag(measure)
    result = SweepResult(parameters=names)
    before = (cache.hits, cache.misses) if cache is not None else (0, 0)
    # Execution geometry (worker count, chunking) is deliberately NOT a
    # span attribute: span structure must be identical whatever the
    # parallelism, so only workload-identity attrs go on the sweep span.
    sweep_span = (
        telemetry.spans.span("sweep", tag=tag, cells=len(points))
        if telemetry is not None else nullcontext()
    )
    with sweep_span:
        result.rows.extend(
            _cached_pmap(
                functools.partial(
                    _timed_eval_point if record_timing else _eval_point, measure
                ),
                points,
                max_workers=max_workers,
                cache=cache,
                keys=None if cache is None else [
                    cache_key(kind="sweep", tag=tag, point=point)
                    for point in points
                ],
                telemetry=telemetry,
            )
        )
    if cache is not None:
        # Surface this sweep's share of the cache accounting instead of
        # silently dropping it (the cache object may be long-lived).
        hits = cache.hits - before[0]
        misses = cache.misses - before[1]
        total = hits + misses
        result.cache_stats = {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / total, 4) if total else 0.0,
        }
    if ledger is not None:
        ledger.append(LedgerEntry(
            kind=ledger_kind,
            label=tag,
            config_hash=fingerprint(
                {"tag": tag, "grid": {k: list(v) for k, v in grid.items()},
                 "fidelity": fidelity}
            ),
            fidelity=fidelity,
            wall_time_s=round(time.perf_counter() - started, 4),
            cells=len(points),
            cache=result.cache_stats,
            metrics_digest=(
                fingerprint(telemetry.metrics.snapshot())
                if telemetry is not None else None
            ),
            results=_sweep_ledger_results(result),
        ))
    return result


def _sweep_ledger_results(result: SweepResult) -> Dict[str, Any]:
    """The diffable scalar summary a sweep leaves in the ledger."""
    out: Dict[str, Any] = {}
    misses = [r["misses"] for r in result.rows
              if isinstance(r.get("misses"), int)]
    if misses:
        out["total_deadline_misses"] = sum(misses)
    responses = [r["response_s"] for r in result.rows
                 if isinstance(r.get("response_s"), (int, float))]
    if responses:
        out["mean_response_s"] = round(sum(responses) / len(responses), 6)
    return out


def _cached_pmap(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    max_workers: int = 1,
    cache: Optional[RunCache] = None,
    keys: Optional[Sequence[str]] = None,
    telemetry: Optional[Telemetry] = None,
) -> List[Any]:
    """:func:`pmap` with a content-addressed cache in front.

    Cache hits are taken as-is; only misses are computed (in parallel
    when requested) and stored; the combined results come back in item
    order, so cached and fresh runs interleave transparently.

    With ``telemetry``, every lookup lands as a ``cache_hit`` /
    ``cache_miss`` event on the current span plus a labelled counter.
    Lookups always run in the *calling* process (serial or parallel),
    so the event order is the item order either way -- part of the
    serial == parallel determinism contract.
    """
    if cache is None:
        return pmap(fn, items, max_workers=max_workers, telemetry=telemetry)
    assert keys is not None and len(keys) == len(items)
    results: List[Any] = [None] * len(items)
    pending: List[int] = []
    for index, key in enumerate(keys):
        hit, value = cache.lookup(key)
        if telemetry is not None:
            name = "cache_hit" if hit else "cache_miss"
            telemetry.spans.event(name, index=index, key=key[:16])
            telemetry.metrics.counter(
                "sweep_cache_lookups_total", labels={"outcome": name[6:]},
                help="run-cache lookups by outcome").inc()
        if hit:
            results[index] = value
        else:
            pending.append(index)
    computed = pmap(fn, [items[i] for i in pending], max_workers=max_workers,
                    telemetry=telemetry)
    for index, value in zip(pending, computed):
        cache.put(keys[index], value)
        results[index] = value
    return results


# --------------------------------------------------------------- measurements
def prototype_response_s(
    n_cpus: int = 2,
    utilization: float = 0.5,
    scale: int = 1_000,
    costs: KernelCosts = None,
    bindings: Dict[str, TaskBinding] = None,
    mpic_ack_timeout: int = None,
    arrival_s: float = 1.0,
    horizon_margin_s: float = 17.0,
    fidelity: str = "prototype",
) -> Dict[str, Any]:
    """One run of the automotive workload on the chosen fidelity rung.

    Returns the aperiodic response time, the schedulability verdict
    and the rung's own counters (columns differ per rung; the sweep
    CSV writer handles ragged rows).  Knobs a rung does not model are
    ignored there: the theoretical rung has no kernel costs, bindings
    or MPIC; the TLM rung has no MPIC acknowledge path and no
    per-cycle ``scale`` (it always runs the full-size workload).
    """
    taskset = prepare_taskset(
        build_automotive_taskset(utilization, n_cpus), n_cpus, tick=TICK
    )
    check_taskset(taskset, n_cpus, tick=TICK)
    arrival = int(arrival_s * CLOCK_HZ)
    horizon = arrival + int(horizon_margin_s * CLOCK_HZ)
    arrivals = {AUTOMOTIVE_APERIODIC: [arrival]}

    if fidelity == "theoretical":
        from repro.simulators.theoretical import TheoreticalSimulator

        theo = TheoreticalSimulator(
            taskset, n_cpus, tick=TICK, overhead=0.02, aperiodic_arrivals=arrivals
        )
        with _pipeline_span("simulate", fidelity=fidelity, horizon=horizon):
            theo.run(horizon)
        metrics = compute_metrics(theo.finished_jobs, horizon)
        return {
            "response_s": cycles_to_seconds(
                metrics.response_of(AUTOMOTIVE_APERIODIC).mean
            ),
            "misses": metrics.deadline_misses,
            "context_switches": theo.context_switches,
        }

    if fidelity == "tlm":
        from repro.simulators.tlm import TLMSimulator

        sim = TLMSimulator(
            taskset,
            n_cpus,
            tick=TICK,
            bindings=bindings if bindings is not None else automotive_bindings(),
            aperiodic_arrivals=arrivals,
            costs=costs or KernelCosts(),
        )
        with _pipeline_span("simulate", fidelity=fidelity, horizon=horizon):
            sim.run(horizon)
        metrics = compute_metrics(sim.finished_jobs, horizon)
        stats = sim.stats()
        return {
            "response_s": cycles_to_seconds(
                metrics.response_of(AUTOMOTIVE_APERIODIC).mean
            ),
            "misses": metrics.deadline_misses,
            "context_switches": stats["context_switches"],
            "tlm_transactions": stats["tlm_transactions"],
            "tlm_contention_wait_cycles": stats["tlm_contention_wait_cycles"],
        }

    if fidelity != "prototype":
        raise ValueError(
            f"fidelity must be one of {FIDELITIES}, got {fidelity!r}"
        )
    proto = PrototypeSimulator(
        taskset,
        PrototypeConfig(n_cpus=n_cpus, tick=TICK, scale=scale,
                        costs=costs or KernelCosts()),
        bindings=bindings if bindings is not None else automotive_bindings(),
        aperiodic_arrivals=arrivals,
    )
    if mpic_ack_timeout is not None:
        proto.soc.intc.ack_timeout = mpic_ack_timeout
    with _pipeline_span("simulate", fidelity=fidelity, horizon=horizon):
        proto.run(horizon)
    metrics = compute_metrics(proto.finished_jobs, horizon // scale)
    response = proto.to_full_scale(
        int(metrics.response_of(AUTOMOTIVE_APERIODIC).mean)
    )
    stats = proto.stats()
    return {
        "response_s": cycles_to_seconds(response),
        "misses": metrics.deadline_misses,
        "bus_utilization": round(stats["bus_utilization"], 4),
        "context_switches": stats["context_switches"],
        "mpic_timeouts": stats["mpic_timeouts"],
    }


# ------------------------------------------------------------- observability
def prototype_run_report(
    n_cpus: int = 2,
    utilization: float = 0.5,
    scale: int = 1_000,
    arrival_s: float = 1.0,
    horizon_margin_s: float = 17.0,
    monitor_windows: int = 50,
    trace: Any = None,
    run_cache: Optional[RunCache] = None,
    label: Optional[str] = None,
):
    """One fully instrumented prototype run -> :class:`RunReport`.

    Same workload as :func:`prototype_response_s`, but wired for
    observability: a :class:`~repro.obs.metrics.MetricsRegistry`
    threaded through the kernel, MPIC and sync engine (scheduler-cycle
    latency, queue depths, IPI latency, lock wait/hold times), a
    windowed bus monitor folded into the registry, per-cpu i-cache and
    optional run-cache hit rates, and a trace summary.  ``trace`` may
    be a prepared :class:`~repro.trace.recorder.TraceRecorder` (e.g.
    over a JSONL sink); by default the run traces into a bounded ring
    buffer so memory stays flat at any horizon.
    """
    from repro.hw.monitor import BusMonitor
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.report import RunReport, fold_icaches, fold_run_cache
    from repro.obs.sinks import RingBufferSink
    from repro.trace.recorder import TraceRecorder

    registry = MetricsRegistry()
    if trace is None:
        trace = TraceRecorder(sink=RingBufferSink(capacity=65_536))

    taskset = prepare_taskset(
        build_automotive_taskset(utilization, n_cpus), n_cpus, tick=TICK
    )
    check_taskset(taskset, n_cpus, tick=TICK)
    arrival = int(arrival_s * CLOCK_HZ)
    horizon = arrival + int(horizon_margin_s * CLOCK_HZ)
    proto = PrototypeSimulator(
        taskset,
        PrototypeConfig(n_cpus=n_cpus, tick=TICK, scale=scale),
        bindings=automotive_bindings(),
        aperiodic_arrivals={AUTOMOTIVE_APERIODIC: [arrival]},
        trace=trace,
        metrics=registry,
    )
    scaled_horizon = horizon // scale
    monitor = BusMonitor(
        proto.soc.sim, proto.soc.bus,
        window=max(1, scaled_horizon // max(1, monitor_windows)),
    )
    monitor.start()
    proto.run(horizon)
    monitor.stop()

    monitor.fold_into(registry)
    fold_icaches(registry, (core.icache for core in proto.soc.cores))
    if run_cache is not None:
        fold_run_cache(registry, run_cache)

    metrics = compute_metrics(proto.finished_jobs, scaled_horizon, trace=trace)
    response = proto.to_full_scale(
        int(metrics.response_of(AUTOMOTIVE_APERIODIC).mean)
    )
    registry.gauge("aperiodic_response_s",
                   help="mean aperiodic response time (full-scale seconds)").set(
        round(cycles_to_seconds(response), 6))
    registry.gauge("deadline_misses",
                   help="deadline misses over the run").set(metrics.deadline_misses)

    trace.close()
    return RunReport.build(
        label=label or f"prototype {n_cpus}P@{utilization:.0%}",
        registry=registry,
        params={
            "n_cpus": n_cpus,
            "utilization": utilization,
            "scale": scale,
            "arrival_s": arrival_s,
            "horizon_margin_s": horizon_margin_s,
        },
        kernel_stats=proto.stats(),
        trace=trace,
    )


# ------------------------------------------------------------------ ablations
def context_cost_sweep(
    multipliers: Sequence[int] = (1, 10, 100, 1000),
    cache: Optional[RunCache] = None,
    fidelity: str = "prototype",
) -> SweepResult:
    """Response vs context-switch cost (primitive + regfile scaled)."""

    def measure(multiplier: int, fidelity: str = "prototype") -> Dict[str, Any]:
        base = KernelCosts()
        costs = KernelCosts(
            context_primitive=base.context_primitive * multiplier,
            regfile_words=base.regfile_words * multiplier,
        )
        return prototype_response_s(costs=costs, fidelity=fidelity)

    return sweep(measure, {"multiplier": list(multipliers)},
                 cache=cache, cache_tag="context_cost_sweep",
                 fidelity=fidelity)


def traffic_intensity_sweep(
    scales: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
    cache: Optional[RunCache] = None,
    fidelity: str = "prototype",
) -> SweepResult:
    """Response vs shared-memory traffic density (x the characterised
    profiles; 1.0 = calibrated)."""

    def measure(traffic: float, fidelity: str = "prototype") -> Dict[str, Any]:
        bindings = {}
        for name, binding in automotive_bindings().items():
            period = max(20, int(round(binding.profile.access_period / traffic)))
            bindings[name] = TaskBinding(
                profile=ExecutionProfile(access_period=period,
                                         access_words=binding.profile.access_words),
                stack_words=binding.stack_words,
            )
        return prototype_response_s(bindings=bindings, fidelity=fidelity)

    return sweep(measure, {"traffic": list(scales)},
                 cache=cache, cache_tag="traffic_intensity_sweep",
                 fidelity=fidelity)


def processor_scaling_sweep(
    cpus: Sequence[int] = (2, 3, 4),
    utilization: float = 0.5,
    max_workers: int = 1,
    cache: Optional[RunCache] = None,
    fidelity: str = "prototype",
) -> SweepResult:
    """Response vs processor count at fixed per-cpu utilization."""
    measure = functools.partial(_scaling_measure, utilization=utilization)
    return sweep(measure, {"n_cpus": list(cpus)}, max_workers=max_workers,
                 cache=cache, cache_tag="processor_scaling_sweep",
                 fidelity=fidelity)


def _scaling_measure(
    n_cpus: int, utilization: float, fidelity: str = "prototype"
) -> Dict[str, Any]:
    return prototype_response_s(
        n_cpus=n_cpus, utilization=utilization, fidelity=fidelity
    )


def mpic_timeout_sweep(
    timeouts: Sequence[int] = (50, 500, 5_000, 50_000),
    max_workers: int = 1,
    cache: Optional[RunCache] = None,
) -> SweepResult:
    """Response vs the MPIC acknowledge timeout (re-routing window)."""
    return sweep(_mpic_measure, {"ack_timeout": list(timeouts)},
                 max_workers=max_workers,
                 cache=cache, cache_tag="mpic_timeout_sweep")


def _mpic_measure(ack_timeout: int) -> Dict[str, Any]:
    return prototype_response_s(mpic_ack_timeout=ack_timeout)


def verified_wcet_sweep(
    period_scales: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    n_cpus: int = 2,
    max_workers: int = 1,
    cache: Optional[RunCache] = None,
) -> SweepResult:
    """Schedulability with verified vs annotated C_i as periods tighten.

    At each scale the asmlib-kernel task set
    (:data:`repro.analysis.verified.DEFAULT_SPECS`, periods multiplied
    by the scale) is analysed twice: once with annotation-derived WCETs
    and once with the abstract-interpretation-verified ones.  The
    interesting region is where the verified bounds admit a set the
    annotated bounds reject.
    """
    measure = functools.partial(_verified_measure, n_cpus=n_cpus)
    return sweep(measure, {"period_scale": list(period_scales)},
                 max_workers=max_workers,
                 cache=cache, cache_tag="verified_wcet_sweep")


def _verified_measure(period_scale: float, n_cpus: int) -> Dict[str, Any]:
    from repro.analysis.verified import DEFAULT_SPECS, analyse_verified, scale_periods

    specs = scale_periods(DEFAULT_SPECS, period_scale)
    row: Dict[str, Any] = {}
    for source in ("verified", "annotated"):
        result = analyse_verified(specs=specs, n_cpus=n_cpus, wcet_source=source)
        row[f"{source}_schedulable"] = result.schedulable
        row[f"{source}_utilization"] = (
            round(result.report.total_utilization, 4)
            if result.report is not None
            else None
        )
    row["verified_only"] = (
        row["verified_schedulable"] and not row["annotated_schedulable"]
    )
    return row


# -------------------------------------------------------------- fault campaigns
def _fault_campaign_cell(
    seed: int,
    recovery_on: bool,
    until: int,
    n_faults: int,
    min_gap: int,
    fidelity: str = "prototype",
) -> Dict[str, Any]:
    """One campaign run (module-level so ``pmap`` can pickle it).

    The plan is regenerated from the seed inside the cell, so the cell
    is a pure function of its (cache-keyed) parameters.
    """
    if fidelity != "prototype":
        raise ValueError(
            "fault campaigns drive the kernel-on-SoC rung; the "
            f"{fidelity!r} rung has no kernel fault surface"
        )
    from repro.faults.plan import random_plan
    from repro.faults.scenarios import campaign_cell, demo_taskset

    taskset = demo_taskset()
    wcets = {task.name: task.wcet for task in taskset.periodic}
    plan = random_plan(
        seed=seed, horizon=until, tasks=wcets, n_cpus=2,
        n_faults=n_faults, min_gap=min_gap,
    )
    recovery = {"enabled": True} if recovery_on else None
    return campaign_cell(
        {"plan": plan.to_dict(), "recovery": recovery, "until": until}
    )


def fault_campaign(
    n_runs: int = 4,
    seed: int = 0,
    recovery: bool = True,
    until: int = 400_000,
    n_faults: int = 4,
    min_gap: int = 0,
    max_workers: int = 1,
    cache: Optional[RunCache] = None,
    perfetto_out: Optional[str] = None,
    fidelity: str = "prototype",
    telemetry: Optional[Telemetry] = None,
    ledger: Optional[Ledger] = None,
) -> SweepResult:
    """N seeded fault-injection runs over the ``pmap`` pool.

    Each cell injects a fresh :func:`repro.faults.plan.random_plan`
    (seeds ``seed .. seed+n_runs-1``) into the demo workload and
    reports miss/recovery/degradation statistics.  Cells are cached
    under their (seed, knobs) key like every other sweep, so repeated
    campaigns only pay for new seeds.  ``min_gap`` spaces kernel-level
    faults so campaigns can be matched against a
    :class:`repro.analysis.schedulability.FaultModel`.

    ``perfetto_out`` additionally re-runs the first seed with a full
    trace and writes a Perfetto-loadable file whose instant events
    mark every injection, consumed fault, retry, shed and deadline
    miss.

    ``fidelity`` is threaded for cache-key/column uniformity with the
    other sweeps, but only the ``prototype`` rung carries the
    kernel-level fault surface, so any other value raises.

    ``telemetry`` / ``ledger`` behave as in :func:`sweep`; campaign
    ledger entries are recorded under kind ``campaign``.
    """
    result = sweep(
        _fault_campaign_cell,
        {
            "seed": [seed + i for i in range(n_runs)],
            "recovery_on": [recovery],
            "until": [until],
            "n_faults": [n_faults],
            "min_gap": [min_gap],
        },
        max_workers=max_workers,
        cache=cache,
        cache_tag="fault_campaign",
        fidelity=fidelity,
        telemetry=telemetry,
        ledger=ledger,
        ledger_kind="campaign",
    )
    if perfetto_out is not None:
        from repro.faults.plan import random_plan
        from repro.faults.scenarios import demo_taskset, run_scenario
        from repro.obs.perfetto import write_chrome_trace

        taskset = demo_taskset()
        wcets = {task.name: task.wcet for task in taskset.periodic}
        plan = random_plan(
            seed=seed, horizon=until, tasks=wcets, n_cpus=2,
            n_faults=n_faults, min_gap=min_gap,
        )
        traced = run_scenario(
            plan=plan,
            recovery={"enabled": True} if recovery else None,
            until=until,
        )
        write_chrome_trace(traced["trace"], perfetto_out, horizon=until)
    return result
