"""Figure 3: the worked dual-MicroBlaze schedule example.

"Figure 3 shows an example of scheduling on a dual processor
architecture with three periodic and two aperiodic tasks. ...
Priorities can be 0 and 1 for periodic tasks in low priority mode and
3 and 4 in high priority.  Aperiodic tasks are thus positioned with
priority 2.  Schedule A shows that without aperiodic tasks, we have an
available slot in timeslice 2 on MicroBlaze 0.  However, ... to
guarantee completion before timeslice 3, task P2 has been promoted to
high priority.  Schedule B adds the two aperiodic tasks, which arrive
at the beginning of timeslices 1 and 2.  Part of task A1 is executed
as soon as it arrives, since P1 in timeslice 1 is in low priority.
However, at timeslice 2, P1 gets promoted to its high priority, A1 is
interrupted and P1 completed.  A2 arrives at timeslice 2 and it is
inserted in the queue after A1.  So it waits for the completion of the
higher priority promoted periodic tasks and the allocation of the
remaining part of A1 before starting."

This module builds a task table realising that narrative, runs it
through the *same* MPDP policy the kernel uses (via the theoretical
simulator with zero overhead -- the figure is an idealised schedule),
and renders both schedules as interval tables and ASCII Gantt charts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.task import AperiodicTask, PeriodicTask, TaskSet
from repro.simulators.theoretical import TheoreticalSimulator
from repro.trace.gantt import render_gantt, render_interval_table
from repro.trace.recorder import TraceRecorder

#: One timeslice (the scheduling tick of the example) in cycles.
SLICE = 10_000

#: The example spans the interesting timeslices plus slack.
HORIZON_SLICES = 7


def figure3_taskset(with_aperiodics: bool) -> TaskSet:
    """The Figure 3 task table.

    Periodic tasks (times in slices):

    ====  ===  ===  ===  =========  ========  =========  ====
    task  C    T    D    low prio   high prio  promotion  cpu
    ====  ===  ===  ===  =========  ========  =========  ====
    P1    2    8    4    0          4          2          1
    P2    4    8    5    1          3          1          0
    P3    2    8    8    0          3          6          0
    ====  ===  ===  ===  =========  ========  =========  ====

    Aperiodic tasks: A1 (C=2, arrives at slice 1), A2 (C=1, arrives at
    slice 2), middle-band priority, FIFO.
    """
    periodic = [
        PeriodicTask(
            name="P1", wcet=2 * SLICE, period=8 * SLICE, deadline=4 * SLICE,
            low_priority=0, high_priority=4, cpu=1, promotion=2 * SLICE,
        ),
        PeriodicTask(
            name="P2", wcet=4 * SLICE, period=8 * SLICE, deadline=5 * SLICE,
            low_priority=1, high_priority=3, cpu=0, promotion=1 * SLICE,
        ),
        PeriodicTask(
            name="P3", wcet=2 * SLICE, period=8 * SLICE, deadline=8 * SLICE,
            low_priority=0, high_priority=3, cpu=0, promotion=6 * SLICE,
        ),
    ]
    aperiodic = []
    if with_aperiodics:
        aperiodic = [
            AperiodicTask(name="A1", wcet=2 * SLICE, arrivals=(1 * SLICE,)),
            AperiodicTask(name="A2", wcet=1 * SLICE, arrivals=(2 * SLICE,)),
        ]
    return TaskSet(periodic, aperiodic)


def _run(taskset: TaskSet) -> Tuple[TheoreticalSimulator, TraceRecorder]:
    trace = TraceRecorder()
    sim = TheoreticalSimulator(
        taskset, n_cpus=2, tick=SLICE, overhead=0.0, trace=trace
    )
    sim.run(HORIZON_SLICES * SLICE)
    return sim, trace


def run_schedule_a():
    """Schedule A: periodic tasks only."""
    return _run(figure3_taskset(with_aperiodics=False))


def run_schedule_b():
    """Schedule B: periodic + the two aperiodic arrivals."""
    return _run(figure3_taskset(with_aperiodics=True))


def schedule_report(label: str, sim: TheoreticalSimulator, trace: TraceRecorder) -> str:
    """Human-readable rendering of one schedule (Gantt + intervals)."""
    horizon = HORIZON_SLICES * SLICE
    lines = [
        f"Schedule {label}",
        render_gantt(trace, horizon=horizon, slot=SLICE // 4, n_cpus=2),
        "",
        render_interval_table(trace, horizon=horizon, n_cpus=2),
        "",
        "finished: "
        + ", ".join(
            f"{job.name}@{job.finish_time}" for job in sim.finished_jobs
        ),
        "promotions: "
        + ", ".join(e.job for e in trace.of_kind("promote")),
    ]
    return "\n".join(lines)


def narrative_checks_a(sim: TheoreticalSimulator, trace: TraceRecorder) -> Dict[str, bool]:
    """The claims the paper makes about schedule A, as booleans."""
    window = 5 * SLICE
    intervals = trace.busy_intervals(window)

    def busy(cpu: int) -> int:
        return sum(
            min(end, window) - start
            for start, end, _ in intervals.get(cpu, [])
            if start < window
        )

    free_slot = (2 * window - busy(0) - busy(1)) >= SLICE
    p2 = next(j for j in sim.finished_jobs if j.task.name == "P2")
    return {
        "periodic-only schedule leaves a free timeslice": free_slot,
        "P2 was promoted": p2.promoted,
        "P2 completed before its deadline (timeslice 5)": p2.finish_time <= 5 * SLICE,
        "no deadline missed": not any(j.missed_deadline for j in sim.finished_jobs),
    }


def narrative_checks_b(sim: TheoreticalSimulator, trace: TraceRecorder) -> Dict[str, bool]:
    """The claims the paper makes about schedule B."""
    finished = {job.task.name: job for job in sim.finished_jobs}
    a1, a2, p1 = finished["A1"], finished["A2"], finished["P1"]
    a1_started_on_arrival = a1.start_time == 1 * SLICE
    p1_promoted_slice2 = any(
        e.kind == "promote" and e.job.startswith("P1") and e.time == 2 * SLICE
        for e in trace
    )
    a1_preempted = a1.preemptions >= 1
    a2_after_a1 = a2.start_time >= a1.finish_time
    return {
        "A1 starts as soon as it arrives": a1_started_on_arrival,
        "P1 promoted at timeslice 2": p1_promoted_slice2,
        "A1 interrupted by the promotion": a1_preempted,
        "P1 completes before A1 resumes finishing": p1.finish_time <= a1.finish_time,
        "A2 starts only after A1 completes": a2_after_a1,
        "no deadline missed": not any(
            j.missed_deadline for j in sim.finished_jobs if j.is_periodic
        ),
    }


def main() -> int:
    sim_a, trace_a = run_schedule_a()
    print(schedule_report("A (periodic only)", sim_a, trace_a))
    print()
    for claim, holds in narrative_checks_a(sim_a, trace_a).items():
        print(f"  [{'ok' if holds else 'FAIL'}] {claim}")
    print()
    sim_b, trace_b = run_schedule_b()
    print(schedule_report("B (with aperiodics)", sim_b, trace_b))
    print()
    for claim, holds in narrative_checks_b(sim_b, trace_b).items():
        print(f"  [{'ok' if holds else 'FAIL'}] {claim}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
