"""Online aperiodic response estimation and soft-deadline admission.

MPDP serves aperiodic jobs best-effort; the Banús et al. line of work
also studies *acceptance tests* that predict, at arrival time, whether
a soft aperiodic job can finish by its soft deadline.  This module
implements a conservative estimator over the live scheduler state:

- every processor is available to the aperiodic FIFO except while it
  runs promoted work, so the earliest the new job can start is when
  its FIFO predecessors have drained through the non-promoted capacity;
- promoted interference within the estimation window is bounded by
  each periodic task's upper-band demand (one W_i per release whose
  promotion instant falls inside the window).

The estimate is an upper bound under the same assumptions as the
offline analysis, so "admit" answers are safe for soft guarantees
while "reject" answers may be pessimistic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.mpdp import MPDPScheduler
from repro.core.task import Job


@dataclass(frozen=True)
class AdmissionVerdict:
    """Outcome of an acceptance query."""

    admitted: bool
    estimated_finish: int
    soft_deadline: Optional[int]
    backlog: int            # aperiodic work queued ahead (cycles)
    promoted_interference: int  # upper-band demand in the window (cycles)

    @property
    def estimated_response(self) -> int:
        return self.estimated_finish


class AperiodicAdmissionController:
    """Estimates aperiodic response times over live MPDP state."""

    def __init__(self, scheduler: MPDPScheduler):
        self.scheduler = scheduler

    # ------------------------------------------------------------- estimation
    def _aperiodic_backlog(self) -> int:
        """Remaining work of queued + running aperiodic jobs."""
        backlog = sum(job.remaining for job in self.scheduler.aperiodic_ready)
        backlog += sum(
            job.remaining
            for job in self.scheduler.running
            if job is not None and not job.is_periodic
        )
        return backlog

    def _promoted_demand(self, now: int, window: int) -> int:
        """Upper bound on promoted periodic work inside the window.

        Counts the remaining work of currently promoted jobs plus one
        full WCET per future promotion instant that lands in the
        window (each release promotes at most once).
        """
        demand = 0
        for queue in self.scheduler.local:
            for job in queue:
                demand += job.remaining
        for job in self.scheduler.running:
            if job is not None and job.is_periodic and job.promoted:
                demand += job.remaining
        for task in self.scheduler.taskset.periodic:
            if task.promotion is None:
                continue
            # Promotions occur at release + U + k*T for releases in
            # the window; bound their count by the window/period.
            promotions = math.ceil(window / task.period)
            demand += promotions * task.wcet
        return demand

    def estimate_response(self, now: int, wcet: int, window_cap: int = 1 << 62) -> int:
        """Upper-bound response estimate for a job arriving ``now``.

        Fixpoint over the window length: the job finishes when the
        total demand ahead of it (its own work, the aperiodic FIFO
        backlog, and the promoted interference in the window) fits in
        the capacity ``n_cpus * window``.
        """
        if wcet <= 0:
            raise ValueError("wcet must be positive")
        n_cpus = self.scheduler.n_cpus
        backlog = self._aperiodic_backlog()
        window = max(1, (wcet + backlog) // n_cpus)
        for _ in range(64):
            demand = wcet + backlog + self._promoted_demand(now, window)
            next_window = math.ceil(demand / n_cpus)
            if next_window <= window:
                return window
            window = min(next_window, window_cap)
            if window >= window_cap:
                return window_cap
        return window

    # --------------------------------------------------------------- admission
    def admit(self, job: Job, now: int, soft_deadline: Optional[int] = None) -> AdmissionVerdict:
        """Accept/reject a newly arrived aperiodic job.

        ``soft_deadline`` is relative to ``now``; when None, the task's
        own ``soft_deadline`` (if any) is used, and the job is always
        admitted when neither exists (pure best-effort).
        """
        if job.is_periodic:
            raise TypeError("admission control applies to aperiodic jobs")
        deadline = soft_deadline
        if deadline is None:
            deadline = job.task.soft_deadline
        estimate = self.estimate_response(now, job.remaining)
        backlog = self._aperiodic_backlog()
        promoted = self._promoted_demand(now, estimate)
        admitted = deadline is None or estimate <= deadline
        return AdmissionVerdict(
            admitted=admitted,
            estimated_finish=estimate,
            soft_deadline=deadline,
            backlog=backlog,
            promoted_interference=promoted,
        )
