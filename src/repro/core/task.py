"""Task and job model for the dual-priority system.

All times are integer clock cycles.  The paper's Figure 3 numbering is
followed for priorities: **larger numeric priority wins**.  Periodic
(hard) tasks own two priorities, one in the lower band and one in the
upper band; aperiodic (soft) tasks live in the middle band.  A band is
always compared before the in-band priority, so a promoted periodic
task beats every aperiodic task, which beats every unpromoted periodic
task.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class Band(enum.IntEnum):
    """The three dual-priority bands; larger is more urgent."""

    LOWER = 0
    MIDDLE = 1
    UPPER = 2


class JobState(enum.Enum):
    """Lifecycle of a job instance."""

    WAITING = "waiting"      # periodic job parked until its release time
    READY = "ready"          # released, not running
    RUNNING = "running"
    FINISHED = "finished"


@dataclass(frozen=True)
class PeriodicTask:
    """A hard periodic task.

    Parameters
    ----------
    name:
        Unique identifier.
    wcet:
        Worst-case execution time in cycles (C_i).
    period:
        Release period in cycles (T_i).
    deadline:
        Relative deadline in cycles (D_i); defaults to the period.
    low_priority / high_priority:
        Fixed in-band priorities (larger wins).  By default both are
        derived later from a deadline-monotonic ordering; explicit
        values reproduce the paper's Figure 3 table.
    acet:
        Actual execution time in cycles.  Real jobs execute for
        ``acet`` cycles; the analysis and utilization math use the
        (padded) ``wcet`` budget, mirroring the paper's offline tool
        which determined worst cases "taking in account an overhead for
        the context switching and considering the most complex
        datasets".  Defaults to ``wcet``.
    cpu:
        Home processor index for the post-promotion (local) phase.
        Assigned by :func:`repro.analysis.partitioning.partition`.
    promotion:
        Promotion delay U_i relative to release (0 <= U_i <= D_i).
        Computed offline as ``D_i - W_i``; ``None`` means "not yet
        analysed" and is rejected by the schedulers.
    offset:
        Release offset of the first job.
    """

    name: str
    wcet: int
    period: int
    deadline: Optional[int] = None
    low_priority: int = 0
    high_priority: int = 0
    cpu: int = 0
    promotion: Optional[int] = None
    offset: int = 0
    acet: Optional[int] = None

    def __post_init__(self):
        if self.wcet <= 0:
            raise ValueError(f"{self.name}: wcet must be positive, got {self.wcet}")
        if self.acet is None:
            object.__setattr__(self, "acet", self.wcet)
        if not 0 < self.acet <= self.wcet:
            raise ValueError(
                f"{self.name}: acet must satisfy 0 < acet <= wcet, got {self.acet}"
            )
        if self.period <= 0:
            raise ValueError(f"{self.name}: period must be positive, got {self.period}")
        if self.deadline is None:
            object.__setattr__(self, "deadline", self.period)
        if self.deadline <= 0 or self.deadline > self.period:
            raise ValueError(
                f"{self.name}: deadline must satisfy 0 < D <= T, got D={self.deadline}, T={self.period}"
            )
        if self.wcet > self.deadline:
            raise ValueError(
                f"{self.name}: wcet {self.wcet} exceeds deadline {self.deadline}; trivially unschedulable"
            )
        if self.offset < 0:
            raise ValueError(f"{self.name}: offset must be non-negative")
        if self.promotion is not None and not 0 <= self.promotion <= self.deadline:
            raise ValueError(
                f"{self.name}: promotion must satisfy 0 <= U <= D, got U={self.promotion}"
            )

    @property
    def utilization(self) -> float:
        """C_i / T_i."""
        return self.wcet / self.period

    def with_promotion(self, promotion: int) -> "PeriodicTask":
        """Copy of this task with promotion delay U_i set."""
        return self._replace(promotion=promotion)

    def with_cpu(self, cpu: int) -> "PeriodicTask":
        """Copy of this task pinned to home processor ``cpu``."""
        return self._replace(cpu=cpu)

    def with_priorities(self, low: int, high: int) -> "PeriodicTask":
        """Copy of this task with both band priorities set."""
        return self._replace(low_priority=low, high_priority=high)

    def _replace(self, **changes) -> "PeriodicTask":
        values = dict(
            name=self.name,
            wcet=self.wcet,
            period=self.period,
            deadline=self.deadline,
            low_priority=self.low_priority,
            high_priority=self.high_priority,
            cpu=self.cpu,
            promotion=self.promotion,
            offset=self.offset,
            acet=self.acet,
        )
        values.update(changes)
        return PeriodicTask(**values)

    def release_times(self, until: int) -> Iterator[int]:
        """Yield absolute release times strictly below ``until``."""
        time = self.offset
        while time < until:
            yield time
            time += self.period


@dataclass(frozen=True)
class AperiodicTask:
    """A soft aperiodic task, released by an interrupt.

    ``arrivals`` may carry a fixed list of absolute arrival times; the
    simulators can also drive arrivals from a stochastic source or a
    peripheral model, in which case it stays empty.
    """

    name: str
    wcet: int
    arrivals: Tuple[int, ...] = ()
    # Soft deadline used only for reporting (response-time ratio).
    soft_deadline: Optional[int] = None
    acet: Optional[int] = None

    def __post_init__(self):
        if self.wcet <= 0:
            raise ValueError(f"{self.name}: wcet must be positive, got {self.wcet}")
        if self.acet is None:
            object.__setattr__(self, "acet", self.wcet)
        if not 0 < self.acet <= self.wcet:
            raise ValueError(
                f"{self.name}: acet must satisfy 0 < acet <= wcet, got {self.acet}"
            )
        if any(t < 0 for t in self.arrivals):
            raise ValueError(f"{self.name}: arrivals must be non-negative")
        if list(self.arrivals) != sorted(self.arrivals):
            raise ValueError(f"{self.name}: arrivals must be sorted")


class Job:
    """A runtime instance of a task.

    Jobs are mutable: the schedulers decrement ``remaining`` and move
    the job between queues.  ``key()`` gives the effective priority as
    a tuple ordered so that larger compares greater.
    """

    _seq = 0

    def __init__(self, task, release: int, index: int = 0):
        Job._seq += 1
        self.uid = Job._seq
        self.task = task
        self.release = release
        self.index = index
        # Plain attribute, not a property: the task never changes after
        # construction and the schedulers test this in their hot loops.
        self.is_periodic = isinstance(task, PeriodicTask)
        self.remaining = getattr(task, "acet", None) or task.wcet
        self.state = JobState.WAITING
        self.promoted = False
        self.start_time: Optional[int] = None
        self.finish_time: Optional[int] = None
        self.cpu: Optional[int] = None
        self.preemptions = 0
        self.migrations = 0
        self._last_cpu: Optional[int] = None
        # Fault/recovery bookkeeping (repro.faults; see docs/FAULTS.md).
        self.retries = 0
        self.invalid = False
        self.shed = False

    # -- classification -------------------------------------------------------
    @property
    def name(self) -> str:
        return f"{self.task.name}#{self.index}"

    @property
    def absolute_deadline(self) -> Optional[int]:
        if self.is_periodic:
            return self.release + self.task.deadline
        if self.task.soft_deadline is not None:
            return self.release + self.task.soft_deadline
        return None

    @property
    def promotion_time(self) -> Optional[int]:
        """Absolute time at which this job moves to the upper band."""
        if not self.is_periodic:
            return None
        if self.task.promotion is None:
            raise ValueError(f"{self.task.name}: promotion not analysed")
        return self.release + self.task.promotion

    @property
    def band(self) -> Band:
        if not self.is_periodic:
            return Band.MIDDLE
        return Band.UPPER if self.promoted else Band.LOWER

    def key(self) -> Tuple[int, int, int]:
        """Effective priority; larger tuple preempts smaller.

        Aperiodic jobs are FIFO within the middle band, encoded by
        negating the release time (earlier arrival = larger key).
        """
        if not self.is_periodic:
            return (Band.MIDDLE, -self.release, -self.uid)
        if self.promoted:
            return (Band.UPPER, self.task.high_priority, -self.uid)
        return (Band.LOWER, self.task.low_priority, -self.uid)

    # -- bookkeeping -------------------------------------------------------------
    def record_dispatch(self, cpu: int, now: int) -> None:
        """Note that the job starts (or resumes) on ``cpu`` at ``now``."""
        if self.start_time is None:
            self.start_time = now
        if self._last_cpu is not None and self._last_cpu != cpu:
            self.migrations += 1
        self._last_cpu = cpu
        self.cpu = cpu
        self.state = JobState.RUNNING

    def record_preemption(self) -> None:
        """Note that the job was preempted while it still has work."""
        self.preemptions += 1
        self.state = JobState.READY
        self.cpu = None

    def record_finish(self, now: int) -> None:
        """Note completion."""
        self.finish_time = now
        self.state = JobState.FINISHED
        self.cpu = None

    @property
    def response_time(self) -> Optional[int]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.release

    @property
    def missed_deadline(self) -> bool:
        deadline = self.absolute_deadline
        if deadline is None or not self.is_periodic:
            return False
        if self.finish_time is None:
            return False
        return self.finish_time > deadline

    def __repr__(self) -> str:
        return (
            f"<Job {self.name} rel={self.release} rem={self.remaining} "
            f"state={self.state.value}{' promoted' if self.promoted else ''}>"
        )


class TaskSet:
    """A validated collection of periodic and aperiodic tasks."""

    def __init__(
        self,
        periodic: Sequence[PeriodicTask] = (),
        aperiodic: Sequence[AperiodicTask] = (),
    ):
        self.periodic: List[PeriodicTask] = list(periodic)
        self.aperiodic: List[AperiodicTask] = list(aperiodic)
        names = [t.name for t in self.periodic] + [t.name for t in self.aperiodic]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate task names: {sorted(duplicates)}")

    # -- queries ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.periodic) + len(self.aperiodic)

    def __iter__(self):
        yield from self.periodic
        yield from self.aperiodic

    def by_name(self, name: str):
        for task in self:
            if task.name == name:
                return task
        raise KeyError(name)

    @property
    def utilization(self) -> float:
        """Total periodic utilization sum(C_i / T_i)."""
        return sum(t.utilization for t in self.periodic)

    def utilization_per_cpu(self, n_cpus: int) -> List[float]:
        """Periodic utilization grouped by home processor."""
        per = [0.0] * n_cpus
        for task in self.periodic:
            if not 0 <= task.cpu < n_cpus:
                raise ValueError(f"{task.name}: cpu {task.cpu} outside 0..{n_cpus - 1}")
            per[task.cpu] += task.utilization
        return per

    @property
    def hyperperiod(self) -> int:
        """LCM of the periodic periods (1 if there are none)."""
        value = 1
        for task in self.periodic:
            value = math.lcm(value, task.period)
        return value

    def on_cpu(self, cpu: int) -> List[PeriodicTask]:
        """The periodic tasks homed on ``cpu``."""
        return [t for t in self.periodic if t.cpu == cpu]

    def cpus(self) -> List[int]:
        """Sorted list of processor indices used by the partition."""
        return sorted({t.cpu for t in self.periodic})

    # -- transforms ---------------------------------------------------------------
    def with_deadline_monotonic_priorities(self) -> "TaskSet":
        """Assign both band priorities deadline-monotonically.

        The shortest deadline gets the largest priority number (largest
        wins throughout the package).  Ties break by name for
        determinism.
        """
        ordering = sorted(self.periodic, key=lambda t: (-t.deadline, t.name))
        ranked = {task.name: rank for rank, task in enumerate(ordering)}
        periodic = [
            t.with_priorities(low=ranked[t.name], high=ranked[t.name])
            for t in self.periodic
        ]
        return TaskSet(periodic, self.aperiodic)

    def with_tasks(self, periodic: Sequence[PeriodicTask]) -> "TaskSet":
        """Copy with the periodic tasks replaced (analysis pipelines)."""
        return TaskSet(list(periodic), self.aperiodic)

    def require_analysed(self) -> None:
        """Raise unless every periodic task carries a promotion time."""
        missing = [t.name for t in self.periodic if t.promotion is None]
        if missing:
            raise ValueError(
                f"tasks missing offline promotion analysis: {missing}; "
                "run repro.analysis.promotion.assign_promotions first"
            )

    def scale(self, factor: float) -> "TaskSet":
        """Scale every period/deadline by ``factor`` (utilization knob)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        periodic = []
        for t in self.periodic:
            period = max(t.wcet, int(round(t.period * factor)))
            deadline = max(t.wcet, min(period, int(round(t.deadline * factor))))
            periodic.append(
                PeriodicTask(
                    name=t.name,
                    wcet=t.wcet,
                    period=period,
                    deadline=deadline,
                    low_priority=t.low_priority,
                    high_priority=t.high_priority,
                    cpu=t.cpu,
                    promotion=None,  # must be re-analysed
                    offset=t.offset,
                )
            )
        return TaskSet(periodic, self.aperiodic)

    def summary(self) -> str:
        """Human-readable table of the set (used by examples)."""
        lines = [
            f"{'task':<14}{'C':>12}{'T':>12}{'D':>12}{'U_i':>8}{'cpu':>5}{'prom':>12}"
        ]
        for t in self.periodic:
            prom = "-" if t.promotion is None else str(t.promotion)
            lines.append(
                f"{t.name:<14}{t.wcet:>12}{t.period:>12}{t.deadline:>12}"
                f"{t.utilization:>8.3f}{t.cpu:>5}{prom:>12}"
            )
        for t in self.aperiodic:
            lines.append(f"{t.name:<14}{t.wcet:>12}{'aperiodic':>12}")
        lines.append(f"total periodic utilization: {self.utilization:.3f}")
        return "\n".join(lines)


def make_jobs(task: PeriodicTask, until: int) -> List[Job]:
    """All jobs of ``task`` released strictly before ``until``."""
    return [Job(task, release, index=i) for i, release in enumerate(task.release_times(until))]
