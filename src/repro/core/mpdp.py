"""The Multiprocessor Dual Priority (MPDP) scheduling policy.

This module implements the decision procedure of Banús et al. with the
paper's implementation variations (Section 4.2):

- unpromoted periodic jobs and aperiodic jobs live in two separate
  global queues (Periodic Ready Queue sorted by lower-band priority,
  Aperiodic Ready Queue in FIFO order);
- completed periodic jobs are parked in a Waiting Periodic Queue until
  their next release;
- at promotion time U_i a periodic job moves to the High Priority Local
  Ready Queue of its *home* processor and from then on may only execute
  there (local phase);
- allocation: processors with a non-empty local queue take its head;
  remaining processors take aperiodic jobs oldest-first; remaining
  processors take unpromoted periodic jobs by lower-band priority;
- a job already running on a processor that is assigned the same job
  again is not context-switched.

The policy is substrate-free: callers (the theoretical simulator and
the full-system microkernel) own time and call in at scheduling points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.queues import (
    AperiodicReadyQueue,
    HighPriorityLocalQueue,
    PeriodicReadyQueue,
    WaitingPeriodicQueue,
)
from repro.core.task import AperiodicTask, Job, JobState, PeriodicTask, TaskSet


@dataclass
class Allocation:
    """Result of one scheduling decision.

    ``assignment[cpu]`` is the job that must run on ``cpu`` (None =
    idle).  ``switches`` lists the processors whose running job changed
    and therefore need an inter-processor interrupt and a context
    switch.  ``preempted`` lists jobs that lost their processor while
    still having work left.
    """

    assignment: List[Optional[Job]]
    switches: List[int] = field(default_factory=list)
    preempted: List[Job] = field(default_factory=list)

    def job_on(self, cpu: int) -> Optional[Job]:
        return self.assignment[cpu]


class MPDPScheduler:
    """State machine for MPDP scheduling decisions.

    Parameters
    ----------
    taskset:
        Analysed task set (every periodic task needs ``promotion`` and
        ``cpu`` assigned).
    n_cpus:
        Number of processors.
    promotion_granularity:
        ``"exact"`` promotes jobs at exactly release + U_i (the model in
        the MPDP paper); ``"tick"`` promotes only when a scheduling
        cycle observes the promotion time passed, reproducing the
        prototype where the system timer triggers promotions.
    """

    def __init__(self, taskset: TaskSet, n_cpus: int, promotion_granularity: str = "exact"):
        if n_cpus < 1:
            raise ValueError("n_cpus must be >= 1")
        if promotion_granularity not in ("exact", "tick"):
            raise ValueError("promotion_granularity must be 'exact' or 'tick'")
        taskset.require_analysed()
        for task in taskset.periodic:
            if not 0 <= task.cpu < n_cpus:
                raise ValueError(
                    f"{task.name}: home cpu {task.cpu} outside 0..{n_cpus - 1}"
                )
        self.taskset = taskset
        self.n_cpus = n_cpus
        self.promotion_granularity = promotion_granularity

        self.waiting = WaitingPeriodicQueue()
        self.periodic_ready = PeriodicReadyQueue()
        self.aperiodic_ready = AperiodicReadyQueue()
        self.local = [HighPriorityLocalQueue(cpu) for cpu in range(n_cpus)]
        self.running: List[Optional[Job]] = [None] * n_cpus

        self.finished_jobs: List[Job] = []
        self.released_count = 0
        self.promotion_count = 0
        self._job_index: Dict[str, int] = {}

        for task in taskset.periodic:
            job = Job(task, task.offset, index=0)
            self._job_index[task.name] = 0
            self.waiting.push(job)

    # ------------------------------------------------------------------ events
    def release_due(self, now: int) -> List[Job]:
        """Move periodic jobs whose release time passed into the PRQ."""
        released = self.waiting.pop_released(now)
        for job in released:
            self.periodic_ready.push(job)
            self.released_count += 1
        return released

    def add_aperiodic(self, job: Job) -> None:
        """Enqueue a newly arrived aperiodic job (interrupt handler)."""
        if job.is_periodic:
            raise TypeError("add_aperiodic requires an aperiodic job")
        job.state = JobState.READY
        self.aperiodic_ready.push(job)

    def promote_due(self, now: int) -> List[Job]:
        """Promote every unpromoted periodic job whose U_i has passed.

        Covers both queued jobs (PRQ) and jobs currently running in the
        lower band; the latter stay in ``running`` but flip to the upper
        band, which may force a migration at the next allocation.
        """
        promoted: List[Job] = []
        # ``release + task.promotion`` inlined from Job.promotion_time:
        # require_analysed() guaranteed promotion is set, and this scan
        # runs every scheduling cycle.
        for job in list(self.periodic_ready):
            if job.release + job.task.promotion <= now:
                self.periodic_ready.remove(job)
                job.promoted = True
                self.local[job.task.cpu].push(job)
                promoted.append(job)
        for cpu, job in enumerate(self.running):
            if (
                job is not None
                and job.is_periodic
                and not job.promoted
                and job.release + job.task.promotion <= now
            ):
                job.promoted = True
                promoted.append(job)
        self.promotion_count += len(promoted)
        return promoted

    def next_promotion_time(self) -> Optional[int]:
        """Earliest pending promotion instant among ready/running jobs."""
        times = [job.promotion_time for job in self.periodic_ready]
        times += [
            job.promotion_time
            for job in self.running
            if job is not None and job.is_periodic and not job.promoted
        ]
        return min(times) if times else None

    def next_release_time(self) -> Optional[int]:
        """Earliest parked periodic release."""
        return self.waiting.next_release()

    def job_finished(self, job: Job, now: int) -> Optional[Job]:
        """Handle a completed job; re-arm periodic tasks.

        Returns the next job instance for periodic tasks (already parked
        in the WPQ), or None for aperiodic jobs.
        """
        if job.remaining > 0:
            raise ValueError(f"{job.name} finished with {job.remaining} cycles left")
        for cpu, running in enumerate(self.running):
            if running is job:
                self.running[cpu] = None
        job.record_finish(now)
        self.finished_jobs.append(job)
        if not job.is_periodic:
            return None
        index = self._job_index[job.task.name] + 1
        self._job_index[job.task.name] = index
        next_job = Job(job.task, job.release + job.task.period, index=index)
        self.waiting.push(next_job)
        return next_job

    # -------------------------------------------------------------- allocation
    def allocate(self, now: int) -> Allocation:
        """Compute the MPDP assignment of ready jobs to processors.

        Running jobs are folded back into the candidate pool, the
        assignment is recomputed from scratch following the MPDP rules,
        and the diff against the previous assignment yields the set of
        context switches.  Jobs keep their processor when possible to
        avoid gratuitous migrations.
        """
        previous = list(self.running)

        # Fold running jobs back into their logical queues.
        for cpu, job in enumerate(self.running):
            if job is None:
                continue
            if job.is_periodic and job.promoted:
                self.local[job.task.cpu].push(job)
            elif job.is_periodic:
                self.periodic_ready.push(job)
            else:
                self.aperiodic_ready.requeue_front(job)
            self.running[cpu] = None

        assignment: List[Optional[Job]] = [None] * self.n_cpus

        # Rule 1: local queues bind their processor.
        for cpu in range(self.n_cpus):
            if len(self.local[cpu]):
                assignment[cpu] = self.local[cpu].pop()

        slots = sum(1 for cpu in range(self.n_cpus) if assignment[cpu] is None)

        # Rule 2: aperiodic jobs, oldest first, onto free processors.
        chosen: List[Job] = []
        for job in self.aperiodic_ready:
            if slots == 0:
                break
            chosen.append(job)
            slots -= 1

        # Rule 3: unpromoted periodic jobs by lower-band priority.
        for job in self.periodic_ready:
            if slots == 0:
                break
            chosen.append(job)
            slots -= 1

        # Place chosen global jobs, honouring affinity with the previous
        # assignment to minimise context switches/migrations.
        free = [cpu for cpu in range(self.n_cpus) if assignment[cpu] is None]
        remaining: List[Job] = []
        for job in chosen:
            prev_cpu = self._previous_cpu(job, previous)
            if prev_cpu is not None and prev_cpu in free:
                assignment[prev_cpu] = job
                free.remove(prev_cpu)
            else:
                remaining.append(job)
        for job in remaining:
            assignment[free.pop(0)] = job

        # Remove placed jobs from the global queues.
        for cpu, job in enumerate(assignment):
            if job is None:
                continue
            if job.is_periodic and not job.promoted and job in self.periodic_ready:
                self.periodic_ready.remove(job)
            elif not job.is_periodic and job in self.aperiodic_ready:
                self.aperiodic_ready.remove(job)

        # Diff with the previous assignment.
        switches: List[int] = []
        preempted: List[Job] = []
        for cpu in range(self.n_cpus):
            if assignment[cpu] is not previous[cpu]:
                switches.append(cpu)
        placed = set(id(j) for j in assignment if j is not None)
        for job in previous:
            if job is not None and id(job) not in placed and job.remaining > 0:
                job.record_preemption()
                preempted.append(job)

        self.running = list(assignment)
        for cpu, job in enumerate(assignment):
            if job is not None:
                job.record_dispatch(cpu, now)
        return Allocation(assignment=assignment, switches=switches, preempted=preempted)

    def refill(self, cpu: int, now: int) -> Optional[Job]:
        """Incremental allocation after ``cpu`` alone went free.

        Equivalent to :meth:`allocate` when the only state change since
        the last allocation is that ``running[cpu]`` became ``None``
        (a completion): every other processor keeps its job through the
        affinity rule, and the freed slot takes the highest-standing
        queued job -- the local queue binds its processor (rule 1),
        otherwise the middle band goes before the lower band (rules
        2/3).  The queued candidates are strictly below every running
        job in the MPDP order (otherwise the previous allocation would
        already have chosen them), so handing the single head over is
        the same fixpoint ``allocate`` would recompute from scratch.

        Returns the dispatched job, or ``None`` when the processor goes
        idle.  Callers must have detached the finished job first (see
        :meth:`job_finished`).
        """
        if self.running[cpu] is not None:
            raise ValueError(f"cpu {cpu} is not free")
        if len(self.local[cpu]):
            job = self.local[cpu].pop()
        elif len(self.aperiodic_ready):
            job = self.aperiodic_ready.pop()
        elif len(self.periodic_ready):
            job = self.periodic_ready.pop()
        else:
            return None
        self.running[cpu] = job
        job.record_dispatch(cpu, now)
        return job

    def _previous_cpu(self, job: Job, previous: Sequence[Optional[Job]]) -> Optional[int]:
        for cpu, prev in enumerate(previous):
            if prev is job:
                return cpu
        return None

    # ---------------------------------------------------------------- queries
    def ready_job_count(self) -> int:
        """Jobs currently ready (running included)."""
        return (
            len(self.periodic_ready)
            + len(self.aperiodic_ready)
            + sum(len(q) for q in self.local)
            + sum(1 for job in self.running if job is not None)
        )

    def idle(self) -> bool:
        """True when nothing is ready or running."""
        return self.ready_job_count() == 0

    def check_invariants(self) -> None:
        """Assert structural invariants (used by property tests).

        - no job appears in two places at once;
        - promoted jobs only run on (or queue for) their home cpu;
        - a processor with a non-empty local queue never runs a
          lower/middle band job.
        """
        seen: Dict[int, str] = {}

        def note(job: Job, where: str) -> None:
            if job.uid in seen:
                raise AssertionError(
                    f"{job.name} present in both {seen[job.uid]} and {where}"
                )
            seen[job.uid] = where

        for job in self.waiting:
            note(job, "WPQ")
        for job in self.periodic_ready:
            note(job, "PRQ")
            if job.promoted:
                raise AssertionError(f"promoted job {job.name} in PRQ")
        for job in self.aperiodic_ready:
            note(job, "ARQ")
        for cpu, queue in enumerate(self.local):
            for job in queue:
                note(job, f"HPLRQ{cpu}")
                if job.task.cpu != cpu:
                    raise AssertionError(f"{job.name} in wrong local queue {cpu}")
        for cpu, job in enumerate(self.running):
            if job is None:
                continue
            note(job, f"cpu{cpu}")
            if job.is_periodic and job.promoted and job.task.cpu != cpu:
                raise AssertionError(
                    f"promoted {job.name} running on cpu {cpu}, home {job.task.cpu}"
                )
            if len(self.local[cpu]) and (
                not job.is_periodic or not job.promoted
            ):
                head = self.local[cpu].peek()
                raise AssertionError(
                    f"cpu {cpu} runs {job.name} while {head.name} is promoted locally"
                )
