"""The queue structures of the paper's microkernel (Section 4.2).

The paper departs from the original MPDP single Global Ready Queue by
splitting it into a *Periodic Ready Queue* (unpromoted periodic jobs,
sorted by lower-band priority) and an *Aperiodic Ready Queue* (FIFO),
plus a *Waiting Periodic Queue* that parks completed periodic tasks
until their next release, ordered by proximity to release.  Each
processor additionally owns a *High Priority Local Ready Queue* holding
its promoted jobs ordered by upper-band priority.

These classes are deliberately substrate-free: both the theoretical
simulator and the full-system microkernel reuse them unchanged.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Deque, Iterator, List, Optional, Tuple

from repro.core.task import Job, JobState


class _SortedJobQueue:
    """Base: a list kept sorted by a job key, largest key first.

    A parallel list of cached keys avoids recomputing ``_key`` for every
    resident job on each insertion -- the fold-back in
    :meth:`repro.core.mpdp.MPDPScheduler.allocate` pushes at every
    scheduling event, and a key never changes while a job sits in a
    queue (promotion removes before re-inserting).
    """

    def __init__(self):
        self._jobs: List[Job] = []
        self._keys: List[tuple] = []

    def _key(self, job: Job):
        raise NotImplementedError

    def push(self, job: Job) -> None:
        """Insert maintaining order (stable for equal keys)."""
        key = self._key(job)
        for i, other_key in enumerate(self._keys):
            if other_key < key:
                self._jobs.insert(i, job)
                self._keys.insert(i, key)
                return
        self._jobs.append(job)
        self._keys.append(key)

    def pop(self) -> Job:
        """Remove and return the highest-priority job."""
        if not self._jobs:
            raise IndexError(f"pop from empty {self.__class__.__name__}")
        del self._keys[0]
        return self._jobs.pop(0)

    def peek(self) -> Optional[Job]:
        """The highest-priority job, or None."""
        return self._jobs[0] if self._jobs else None

    def remove(self, job: Job) -> None:
        """Remove a specific job (promotion pulls jobs mid-queue)."""
        index = self._jobs.index(job)
        del self._jobs[index]
        del self._keys[index]

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(list(self._jobs))

    def __contains__(self, job: Job) -> bool:
        return job in self._jobs

    def clear(self) -> None:
        self._jobs.clear()
        self._keys.clear()


class PeriodicReadyQueue(_SortedJobQueue):
    """Released, unpromoted periodic jobs, by lower-band priority."""

    def _key(self, job: Job):
        if not job.is_periodic:
            raise TypeError("PeriodicReadyQueue only holds periodic jobs")
        if job.promoted:
            raise ValueError(f"{job.name} is promoted; belongs in a local queue")
        return (job.task.low_priority, -job.release, -job.uid)


class HighPriorityLocalQueue(_SortedJobQueue):
    """Promoted periodic jobs of one processor, by upper-band priority."""

    def __init__(self, cpu: int):
        super().__init__()
        self.cpu = cpu

    def push(self, job: Job) -> None:
        if not job.is_periodic:
            raise TypeError("local queues only hold periodic jobs")
        if not job.promoted:
            raise ValueError(f"{job.name} not promoted; belongs in the PRQ")
        if job.task.cpu != self.cpu:
            raise ValueError(
                f"{job.name} homed on cpu {job.task.cpu}, not {self.cpu}"
            )
        super().push(job)

    def _key(self, job: Job):
        return (job.task.high_priority, -job.release, -job.uid)


class AperiodicReadyQueue:
    """FIFO of released aperiodic jobs (middle band)."""

    def __init__(self):
        self._jobs: Deque[Job] = deque()

    def push(self, job: Job) -> None:
        if job.is_periodic:
            raise TypeError("AperiodicReadyQueue only holds aperiodic jobs")
        self._jobs.append(job)

    def pop(self) -> Job:
        if not self._jobs:
            raise IndexError("pop from empty AperiodicReadyQueue")
        return self._jobs.popleft()

    def peek(self) -> Optional[Job]:
        return self._jobs[0] if self._jobs else None

    def requeue_front(self, job: Job) -> None:
        """Put a preempted aperiodic job back at the head (it keeps its
        FIFO position: the paper resumes A1 before starting A2)."""
        self._jobs.appendleft(job)

    def remove(self, job: Job) -> None:
        self._jobs.remove(job)

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(list(self._jobs))

    def __contains__(self, job: Job) -> bool:
        return job in self._jobs

    def clear(self) -> None:
        self._jobs.clear()


class WaitingPeriodicQueue:
    """Parked periodic jobs ordered by proximity to their release time.

    The paper: "we need to park periodic tasks while they have completed
    their execution and are waiting for the next release ... inserted
    ordered by proximity to release time".
    """

    def __init__(self):
        self._jobs: List[Job] = []
        self._keys: List[Tuple[int, int]] = []

    def push(self, job: Job) -> None:
        if not job.is_periodic:
            raise TypeError("WaitingPeriodicQueue only holds periodic jobs")
        job.state = JobState.WAITING
        key = (job.release, job.uid)
        index = bisect_left(self._keys, key)
        self._keys.insert(index, key)
        self._jobs.insert(index, job)

    def pop_released(self, now: int) -> List[Job]:
        """Remove and return every job whose release time has passed."""
        released: List[Job] = []
        while self._jobs and self._jobs[0].release <= now:
            job = self._jobs.pop(0)
            del self._keys[0]
            job.state = JobState.READY
            released.append(job)
        return released

    def next_release(self) -> Optional[int]:
        """Earliest parked release time, or None when empty."""
        return self._jobs[0].release if self._jobs else None

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(list(self._jobs))

    def __contains__(self, job: Job) -> bool:
        return job in self._jobs

    def clear(self) -> None:
        self._jobs.clear()
        self._keys.clear()
