"""Uniprocessor dual-priority scheduling (Davis & Wellings, RTSS 1995).

The dual-priority model MPDP generalises: three priority bands, hard
periodic tasks released in the lower band and promoted to the upper
band at ``release + U_i``, soft aperiodic tasks served FIFO in the
middle band.  This module provides an exact event-driven uniprocessor
simulator used to validate the band semantics in isolation and as the
reference that the multiprocessor model must degenerate to when
``n_cpus == 1``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.task import AperiodicTask, Job, JobState, PeriodicTask, TaskSet


class DualPrioritySimulator:
    """Exact simulation of uniprocessor dual-priority scheduling.

    The simulation advances between scheduling events (releases,
    promotions, completions, aperiodic arrivals) and always runs the
    highest effective-priority ready job, preemptively.

    Parameters
    ----------
    taskset:
        Analysed task set; every periodic task must carry a promotion
        time.  Home cpu values are ignored (single processor).
    """

    def __init__(self, taskset: TaskSet):
        taskset.require_analysed()
        self.taskset = taskset
        self.now = 0
        self.ready: List[Job] = []
        self.running: Optional[Job] = None
        self.finished: List[Job] = []
        self._pending_releases: List[Job] = []
        self._aperiodic_arrivals: List[Tuple[int, AperiodicTask]] = []
        for task in taskset.periodic:
            self._pending_releases.append(Job(task, task.offset, index=0))
        for task in taskset.aperiodic:
            for arrival in task.arrivals:
                self._aperiodic_arrivals.append((arrival, task))
        self._aperiodic_arrivals.sort(key=lambda item: item[0])
        self._aperiodic_index: Dict[str, int] = {}

    # ------------------------------------------------------------------ events
    def _next_event_time(self) -> Optional[int]:
        """Earliest future scheduling event after ``self.now``."""
        times: List[int] = []
        for job in self._pending_releases:
            times.append(job.release)
        if self._aperiodic_arrivals:
            times.append(self._aperiodic_arrivals[0][0])
        candidates = self.ready + ([self.running] if self.running else [])
        for job in candidates:
            if job.is_periodic and not job.promoted:
                times.append(job.promotion_time)
        if self.running is not None:
            times.append(self.now + self.running.remaining)
        future = [t for t in times if t > self.now]
        return min(future) if future else None

    def _process_instant(self) -> None:
        """Apply all releases/arrivals/promotions due at ``self.now``."""
        still_pending: List[Job] = []
        for job in self._pending_releases:
            if job.release <= self.now:
                job.state = JobState.READY
                self.ready.append(job)
            else:
                still_pending.append(job)
        self._pending_releases = still_pending

        while self._aperiodic_arrivals and self._aperiodic_arrivals[0][0] <= self.now:
            arrival, task = self._aperiodic_arrivals.pop(0)
            index = self._aperiodic_index.get(task.name, 0)
            self._aperiodic_index[task.name] = index + 1
            self.ready.append(Job(task, arrival, index=index))

        candidates = self.ready + ([self.running] if self.running else [])
        for job in candidates:
            if job.is_periodic and not job.promoted and job.promotion_time <= self.now:
                job.promoted = True

    def _dispatch(self) -> None:
        """Ensure the highest-key ready job is the one running."""
        pool = list(self.ready)
        if self.running is not None:
            pool.append(self.running)
        if not pool:
            self.running = None
            return
        best = max(pool, key=lambda job: job.key())
        if best is self.running:
            return
        if self.running is not None:
            self.running.record_preemption()
            self.ready.append(self.running)
        self.ready.remove(best)
        best.record_dispatch(0, self.now)
        self.running = best

    # -------------------------------------------------------------------- run
    def run(self, until: int) -> List[Job]:
        """Simulate up to ``until`` cycles; returns finished jobs."""
        self._process_instant()
        self._dispatch()
        while self.now < until:
            next_time = self._next_event_time()
            if next_time is None or next_time > until:
                next_time = until
            delta = next_time - self.now
            if self.running is not None:
                self.running.remaining -= delta
            self.now = next_time
            if self.running is not None and self.running.remaining == 0:
                job = self.running
                self.running = None
                job.record_finish(self.now)
                self.finished.append(job)
                if job.is_periodic:
                    self._pending_releases.append(
                        Job(job.task, job.release + job.task.period, index=job.index + 1)
                    )
            self._process_instant()
            self._dispatch()
        return self.finished

    # ---------------------------------------------------------------- queries
    def response_times(self, task_name: str) -> List[int]:
        """Response times of all finished jobs of ``task_name``."""
        return [
            job.response_time
            for job in self.finished
            if job.task.name == task_name and job.response_time is not None
        ]

    def deadline_misses(self) -> List[Job]:
        """Finished periodic jobs that overran their deadline."""
        return [job for job in self.finished if job.missed_deadline]
