"""Core dual-priority task model and the MPDP scheduling policy.

This package is the paper's primary contribution, independent of any
particular execution substrate:

- :mod:`repro.core.task` -- periodic/aperiodic task and job model,
- :mod:`repro.core.queues` -- the queue structures of Section 4.2
  (Periodic Ready Queue, Aperiodic Ready Queue, Waiting Periodic Queue,
  per-processor High Priority Local Ready Queues),
- :mod:`repro.core.dual_priority` -- the uniprocessor dual-priority
  model of Davis & Wellings that MPDP generalises,
- :mod:`repro.core.mpdp` -- the Multiprocessor Dual Priority policy:
  promotion handling, global/local allocation, and the scheduling-cycle
  decision procedure used by both simulators and the microkernel.
"""

from repro.core.task import (
    AperiodicTask,
    Band,
    Job,
    JobState,
    PeriodicTask,
    TaskSet,
)
from repro.core.queues import (
    AperiodicReadyQueue,
    HighPriorityLocalQueue,
    PeriodicReadyQueue,
    WaitingPeriodicQueue,
)
from repro.core.admission import AdmissionVerdict, AperiodicAdmissionController
from repro.core.mpdp import Allocation, MPDPScheduler

__all__ = [
    "Band",
    "PeriodicTask",
    "AperiodicTask",
    "Job",
    "JobState",
    "TaskSet",
    "PeriodicReadyQueue",
    "AperiodicReadyQueue",
    "WaitingPeriodicQueue",
    "HighPriorityLocalQueue",
    "MPDPScheduler",
    "Allocation",
    "AperiodicAdmissionController",
    "AdmissionVerdict",
]
