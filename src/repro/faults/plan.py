"""Serializable fault plans.

A :class:`FaultPlan` is the unit of reproducibility for the fault
tier: a frozen, JSON-round-trippable description of every fault to
inject into one run.  Plans are plain dataclasses so
:func:`repro.perf.cache.cache_key` canonicalises them directly --
campaign cells are cached under ``(plan, kernel config)`` keys.

Fault vocabulary (the ``kind`` field):

==================  ====================================================
kind                meaning (``arg`` / ``duration`` use)
==================  ====================================================
``ipi_drop``        IPIs sent in ``[time, time+duration]`` are lost
``ipi_duplicate``   ... are delivered twice
``ipi_delay``       ... are deferred by ``arg`` cycles
``bus_stall``       the OPB is hogged for ``duration`` cycles
``timer_glitch``    the next ``arg`` timer ticks raise no interrupt
``bitflip_memory``  one SEU: bit ``arg`` of word ``addr`` flips -- in
                    cpu ``cpu``'s local BRAM when ``cpu`` is given and
                    ``addr`` lies in it, otherwise in DDR
``bitflip_register``register upset on cpu ``cpu``; corrupts the running
                    task's output (crash fault) if one is running
``wcet_overrun``    task ``task``'s next segment runs ``arg`` extra cycles
``task_crash``      task ``task``'s next completion is corrupted
==================  ====================================================
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

#: Every fault kind the injector understands.
FAULT_KINDS = (
    "ipi_drop",
    "ipi_duplicate",
    "ipi_delay",
    "bus_stall",
    "timer_glitch",
    "bitflip_memory",
    "bitflip_register",
    "wcet_overrun",
    "task_crash",
)

#: Kinds consumed at the kernel level (the ones the fault-aware
#: response-time analysis models as re-execution overhead).
KERNEL_KINDS = ("wcet_overrun", "task_crash", "bitflip_register")


@dataclass(frozen=True)
class FaultEvent:
    """One fault at one instant."""

    kind: str
    time: int
    cpu: Optional[int] = None
    task: Optional[str] = None
    addr: Optional[int] = None
    duration: int = 0
    arg: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if self.kind.startswith("ipi_") and self.duration <= 0:
            raise ValueError(f"{self.kind} needs a positive window duration")
        if self.kind == "ipi_delay" and self.arg <= 0:
            raise ValueError("ipi_delay needs arg > 0 delay cycles")
        if self.kind == "bus_stall" and self.duration <= 0:
            raise ValueError("bus_stall needs a positive duration")
        if self.kind == "timer_glitch" and self.arg <= 0:
            raise ValueError("timer_glitch needs arg >= 1 ticks")
        if self.kind == "bitflip_memory":
            if self.addr is None:
                raise ValueError("bitflip_memory needs an addr")
            if not 0 <= self.arg < 32:
                raise ValueError("bitflip_memory bit must be in [0, 32)")
        if self.kind == "bitflip_register" and self.cpu is None:
            raise ValueError("bitflip_register needs a cpu")
        if self.kind in ("wcet_overrun", "task_crash") and not self.task:
            raise ValueError(f"{self.kind} needs a task name")
        if self.kind == "wcet_overrun" and self.arg <= 0:
            raise ValueError("wcet_overrun needs arg > 0 extra cycles")

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "time": self.time}
        for key in ("cpu", "task", "addr"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.duration:
            out["duration"] = self.duration
        if self.arg:
            out["arg"] = self.arg
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultEvent":
        return cls(**dict(data))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault events plus the seed that produced it.

    The plan is the *entire* fault input to a run: replaying the same
    plan against the same kernel configuration reproduces the run
    bit for bit.  ``events`` keep their given order; the injector
    schedules them in that order, so ties at the same cycle resolve by
    plan position (the engine's insertion-order tie-break).
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0
    name: str = ""

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError("plan events must be FaultEvent instances")

    def __len__(self) -> int:
        return len(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    def kernel_events(self) -> Tuple[FaultEvent, ...]:
        """Events consumed at the kernel level (see ``KERNEL_KINDS``)."""
        return tuple(e for e in self.events if e.kind in KERNEL_KINDS)

    def min_interarrival(self) -> Optional[int]:
        """Smallest gap between consecutive kernel-level fault times.

        This is the empirical counterpart of
        :class:`repro.analysis.schedulability.FaultModel.min_interarrival`:
        a plan is covered by a model with ``F`` iff this gap is >= F.
        Returns None with fewer than two kernel-level events.
        """
        times = sorted(e.time for e in self.kernel_events())
        if len(times) < 2:
            return None
        return min(b - a for a, b in zip(times, times[1:]))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        return cls(
            events=tuple(
                FaultEvent.from_dict(event) for event in data.get("events", ())
            ),
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


def random_plan(
    seed: int,
    horizon: int,
    tasks: Mapping[str, int],
    n_cpus: int = 2,
    n_faults: int = 4,
    kinds: Sequence[str] = KERNEL_KINDS[:2],
    min_gap: int = 0,
    start: int = 1_000,
    name: str = "",
) -> FaultPlan:
    """A seeded random plan -- the campaign workhorse.

    ``tasks`` maps task name -> WCET; overrun magnitudes are capped at
    the target task's WCET so plans stay within the re-execution cost
    the fault-aware analysis budgets for one fault.  ``min_gap``
    enforces a minimum spacing between fault times, letting campaigns
    generate plans covered by a ``FaultModel`` with that
    inter-arrival.  Same arguments -> identical plan.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if not tasks:
        raise ValueError("random_plan needs at least one task")
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
    rng = random.Random(seed)
    names = sorted(tasks)
    events = []
    time = start
    for _ in range(n_faults):
        time += min_gap + rng.randrange(max(1, (horizon - start) // max(1, n_faults)))
        if time >= horizon:
            break
        kind = rng.choice(list(kinds))
        task = rng.choice(names)
        if kind == "wcet_overrun":
            extra = max(1, rng.randrange(max(2, tasks[task])))
            events.append(FaultEvent(kind=kind, time=time, task=task, arg=extra))
        elif kind == "task_crash":
            events.append(FaultEvent(kind=kind, time=time, task=task))
        elif kind == "bitflip_register":
            events.append(FaultEvent(kind=kind, time=time, cpu=rng.randrange(n_cpus)))
        elif kind == "timer_glitch":
            events.append(FaultEvent(kind=kind, time=time, arg=1))
        elif kind == "bus_stall":
            events.append(
                FaultEvent(kind=kind, time=time, duration=rng.randrange(100, 2_000))
            )
        elif kind == "bitflip_memory":
            events.append(
                FaultEvent(
                    kind=kind, time=time,
                    addr=4 * rng.randrange(1_024), arg=rng.randrange(32),
                )
            )
        else:  # ipi window faults
            duration = rng.randrange(1_000, 10_000)
            arg = rng.randrange(100, 1_000) if kind == "ipi_delay" else 0
            events.append(
                FaultEvent(kind=kind, time=time, duration=duration, arg=arg)
            )
    return FaultPlan(events=tuple(events), seed=seed, name=name or f"random-{seed}")
