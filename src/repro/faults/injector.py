"""Arming a :class:`FaultPlan` against a live run.

The injector is deliberately thin: every fault *mechanism* lives on
the hardware or kernel model it corrupts (``intc.inject_ipi_fault``,
``bus.stall``, ``timer.glitch``, ``WordStorage.flip_bit``,
``kernel.inject_overrun`` / ``inject_crash``), and the injector's only
job is to schedule those calls at the plan's instants through the sim
engine.  That keeps the fault-free hot paths at a single ``is None`` /
boolean check and makes injection itself deterministic: same plan,
same schedule, bit for bit.
"""

from __future__ import annotations

from typing import Dict

from repro.faults.plan import FaultEvent, FaultPlan


class FaultInjector:
    """Schedules a plan's events into a kernel-on-SoC run.

    Create after the kernel, call :meth:`arm` before ``kernel.run``.
    A zero-event plan arms to nothing -- the run is bit-for-bit
    identical to one without an injector.
    """

    def __init__(self, kernel, plan: FaultPlan):
        self.kernel = kernel
        self.plan = plan
        self.sim = kernel.sim
        self.soc = kernel.soc
        self.injected: Dict[str, int] = {}
        #: Register upsets that hit an idle cpu (no job to corrupt).
        self.benign_upsets = 0
        self._armed = False

    def arm(self) -> None:
        """Schedule every plan event (idempotence-guarded)."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        now = self.sim.now
        for event in self.plan.events:
            if event.time < now:
                raise ValueError(
                    f"fault at {event.time} is in the past (now={now})"
                )
            self.sim.schedule_at(event.time, lambda e=event: self._fire(e))

    def _fire(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == "ipi_drop":
            self.soc.intc.inject_ipi_fault(
                "drop", until=self.sim.now + event.duration
            )
        elif kind == "ipi_duplicate":
            self.soc.intc.inject_ipi_fault(
                "duplicate", until=self.sim.now + event.duration
            )
        elif kind == "ipi_delay":
            self.soc.intc.inject_ipi_fault(
                "delay", until=self.sim.now + event.duration, arg=event.arg
            )
        elif kind == "bus_stall":
            self.sim.process(
                self.soc.bus.stall(event.duration), name="fault-bus-stall"
            )
        elif kind == "timer_glitch":
            self.soc.timer.glitch(event.arg)
        elif kind == "bitflip_memory":
            target = self.soc.ddr
            if event.cpu is not None:
                local = self.soc.cores[event.cpu].local_mem
                if local.contains(event.addr):
                    target = local
            target.flip_bit(event.addr, event.arg)
        elif kind == "bitflip_register":
            core = self.soc.cores[event.cpu]
            core.register_upset()
            # The upset corrupts whatever computation the core is
            # running; at this abstraction that is "the current job's
            # output is invalid", i.e. a crash fault on its task.
            task = self.kernel.running_task_on(event.cpu)
            if task is not None:
                self.kernel.inject_crash(task)
            else:
                self.benign_upsets += 1
        elif kind == "wcet_overrun":
            self.kernel.inject_overrun(event.task, event.arg)
        elif kind == "task_crash":
            self.kernel.inject_crash(event.task)
        else:  # pragma: no cover - plan validation rejects these
            raise ValueError(f"unknown fault kind {kind!r}")
        self.injected[kind] = self.injected.get(kind, 0) + 1
        self.kernel.trace.record(
            self.sim.now, "fault_injected", cpu=event.cpu, info=kind
        )

    def stats(self) -> dict:
        """Injection accounting for reports and campaign cells."""
        return {
            "planned": len(self.plan),
            "fired": sum(self.injected.values()),
            "by_kind": dict(sorted(self.injected.items())),
            "benign_upsets": self.benign_upsets,
        }
