"""Demo fault scenarios -- the fixtures behind the CLI self-check and
:func:`repro.experiments.runner.fault_campaign`.

Everything here is a module-level function of plain-data arguments so
campaign cells are picklable for :func:`repro.perf.executor.pmap` and
canonicalisable for :func:`repro.perf.cache.cache_key`.

The workload mirrors the perf tier's engine sentinel (four periodic
tasks + one CAN-released aperiodic on a 2-cpu SoC) with fault-tier
bindings: ``tight`` is the high-criticality task with slack for
re-execution (C=9k against D=40k), ``c`` is the low-criticality task
shed first under graceful degradation.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan

#: Default run horizon (cycles) for demo scenarios.
DEMO_HORIZON = 400_000

#: Criticality floor used by the degradation demo: tasks below 1 shed.
DEMO_RECOVERY = {"enabled": True, "degradation_threshold": 0,
                 "shed_below_criticality": 1}


def demo_taskset():
    """The sentinel workload: 4 periodic + 1 aperiodic on 2 cpus."""
    from repro.analysis import assign_promotions, partition
    from repro.core.task import AperiodicTask, PeriodicTask, TaskSet

    tasks = [
        PeriodicTask(name="a", wcet=8_000, period=80_000),
        PeriodicTask(name="b", wcet=12_000, period=120_000),
        PeriodicTask(name="c", wcet=6_000, period=60_000),
        PeriodicTask(name="tight", wcet=9_000, period=100_000,
                     deadline=40_000),
    ]
    taskset = TaskSet(
        tasks, [AperiodicTask(name="evt", wcet=8_000)]
    ).with_deadline_monotonic_priorities()
    taskset = partition(taskset, 2)
    return assign_promotions(taskset, 2, tick=20_000)


def demo_bindings() -> Dict[str, object]:
    """Fault-tier bindings: criticality levels and retry budgets."""
    from repro.kernel.microkernel import TaskBinding

    return {
        "tight": TaskBinding(criticality=2, retry_budget=2),
        "a": TaskBinding(criticality=1, retry_budget=1),
        "b": TaskBinding(criticality=1, retry_budget=1),
        "c": TaskBinding(criticality=0, retry_budget=1),
    }


def crash_plan() -> FaultPlan:
    """Crash faults on ``tight``, one per instance, spaced a period
    apart -- the recovery demo: with re-execution every instance still
    meets its 40k deadline; without it every hit instance misses."""
    return FaultPlan(
        events=tuple(
            FaultEvent(kind="task_crash", time=t, task="tight")
            for t in (30_000, 130_000, 230_000, 330_000)
        ),
        name="crash-tight",
    )


def sustained_plan() -> FaultPlan:
    """A fault burst on the low-criticality task ``c`` -- the
    degradation demo (threshold 4 trips on the fourth consumed fault)."""
    return FaultPlan(
        events=tuple(
            FaultEvent(kind="task_crash", time=t, task="c")
            for t in (25_000, 45_000, 65_000, 85_000, 105_000, 125_000)
        ),
        name="sustained-c",
    )


def run_scenario(
    plan: Optional[FaultPlan] = None,
    recovery: Optional[dict] = None,
    until: int = DEMO_HORIZON,
) -> dict:
    """One kernel-on-SoC run under a fault plan.

    ``recovery`` is a plain dict mirroring
    :class:`repro.kernel.microkernel.RecoveryConfig` (or None for the
    default, recovery-disabled config) so callers can stay fully
    JSON/pickle friendly.  Returns hashable summaries: the finished-job
    tuple, the trace-event tuple, kernel stats, injector stats, and
    the final simulated time -- enough to compare two runs bit for bit.
    """
    from repro.hw.soc import SoC, SoCConfig
    from repro.kernel import DualPriorityMicrokernel
    from repro.kernel.microkernel import RecoveryConfig
    from repro.trace import TraceRecorder

    taskset = demo_taskset()
    soc = SoC(SoCConfig(n_cpus=2, tick_cycles=20_000, chunk_cycles=1_000))
    trace = TraceRecorder()
    kernel = DualPriorityMicrokernel(
        soc,
        taskset,
        bindings=demo_bindings(),
        trace=trace,
        recovery=RecoveryConfig(**recovery) if recovery else None,
    )
    soc.add_can_interface("can0", task_name="evt")
    soc.peripherals["can0"].program_frames([150_000, 260_000])

    injector = FaultInjector(kernel, plan if plan is not None else FaultPlan())
    injector.arm()
    kernel.run(until=until)

    jobs = tuple(
        (j.task.name, j.index, j.release, j.start_time, j.finish_time,
         j.cpu, j.preemptions, j.migrations, j.retries, j.invalid, j.shed)
        for j in kernel.finished_jobs
    )
    return {
        "jobs": jobs,
        "trace": tuple(trace.events),
        "stats": kernel.stats(),
        "injector": injector.stats(),
        "now": soc.sim.now,
    }


def baseline_run(until: int = DEMO_HORIZON) -> dict:
    """The fault-free reference: same workload, no injector at all."""
    from repro.hw.soc import SoC, SoCConfig
    from repro.kernel import DualPriorityMicrokernel
    from repro.trace import TraceRecorder

    taskset = demo_taskset()
    soc = SoC(SoCConfig(n_cpus=2, tick_cycles=20_000, chunk_cycles=1_000))
    trace = TraceRecorder()
    kernel = DualPriorityMicrokernel(
        soc, taskset, bindings=demo_bindings(), trace=trace
    )
    soc.add_can_interface("can0", task_name="evt")
    soc.peripherals["can0"].program_frames([150_000, 260_000])
    kernel.run(until=until)
    jobs = tuple(
        (j.task.name, j.index, j.release, j.start_time, j.finish_time,
         j.cpu, j.preemptions, j.migrations, j.retries, j.invalid, j.shed)
        for j in kernel.finished_jobs
    )
    return {
        "jobs": jobs,
        "trace": tuple(trace.events),
        "stats": kernel.stats(),
        "injector": {"planned": 0, "fired": 0, "by_kind": {}, "benign_upsets": 0},
        "now": soc.sim.now,
    }


def campaign_cell(point: dict) -> dict:
    """One campaign cell: plain-dict in, plain-dict out (picklable,
    cache-keyable).  ``point`` holds a serialized plan plus run knobs."""
    plan = FaultPlan.from_dict(point["plan"])
    result = run_scenario(
        plan=plan,
        recovery=point.get("recovery"),
        until=int(point.get("until", DEMO_HORIZON)),
    )
    stats = result["stats"]
    return {
        "seed": plan.seed,
        "plan": plan.name,
        "deadline_misses": stats["deadline_misses"],
        "faults_injected": stats["faults_injected"],
        "task_retries": stats["task_retries"],
        "crashes_unrecovered": stats["crashes_unrecovered"],
        "jobs_shed": stats["jobs_shed"],
        "degraded": stats["degraded"],
        "faults_fired": result["injector"]["fired"],
        "finished_jobs": len(result["jobs"]),
    }
