"""``repro-faults``: the fault-injection tier front end.

Three modes, mirroring ``repro-perf``::

    repro-faults plan [--seed N] [--horizon CYCLES] [--faults N]
                      [--min-gap CYCLES]
    repro-faults campaign [--runs N] [--seed N] [--recovery|--no-recovery]
                          [--workers N] [--min-gap CYCLES] [--until CYCLES]
                          [--perfetto OUT.json]
    repro-faults --self-check

``plan`` prints a seeded :func:`repro.faults.plan.random_plan` as JSON
(the exact serialization a campaign cell is cache-keyed by); pipe it to
a file to pin a scenario.  ``campaign`` fans N seeded fault-injection
runs across the ``pmap`` pool against the demo workload and prints the
miss/recovery/degradation table (see docs/FAULTS.md).  ``--self-check``
verifies the tier's four contracts against built-in fixtures in a few
seconds and is part of the CI tier: (a) a replayed plan is bit-for-bit
identical, (b) an empty plan is indistinguishable from a fault-free
run, (c) recovery turns the demo crash storm's deadline misses into
met deadlines, and (d) the fault-aware response-time analysis is
pessimistic-safe against a matching simulated campaign.

Exit status: 0 on success, 1 on any failure.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def self_check(out=None) -> int:
    """Smoke-run the fault tier against built-in fixtures.

    Covers plan serialization and cache-keying, determinism of
    injected runs, the zero-fault identity, watchdog/recovery/
    degradation semantics, the fault-aware schedulability analysis and
    the configuration lint.  Returns 0 on success.
    """
    out = out or sys.stdout
    failures: List[str] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        print(f"{'ok  ' if ok else 'FAIL'} {name}{': ' + detail if detail else ''}",
              file=out)
        if not ok:
            failures.append(name)

    # -- plans: round-trip, validation, cache keys
    from repro.faults.plan import FaultPlan, random_plan
    from repro.perf.cache import cache_key

    plan = random_plan(seed=7, horizon=400_000,
                       tasks={"a": 8_000, "tight": 9_000}, n_faults=5)
    replayed = FaultPlan.from_json(plan.to_json())
    check("plan JSON round-trip", replayed == plan and len(plan) == 5,
          f"{len(plan)} event(s)")
    check("same seed, same plan",
          random_plan(seed=7, horizon=400_000,
                      tasks={"a": 8_000, "tight": 9_000}, n_faults=5) == plan)
    check("different seed, different plan",
          random_plan(seed=8, horizon=400_000,
                      tasks={"a": 8_000, "tight": 9_000}, n_faults=5) != plan)
    key_a = cache_key(kind="fault", plan=plan.to_dict())
    key_b = cache_key(plan=plan.to_dict(), kind="fault")
    key_c = cache_key(kind="fault", plan=replayed.to_dict(), seed=1)
    check("plan cache key stable and content-sensitive",
          key_a == key_b and key_a != key_c)

    # -- (a) bit-for-bit replay of an injected run
    from repro.faults.scenarios import (
        baseline_run,
        crash_plan,
        demo_bindings,
        demo_taskset,
        run_scenario,
        sustained_plan,
    )

    first = run_scenario(plan=crash_plan(), recovery={"enabled": True})
    second = run_scenario(plan=crash_plan(), recovery={"enabled": True})
    check("injected run replays bit-for-bit",
          first == second and len(first["trace"]) > 0,
          f"{len(first['trace'])} trace event(s)")

    # -- (b) zero-fault plan is indistinguishable from no injector
    empty = run_scenario(plan=FaultPlan())
    baseline = baseline_run()
    check("zero-fault plan == fault-free baseline",
          empty["jobs"] == baseline["jobs"]
          and empty["trace"] == baseline["trace"]
          and empty["stats"] == baseline["stats"],
          f"{len(empty['jobs'])} job(s)")

    # -- (c) recovery demo: crashes miss without recovery, not with it
    with_recovery = run_scenario(plan=crash_plan(),
                                 recovery={"enabled": True})
    without = run_scenario(plan=crash_plan(), recovery=None)
    check("recovery re-executes crashed jobs within their deadline",
          with_recovery["stats"]["deadline_misses"] == 0
          and with_recovery["stats"]["task_retries"] > 0,
          f"retries={with_recovery['stats']['task_retries']}")
    check("without recovery the same crashes miss deadlines",
          without["stats"]["deadline_misses"] > 0
          and without["stats"]["task_retries"] == 0,
          f"misses={without['stats']['deadline_misses']}")

    # -- graceful degradation sheds the low-criticality task
    degraded = run_scenario(
        plan=sustained_plan(),
        recovery={"enabled": True, "degradation_threshold": 4,
                  "shed_below_criticality": 1},
    )
    check("sustained faults trip degraded mode and shed criticality<1",
          degraded["stats"]["degraded"] and degraded["stats"]["jobs_shed"] > 0,
          f"shed={degraded['stats']['jobs_shed']}")

    # -- (d) fault-aware RTA pessimistic-safe vs a matching campaign
    from repro.analysis import FaultModel, analyse_taskset
    from repro.experiments.runner import fault_campaign

    taskset = demo_taskset()
    model = FaultModel(min_interarrival=100_000)
    report = analyse_taskset(taskset, n_cpus=2, fault_model=model)
    rows = [row for group in report.per_cpu.values() for row in group]
    check("fault-aware RTA: demo taskset schedulable under F=100k",
          report.schedulable
          and all(row["wcrt_faulty"] >= row["wcrt"] for row in rows),
          f"{[(r['task'], r['wcrt_faulty']) for r in rows]}")
    campaign = fault_campaign(n_runs=3, seed=0, recovery=True,
                              min_gap=model.min_interarrival)
    misses = sum(row["deadline_misses"] for row in campaign.rows)
    fired = sum(row["faults_fired"] for row in campaign.rows)
    check("RTA verdict holds in simulation (0 misses under the model)",
          misses == 0 and fired > 0,
          f"misses={misses} faults_fired={fired}")

    # -- configuration lint
    from repro.kernel.microkernel import RecoveryConfig, TaskBinding
    from repro.lint.tasks import lint_fault_config

    bindings = demo_bindings()
    clean = lint_fault_config(
        taskset, bindings, 2,
        recovery=RecoveryConfig(enabled=True, degradation_threshold=4,
                                shed_below_criticality=1),
    )
    check("lint: demo fault config is clean", clean.ok,
          "; ".join(str(d) for d in clean.diagnostics))
    greedy = dict(bindings)
    greedy["tight"] = TaskBinding(criticality=2, retry_budget=50)
    broken = lint_fault_config(taskset, greedy, 2)
    check("lint: oversized retry budget raises TASK010",
          not broken.ok
          and any(d.rule == "TASK010" for d in broken.diagnostics))

    print(
        f"self-check: {'PASS' if not failures else 'FAIL'} "
        f"({len(failures)} failure(s))",
        file=out,
    )
    return 0 if not failures else 1


# ----------------------------------------------------------------------- main
def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.faults.plan import random_plan
    from repro.faults.scenarios import demo_taskset

    taskset = demo_taskset()
    wcets = {task.name: task.wcet for task in taskset.periodic}
    plan = random_plan(seed=args.seed, horizon=args.horizon, tasks=wcets,
                       n_cpus=2, n_faults=args.faults, min_gap=args.min_gap,
                       name=f"seed-{args.seed}")
    print(plan.to_json(indent=2))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.experiments.runner import fault_campaign
    from repro.perf.cache import RunCache

    cache = RunCache(args.cache_dir) if args.cache_dir else None
    result = fault_campaign(
        n_runs=args.runs, seed=args.seed, recovery=args.recovery,
        until=args.until, n_faults=args.faults, min_gap=args.min_gap,
        max_workers=args.workers, cache=cache, perfetto_out=args.perfetto,
    )
    print(result.format())
    if args.perfetto:
        print(f"perfetto trace written to {args.perfetto}", file=sys.stderr)
    misses = sum(row["deadline_misses"] for row in result.rows)
    print(f"campaign: {len(result.rows)} run(s), {misses} deadline miss(es) "
          f"({'recovery on' if args.recovery else 'recovery off'})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description="deterministic fault injection: seeded plans, watchdog "
        "recovery, degradation and fault-aware schedulability",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="verify replay, zero-fault identity, recovery and fault-aware "
        "analysis against built-in fixtures and exit",
    )
    commands = parser.add_subparsers(dest="command")

    plan = commands.add_parser(
        "plan", help="print a seeded random fault plan as JSON")
    plan.add_argument("--seed", type=int, default=0, help="plan seed")
    plan.add_argument("--horizon", type=int, default=400_000,
                      help="last cycle faults may be scheduled at")
    plan.add_argument("--faults", type=int, default=4,
                      help="number of fault events")
    plan.add_argument("--min-gap", type=int, default=0,
                      help="minimum cycles between kernel-level faults "
                      "(match a FaultModel min_interarrival)")
    plan.set_defaults(func=_cmd_plan)

    campaign = commands.add_parser(
        "campaign", help="run N seeded fault-injection runs and print the "
        "miss/recovery table")
    campaign.add_argument("--runs", type=int, default=4,
                          help="number of seeded runs")
    campaign.add_argument("--seed", type=int, default=0,
                          help="first seed (runs use seed..seed+runs-1)")
    campaign.add_argument("--recovery", action="store_true", default=True,
                          help="enable watchdog recovery (default)")
    campaign.add_argument("--no-recovery", dest="recovery",
                          action="store_false",
                          help="disable recovery (count raw misses)")
    campaign.add_argument("--workers", type=int, default=1,
                          help="pmap worker processes")
    campaign.add_argument("--faults", type=int, default=4,
                          help="fault events per run")
    campaign.add_argument("--min-gap", type=int, default=0,
                          help="minimum cycles between kernel faults")
    campaign.add_argument("--until", type=int, default=400_000,
                          help="run horizon in cycles")
    campaign.add_argument("--perfetto", default=None, metavar="OUT",
                          help="also write a Perfetto trace of the first "
                          "seed's run (fault instants included)")
    campaign.add_argument("--cache-dir", default=None,
                          help="cache campaign cells in this RunCache "
                          "directory")
    campaign.set_defaults(func=_cmd_campaign)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.self_check:
        return self_check()
    if not getattr(args, "command", None):
        parser.print_help(sys.stderr)
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
