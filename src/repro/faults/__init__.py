"""Deterministic fault injection and recovery (docs/FAULTS.md).

The tier has three pieces:

- :mod:`repro.faults.plan` -- serializable, RunCache-keyable
  :class:`FaultPlan` descriptions of *what* goes wrong and *when*;
- :mod:`repro.faults.injector` -- :class:`FaultInjector`, which arms a
  plan against a live prototype run by scheduling events through the
  sim engine and calling the explicit fault surfaces grown on the
  hardware and kernel models;
- :mod:`repro.faults.scenarios` -- picklable demo runs used by the
  CLI self-check and :func:`repro.experiments.runner.fault_campaign`.

Everything is reproducible bit-for-bit from ``(plan, seed)``: the only
randomness is the seeded generator inside :func:`random_plan`, and the
injector itself is a pure function of the plan.
"""

from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan, random_plan
from repro.faults.injector import FaultInjector

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "random_plan",
]
