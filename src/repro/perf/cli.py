"""``repro-perf``: the performance-harness front end.

Three modes, mirroring ``repro-lint``::

    repro-perf bench [--out BENCH_perf.json] [--workers N] [--quick]
                     [--engine-only] [--tlm] [--isa-only]
                     [--ledger FILE] [--no-ledger]
    repro-perf calibrate-tlm [--scale N] [--json]
    repro-perf cache [--gc] [--max-mb MB] [--max-entries N] [--dir PATH]
    repro-perf --self-check

``bench`` times representative experiment cells serial-vs-parallel and
cold-vs-warm cache and writes ``BENCH_perf.json`` (see docs/PERF.md
for how to read it); ``--engine-only`` runs just the event-core
micro-benchmark in seconds and writes nothing by default, ``--tlm``
runs just the fidelity-ladder section (TLM vs prototype on the Figure
4 anchor cells), and ``--isa-only`` just the ISA interpreter section
(predecoded block mode vs per-instruction reference on the asmlib
kernels).  Full ``bench`` runs append a summary
entry to the persistent run ledger (``.repro/ledger.jsonl`` or
``$REPRO_LEDGER``; compare runs with ``repro-obs diff``) -- suppress
with ``--no-ledger``.  ``calibrate-tlm`` refits the TLM
per-transaction cost table against fresh prototype runs and prints the
fitted parameters plus the residual (the accuracy bound the TLM tests
enforce).  ``cache`` reports on-disk run-cache usage and, with
``--gc``, evicts least-recently-used entries down to the given limits.
``--self-check`` smoke-runs the executor, the run cache, the cached
sweep path and the simulation core against built-in fixtures in a few
seconds -- no long timings -- and is part of the CI tier; it includes
the determinism sentinel replaying one full kernel-on-SoC workload on
both the bucket and the reference heap event queue and requiring
bit-for-bit identical finished jobs, traces and stats, plus the TLM
determinism invariant (same seed + config => bit-for-bit identical
TLM schedule).

Exit status: 0 on success, 1 on any failure.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import List, Optional


def _square(x: int) -> int:  # module-level: picklable for the pool
    return x * x


def _sentinel_run(queue_kind: str) -> tuple:
    """One full kernel-on-SoC workload on the given event queue.

    Exercises every engine path the experiments rely on: short
    timeouts (bucketed), whole-tick delays (far-heap overflow), timer
    IRQs, an aperiodic CAN release, IPIs, preemptions and idle
    fast-forward.  Returns hashable summaries of the schedule so the
    caller can compare queue implementations bit for bit.
    """
    from repro.sim.engine import Simulator

    previous = Simulator.DEFAULT_QUEUE
    Simulator.DEFAULT_QUEUE = queue_kind
    try:
        from repro.analysis import assign_promotions, partition
        from repro.core.task import AperiodicTask, PeriodicTask, TaskSet
        from repro.hw.soc import SoC, SoCConfig
        from repro.kernel import DualPriorityMicrokernel
        from repro.trace import TraceRecorder

        tasks = [
            PeriodicTask(name="a", wcet=8_000, period=80_000),
            PeriodicTask(name="b", wcet=12_000, period=120_000),
            PeriodicTask(name="c", wcet=6_000, period=60_000),
            PeriodicTask(name="tight", wcet=9_000, period=100_000,
                         deadline=40_000),
        ]
        taskset = TaskSet(
            tasks, [AperiodicTask(name="evt", wcet=8_000)]
        ).with_deadline_monotonic_priorities()
        taskset = partition(taskset, 2)
        taskset = assign_promotions(taskset, 2, tick=20_000)

        soc = SoC(SoCConfig(n_cpus=2, tick_cycles=20_000, chunk_cycles=1_000))
        trace = TraceRecorder()
        kernel = DualPriorityMicrokernel(soc, taskset, trace=trace)
        soc.add_can_interface("can0", task_name="evt")
        soc.peripherals["can0"].program_frames([150_000, 260_000])
        kernel.run(until=400_000)

        jobs = tuple(
            (j.task.name, j.index, j.release, j.start_time, j.finish_time,
             j.cpu, j.preemptions, j.migrations, j.remaining)
            for j in kernel.finished_jobs
        )
        return jobs, tuple(trace.events), kernel.stats(), soc.sim.now
    finally:
        Simulator.DEFAULT_QUEUE = previous


def self_check(out=None) -> int:
    """Smoke-run the perf machinery against built-in fixtures.

    Verifies parallel/serial equivalence, the serial fallback for
    closures, cache round-trips and hit accounting, the cached sweep
    path (a warm run must not invoke the measure), and determinism of
    the optimized event core and ISA dispatch.  Returns 0 on success.
    """
    out = out or sys.stdout
    failures: List[str] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        print(f"{'ok  ' if ok else 'FAIL'} {name}{': ' + detail if detail else ''}",
              file=out)
        if not ok:
            failures.append(name)

    # -- executor
    from repro.perf.executor import chunk_indices, pmap

    items = list(range(23))
    serial = pmap(_square, items, max_workers=1)
    stats: dict = {}
    parallel = pmap(_square, items, max_workers=2, chunksize=4, stats=stats)
    check("pmap parallel == serial", parallel == serial,
          f"mode={stats.get('mode')} chunks={stats.get('chunks')}")

    stats = {}
    closure = pmap(lambda x: x + 1, items, max_workers=2, stats=stats)
    check("pmap closure falls back serially",
          closure == [x + 1 for x in items] and stats["mode"] == "serial-unpicklable",
          f"mode={stats.get('mode')}")

    chunks = chunk_indices(10, 4)
    check("pmap chunking covers every index",
          [i for r in chunks for i in r] == list(range(10)),
          f"{[list(r) for r in chunks]}")

    # -- run cache
    from repro.perf.cache import RunCache, cache_key

    key_a = cache_key(n_cpus=2, seed=0)
    key_b = cache_key(seed=0, n_cpus=2)
    key_c = cache_key(n_cpus=3, seed=0)
    check("cache key stable under kwarg order", key_a == key_b)
    check("cache key sensitive to content", key_a != key_c)

    with tempfile.TemporaryDirectory(prefix="repro-perf-check-") as root:
        cache = RunCache(root)
        hit, _ = cache.lookup(key_a)
        cache.put(key_a, {"response_s": 10.5, "misses": 0})
        hit2, value = cache.lookup(key_a)
        check("cache round-trip",
              not hit and hit2 and value == {"response_s": 10.5, "misses": 0},
              f"hits={cache.hits} misses={cache.misses}")

        # -- cached sweep: warm run must not invoke the measure
        from repro.experiments.runner import sweep

        calls: List[int] = []

        def measure(x: int) -> dict:
            calls.append(x)
            return {"y": x * x}

        cold = sweep(measure, {"x": [1, 2, 3]}, cache=cache, cache_tag="self-check")
        cold_calls = len(calls)
        warm = sweep(measure, {"x": [1, 2, 3]}, cache=cache, cache_tag="self-check")
        check("cached sweep: warm run skips the measure",
              cold_calls == 3 and len(calls) == 3 and warm.rows == cold.rows,
              f"cold_calls={cold_calls} warm_calls={len(calls) - cold_calls}")
        check("cached sweep: summaries surface hit/miss stats",
              cold.cache_stats == {"hits": 0, "misses": 3, "hit_rate": 0.0}
              and warm.cache_stats == {"hits": 3, "misses": 0, "hit_rate": 1.0}
              and "3 hit(s)" in warm.format(),
              f"cold={cold.cache_stats} warm={warm.cache_stats}")

    # -- optimized event core: determinism and slotted events
    from repro.sim.engine import Simulator
    from repro.sim.events import Event, Interrupt, Timeout

    def interrupt_trace() -> list:
        sim = Simulator()
        log: list = []

        def worker(tag: str):
            for _ in range(20):
                try:
                    yield sim.timeout(10)
                    log.append((sim.now, tag, "tick"))
                except Interrupt as interrupt:
                    log.append((sim.now, tag, interrupt.cause))

        victims = [sim.process(worker(t)) for t in "abc"]

        def hammer():
            while any(v.is_alive for v in victims):
                yield sim.timeout(7)
                for victim in victims:
                    if victim.is_alive:
                        victim.interrupt("irq")

        sim.process(hammer())
        sim.run(until=500)
        return log

    first, second = interrupt_trace(), interrupt_trace()
    check("event core deterministic under interrupts",
          first == second and len(first) > 0, f"{len(first)} entries")
    check("events are slotted (no per-instance __dict__)",
          not hasattr(Event(Simulator()), "__dict__")
          and not hasattr(Timeout(Simulator(), 1), "__dict__"))

    # -- bucket queue vs reference heap: ordering invariants
    from repro.sim.engine import BUCKET_HORIZON

    def tie_trace(kind: str) -> list:
        sim = Simulator(queue=kind)
        log: list = []
        # Same-instant entries across the bucket/far boundary, pushed
        # in interleaved order: replay must preserve insertion order.
        for i in range(6):
            delay = BUCKET_HORIZON + 7 if i % 2 else 7
            sim.schedule(delay, lambda i=i: log.append((sim.now, i)))
        sim.schedule(BUCKET_HORIZON + 7,
                     lambda: log.append((sim.now, "late-push")))
        sim.run()
        return log

    check("bucket queue preserves insertion-order ties vs heap",
          tie_trace("bucket") == tie_trace("heap"),
          f"{tie_trace('bucket')}")

    def idle_gap(kind: str) -> tuple:
        sim = Simulator(queue=kind)
        seen: list = []
        sim.schedule(3 * BUCKET_HORIZON + 11, lambda: seen.append(sim.now))
        sim.run(until=10 * BUCKET_HORIZON)
        return tuple(seen), sim.now

    check("idle fast-forward jumps heap == bucket",
          idle_gap("bucket") == idle_gap("heap")
          and idle_gap("bucket")[0] == (3 * BUCKET_HORIZON + 11,))

    # -- determinism sentinel: full kernel run, heap vs bucket queue
    heap_run = _sentinel_run("heap")
    bucket_run = _sentinel_run("bucket")
    check("sentinel: finished jobs bit-for-bit identical",
          heap_run[0] == bucket_run[0] and len(heap_run[0]) > 0,
          f"{len(heap_run[0])} job(s)")
    check("sentinel: traces bit-for-bit identical",
          heap_run[1] == bucket_run[1] and len(heap_run[1]) > 0,
          f"{len(heap_run[1])} event(s)")
    check("sentinel: kernel stats identical",
          heap_run[2] == bucket_run[2] and heap_run[3] == bucket_run[3],
          f"now={heap_run[3]}")

    # -- TLM determinism invariant: same seed + config => bit-for-bit
    #    identical schedule on the fast fidelity-ladder rung
    def tlm_outcome() -> tuple:
        from repro import CLOCK_HZ, TICK
        from repro.simulators.tlm import TLMSimulator, per_task_wcrt
        from repro.trace import TraceRecorder
        from repro.workloads.automotive import (
            AUTOMOTIVE_APERIODIC,
            automotive_bindings,
            build_automotive_taskset,
            prepare_taskset,
        )

        taskset = prepare_taskset(
            build_automotive_taskset(0.40, 2), 2, tick=TICK
        )
        arrival = int(1.0 * CLOCK_HZ)
        trace = TraceRecorder()
        sim = TLMSimulator(
            taskset,
            2,
            tick=TICK,
            bindings=automotive_bindings(),
            aperiodic_arrivals={AUTOMOTIVE_APERIODIC: [arrival]},
            trace=trace,
        )
        sim.run(arrival + int(12.0 * CLOCK_HZ))
        return (tuple(trace.events), per_task_wcrt(sim.finished_jobs),
                sim.stats())

    tlm_first, tlm_second = tlm_outcome(), tlm_outcome()
    check("tlm schedule bit-for-bit repeatable",
          tlm_first == tlm_second and tlm_first[2]["tlm_transactions"] > 0,
          f"{len(tlm_first[0])} event(s), "
          f"{tlm_first[2]['tlm_transactions']} transaction(s)")

    # -- ISA dispatch table
    from repro.hw.assembler import assemble
    from repro.hw.isa import ISAExecutor
    from repro.hw.soc import SoC, SoCConfig

    def run_program() -> tuple:
        soc = SoC(SoCConfig(n_cpus=1))
        program = assemble(
            """
            addi r3, r0, 0
            addi r4, r0, 10
            loop:
                add  r3, r3, r4
                subi r4, r4, 1
                bnez r4, loop
            halt
            """
        )
        executor = ISAExecutor(soc.core(0), program)
        soc.sim.process(executor.run())
        soc.sim.run()
        return executor.state.read(3), executor.cycles

    (value, cycles), (value2, cycles2) = run_program(), run_program()
    check("ISA dispatch computes 10+9+...+1 = 55",
          value == 55, f"r3={value}")
    check("ISA dispatch cycle-deterministic",
          cycles == cycles2 and cycles > 0, f"cycles={cycles}")

    # -- ISA determinism sentinel: the predecoded basic-block
    #    interpreter must be observably indistinguishable from the
    #    per-instruction reference on every asmlib kernel -- cycles,
    #    CPUState, trace events and bus-transaction instants -- with
    #    tracing enabled, under a fault plan (which invalidates and
    #    replays in-flight blocks), and in pc-count accounting.
    from repro.faults.plan import FaultEvent, FaultPlan
    from repro.hw.asmlib import ROUTINES
    from repro.perf.isabench import observable, run_kernel

    sentinel_iters = {"memcpy_words": 4, "array_sum": 4, "popcount32": 20,
                      "crc32_word": 6, "isqrt32": 6}
    mismatches = []
    windows_total = 0
    for kernel in ROUTINES:
        ref = run_kernel(kernel, "reference",
                         iterations=sentinel_iters[kernel], trace=True)
        blk = run_kernel(kernel, "block",
                         iterations=sentinel_iters[kernel], trace=True)
        windows_total += blk["windows"]
        if observable(ref) != observable(blk):
            mismatches.append(kernel)
    check("ISA sentinel: block == reference on every asmlib kernel",
          not mismatches and windows_total > 0,
          f"{len(ROUTINES)} kernel(s), "
          + (f"mismatch: {mismatches}" if mismatches
             else f"{windows_total} window(s)"))

    data_plan = FaultPlan(
        seed=7,
        events=[
            # Flip a bit of the input array mid-run: every later
            # array_sum call must read the corrupted word in both modes.
            FaultEvent(kind="bitflip_memory", time=900,
                       addr=0x4008_0010, arg=5),
            FaultEvent(kind="bitflip_register", time=1_100, cpu=0),
        ],
    )
    ref = run_kernel("array_sum", "reference", iterations=4, trace=True,
                     plan=data_plan)
    blk = run_kernel("array_sum", "block", iterations=4, trace=True,
                     plan=data_plan)
    check("ISA sentinel: faulted data-bound run identical",
          observable(ref) == observable(blk),
          f"replays={blk['replays']}")

    window_plan = FaultPlan(
        seed=8,
        events=[
            # crc32_word coalesces hundreds of ALU instructions per
            # window, so these instants land inside in-flight sleeps:
            # the block interpreter must flush, roll back and replay.
            FaultEvent(kind="bitflip_register", time=900, cpu=0),
            FaultEvent(kind="bitflip_memory", time=1_200,
                       addr=0x4008_0000, arg=3),
        ],
    )
    ref = run_kernel("crc32_word", "reference", iterations=6, trace=True,
                     plan=window_plan)
    blk = run_kernel("crc32_word", "block", iterations=6, trace=True,
                     plan=window_plan)
    check("ISA sentinel: mid-window faults invalidate and replay",
          observable(ref) == observable(blk) and blk["replays"] > 0,
          f"replays={blk['replays']}")

    ref = run_kernel("popcount32", "reference", iterations=8, count_pcs=True)
    blk = run_kernel("popcount32", "block", iterations=8, count_pcs=True)
    check("ISA sentinel: count_pcs accounting identical",
          observable(ref) == observable(blk)
          and ref["pc_counts"] == blk["pc_counts"]
          and sum(ref["pc_counts"].values()) == ref["retired"],
          f"{len(ref['pc_counts'])} pc(s), {ref['retired']} retired")

    print(
        f"self-check: {'PASS' if not failures else 'FAIL'} "
        f"({len(failures)} failure(s))",
        file=out,
    )
    return 0 if not failures else 1


# ----------------------------------------------------------------------- main
def _bench_ledger_results(results: dict) -> dict:
    """The diffable scalars a bench run leaves in the ledger."""
    out: dict = {}
    if "engine" in results:
        out["engine_events_per_s"] = results["engine"]["events_per_s"]
    if "figure4" in results:
        out["figure4_speedup"] = results["figure4"]["speedup"]
        out["figure4_serial_s"] = results["figure4"]["serial_s"]
    if "cache" in results:
        out["cache_warm_speedup"] = results["cache"]["warm_speedup"]
    if "tlm" in results:
        out["tlm_min_speedup"] = results["tlm"]["min_speedup"]
        out["tlm_max_wcrt_deviation"] = results["tlm"]["max_wcrt_deviation"]
    if "isa" in results:
        out["isa_speedup"] = results["isa"]["speedup"]
        out["isa_events_per_instr_reference"] = (
            results["isa"]["events_per_instr_reference"])
        out["isa_events_per_instr_block"] = (
            results["isa"]["events_per_instr_block"])
    return {key: value for key, value in out.items() if value is not None}


def _cmd_bench(args: argparse.Namespace) -> int:
    import time

    from repro.perf.bench import BENCH_FILE, format_results, run_benchmarks

    out = args.out
    if out is None:
        # Partial results must not overwrite a full BENCH_perf.json,
        # so the section-only modes write nothing unless --out is
        # explicit.
        out = "" if (args.engine_only or args.tlm or args.isa_only) else BENCH_FILE
    started = time.perf_counter()
    results = run_benchmarks(out=out, workers=args.workers or None,
                             quick=args.quick, engine_only=args.engine_only,
                             tlm_only=args.tlm, isa_only=args.isa_only)
    wall_time_s = time.perf_counter() - started
    print(format_results(results))
    if out:
        print(f"benchmark results written to {out}", file=sys.stderr)
    # Full runs land in the persistent run ledger so BENCH_perf.json
    # snapshots accumulate a diffable trajectory (repro-obs history /
    # diff).  Section-only modes are partial by design and skipped.
    if not (args.engine_only or args.tlm or args.isa_only or args.no_ledger):
        from repro.obs.ledger import Ledger, LedgerEntry
        from repro.perf.cache import fingerprint

        ledger = Ledger(args.ledger or None)
        cache_section = results.get("cache")
        ledger.append(LedgerEntry(
            kind="bench",
            label=out or BENCH_FILE,
            config_hash=fingerprint({"quick": args.quick,
                                     "workers": args.workers or None}),
            wall_time_s=round(wall_time_s, 3),
            cells=results.get("figure4", {}).get("cells", 0),
            cache=(
                {"hits": cache_section["hits"],
                 "misses": cache_section["misses"],
                 "hit_rate": cache_section["hit_rate"]}
                if cache_section else None
            ),
            results=_bench_ledger_results(results),
        ))
        print(f"ledger: appended bench entry to {ledger.path}",
              file=sys.stderr)
    if args.tlm:
        ok = results["tlm"]["accurate"]
        if not ok:
            print("FAIL: TLM rung drifted outside the calibrated accuracy "
                  "bound -- re-run repro-perf calibrate-tlm", file=sys.stderr)
        return 0 if ok else 1
    if args.isa_only:
        ok = results["isa"]["identical"]
        if not ok:
            print("FAIL: block-mode ISA run diverged from the reference "
                  "interpreter on at least one kernel", file=sys.stderr)
        return 0 if ok else 1
    if args.engine_only:
        return 0
    ok = (results["figure4"]["identical"] and results["cache"]["identical"]
          and results["tlm"]["accurate"] and results["isa"]["identical"])
    if not ok:
        print("FAIL: parallel/cached results differ from serial, the TLM "
              "rung drifted outside its accuracy bound, or the block-mode "
              "ISA interpreter diverged from the reference", file=sys.stderr)
    return 0 if ok else 1


def _cmd_calibrate_tlm(args: argparse.Namespace) -> int:
    import json

    from repro.simulators.tlm import ANCHOR_CELLS, DEFAULT_COST_TABLE, calibrate

    table = calibrate(scale=args.scale)
    if args.json:
        print(json.dumps(table.to_dict(), indent=2))
    else:
        cells = ", ".join(f"{n}P/{u:.0%}" for n, u in ANCHOR_CELLS)
        print(f"calibrated against prototype anchors: {cells} "
              f"(scale {args.scale})")
        print(f"  wait_gain     = {table.wait_gain}")
        print(f"  base_overhead = {table.base_overhead}")
        print(f"  priority_skew = {table.priority_skew}")
        print(f"  residual      = {table.residual} "
              f"(max relative per-task WCRT deviation)")
        if table != DEFAULT_COST_TABLE:
            print("note: fitted table differs from the committed "
                  "DEFAULT_COST_TABLE in repro/simulators/tlm.py -- "
                  "update it (and the residual-derived test tolerance "
                  "follows automatically)", file=sys.stderr)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.perf.cache import RunCache

    cache = RunCache(args.dir or None)
    if args.gc:
        max_bytes = None
        if args.max_mb is not None:
            max_bytes = int(args.max_mb * 1024 * 1024)
        report = cache.gc(max_bytes=max_bytes, max_entries=args.max_entries)
        print(
            f"cache gc: {report['evicted']} entry(ies) evicted, "
            f"{report['removed_tmp']} tmp file(s) removed; "
            f"{report['entries_after']} entry(ies) / "
            f"{report['bytes_after']} byte(s) remain in {report['root']}"
        )
    else:
        print(
            f"cache: {len(cache)} entry(ies), {cache.disk_usage()} byte(s) "
            f"in {cache.root}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description="performance harness: parallel executor, run cache and "
        "sim-core timings (BENCH_perf.json)",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="smoke-run the perf machinery on built-in fixtures and exit",
    )
    commands = parser.add_subparsers(dest="command")

    bench = commands.add_parser("bench", help="time serial vs parallel and "
                                "cold vs warm cache; write BENCH_perf.json")
    bench.add_argument("--out", default=None,
                       help="output file ('' = don't write; default "
                       "BENCH_perf.json, or nothing with --engine-only)")
    bench.add_argument("--workers", type=int, default=0,
                       help="worker processes (default: one per CPU)")
    bench.add_argument("--quick", action="store_true",
                       help="smaller grids (CI-sized run)")
    bench.add_argument("--engine-only", action="store_true",
                       help="run only the event-core micro-benchmark "
                       "(seconds; writes nothing unless --out is given)")
    bench.add_argument("--tlm", action="store_true",
                       help="run only the fidelity-ladder section (TLM vs "
                       "prototype on the Figure 4 anchor cells; writes "
                       "nothing unless --out is given)")
    bench.add_argument("--isa-only", action="store_true",
                       help="run only the ISA interpreter section (block vs "
                       "reference on the asmlib kernels; writes nothing "
                       "unless --out is given)")
    bench.add_argument("--ledger", default=None, metavar="FILE",
                       help="run-ledger file for the appended bench entry "
                       "(default: $REPRO_LEDGER or .repro/ledger.jsonl)")
    bench.add_argument("--no-ledger", action="store_true",
                       help="do not append this run to the run ledger")
    bench.set_defaults(func=_cmd_bench)

    calibrate = commands.add_parser(
        "calibrate-tlm",
        help="refit the TLM per-transaction cost table against fresh "
        "prototype runs on the anchor cells")
    calibrate.add_argument("--scale", type=int, default=1_000,
                           help="prototype time-scale divisor for the "
                           "reference runs (default 1000)")
    calibrate.add_argument("--json", action="store_true",
                           help="emit the fitted table as JSON")
    calibrate.set_defaults(func=_cmd_calibrate_tlm)

    cache = commands.add_parser(
        "cache", help="report run-cache disk usage; --gc evicts LRU entries")
    cache.add_argument("--gc", action="store_true",
                       help="evict least-recently-used entries down to the "
                       "limits (and always remove orphaned tmp files)")
    cache.add_argument("--max-mb", type=float, default=None,
                       help="keep at most this many megabytes")
    cache.add_argument("--max-entries", type=int, default=None,
                       help="keep at most this many entries")
    cache.add_argument("--dir", default=None,
                       help="cache directory (default: $REPRO_CACHE_DIR "
                       "or .repro-cache)")
    cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.self_check:
        return self_check()
    if not getattr(args, "command", None):
        parser.print_help(sys.stderr)
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
