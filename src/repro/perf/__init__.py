"""repro.perf -- throughput machinery for the experiment harness.

Three pieces, designed so that using them never changes a result:

- :mod:`repro.perf.executor` -- :func:`pmap`, a process-pool map with
  chunking, serial fallback and index-ordered reassembly (parallel
  output is bit-for-bit identical to serial);
- :mod:`repro.perf.cache` -- :class:`RunCache`, a content-addressed
  on-disk cache keyed by a stable hash of (task-set rows, simulator
  config, seed, package version), with hit/miss statistics;
- :mod:`repro.perf.bench` -- the timing harness behind the
  ``repro-perf`` CLI, which emits ``BENCH_perf.json``.

The experiment entry points (:func:`repro.experiments.runner.sweep`,
:func:`repro.experiments.figure4.figure4_sweep`,
:func:`repro.simulators.batch.replicate`) all accept ``max_workers``
and ``cache`` arguments wired to this package.
"""

from repro.perf.cache import RunCache, cache_key, fingerprint, taskset_rows
from repro.perf.executor import default_workers, picklable, pmap

__all__ = [
    "pmap",
    "default_workers",
    "picklable",
    "RunCache",
    "cache_key",
    "fingerprint",
    "taskset_rows",
]
