"""Timing harness: serial vs parallel, cold vs warm cache.

Times representative slices of the evaluation pipeline and emits
``BENCH_perf.json``, the file that seeds the repo's performance
trajectory -- every future optimisation PR should move these numbers
and say so.  Three sections:

- ``engine``: a pure discrete-event micro-benchmark (timeout- and
  interrupt-heavy processes, no hardware model) reporting sustained
  queue throughput;
- ``figure4``: the same Figure 4 cells run serially and with a worker
  pool, with the speedup and a bit-for-bit equality check;
- ``cache``: a cold sweep populating a fresh run cache, then the warm
  re-run, with hit statistics and the warm speedup;
- ``isa``: the predecoded basic-block ISA interpreter vs the
  per-instruction reference on the asmlib kernels, with the
  events-per-retired-instruction counts the coalescing is supposed to
  collapse (see :mod:`repro.perf.isabench`).

All sections use deterministic workloads, so two runs on the same
host differ only by timing noise.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from typing import Any, Dict, Optional, Sequence

from repro import __version__
from repro.perf.cache import RunCache
from repro.perf.executor import default_workers
from repro.sim.engine import Simulator
from repro.sim.events import Interrupt

#: Default output file name.
BENCH_FILE = "BENCH_perf.json"


# ------------------------------------------------------------------ engine
def bench_engine(n_processes: int = 300, horizon: int = 3_000) -> Dict[str, Any]:
    """Sustained event throughput of the discrete-event core.

    Spawns ``n_processes`` workers ticking every few cycles plus one
    interrupter per eight workers, the mix the kernel model produces
    (wake-ups dominated by short timeouts with a steady interrupt
    stream).
    """

    def ticker(sim: Simulator, period: int):
        while True:
            try:
                yield sim.timeout(period)
            except Interrupt:
                pass

    def interrupter(sim: Simulator, victims, period: int):
        while True:
            yield sim.timeout(period)
            for victim in victims:
                if victim.is_alive:
                    victim.interrupt("bench")

    sim = Simulator()
    workers = [sim.process(ticker(sim, 2 + (i % 7))) for i in range(n_processes)]
    for i in range(0, n_processes, 8):
        sim.process(interrupter(sim, workers[i:i + 8], 13))
    started = time.perf_counter()
    sim.run(until=horizon)
    elapsed = time.perf_counter() - started
    events = sim._eid  # total queue entries pushed
    return {
        "processes": n_processes,
        "horizon_cycles": horizon,
        "events": events,
        "elapsed_s": round(elapsed, 4),
        "events_per_s": round(events / elapsed) if elapsed > 0 else None,
    }


# ----------------------------------------------------------------- figure 4
def bench_figure4(
    workers: Optional[int] = None,
    cpus: Sequence[int] = (2,),
    utilizations: Sequence[float] = (0.40, 0.50, 0.60),
    scale: int = 1_000,
) -> Dict[str, Any]:
    """Serial vs parallel wall clock over the same Figure 4 cells."""
    from repro.experiments.figure4 import figure4_sweep

    workers = workers or default_workers()
    started = time.perf_counter()
    serial_cells = figure4_sweep(cpus, utilizations, scale=scale, max_workers=1)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel_cells = figure4_sweep(cpus, utilizations, scale=scale,
                                   max_workers=workers)
    parallel_s = time.perf_counter() - started
    return {
        "cells": len(serial_cells),
        "workers": workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
        "identical": serial_cells == parallel_cells,
    }


# -------------------------------------------------------------------- cache
def bench_cache(
    cpus: Sequence[int] = (2,),
    utilizations: Sequence[float] = (0.40, 0.50),
    scale: int = 1_000,
) -> Dict[str, Any]:
    """Cold vs warm run-cache wall clock over the same cells."""
    from repro.experiments.figure4 import figure4_sweep

    with tempfile.TemporaryDirectory(prefix="repro-perf-cache-") as root:
        cache = RunCache(root)
        started = time.perf_counter()
        cold_cells = figure4_sweep(cpus, utilizations, scale=scale, cache=cache)
        cold_s = time.perf_counter() - started

        started = time.perf_counter()
        warm_cells = figure4_sweep(cpus, utilizations, scale=scale, cache=cache)
        warm_s = time.perf_counter() - started
        stats = cache.stats()
    return {
        "cells": len(cold_cells),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 4),
        "hits": stats["hits"],
        "misses": stats["misses"],
        "hit_rate": stats["hit_rate"],
        "warm_speedup": round(cold_s / warm_s, 1) if warm_s > 0 else None,
        "identical": cold_cells == warm_cells,
    }


# ---------------------------------------------------------------------- tlm
def bench_tlm(
    cells: Optional[Sequence] = None,
    repeats: int = 3,
    scale: int = 1_000,
) -> Dict[str, Any]:
    """TLM rung vs prototype wall clock on the Figure 4 anchor cells.

    Times both rungs of the fidelity ladder on the same anchor cells
    the cost table was calibrated against, best-of-``repeats`` (the
    gate protects against code regressions, not scheduler jitter), and
    re-checks the accuracy contract the speedup is only meaningful
    under: identical schedulability verdicts and per-task WCRTs within
    the calibrated residual.

    The rung-independent workload preparation (task-set analysis,
    partitioning, promotions) is built outside the timed region --
    both rungs consume the identical artefact, so the ratio compares
    what actually differs: the simulation backends.  The rungs are
    timed back to back within each repeat and the speedup taken as the
    best per-repeat ratio: on hosts with drifting clock speed (laptop
    governors, shared VMs) paired samples see the same speed epoch,
    where independent minima would compare different ones.
    """
    from repro.simulators.tlm import (
        ANCHOR_CELLS,
        DEFAULT_COST_TABLE,
        _anchor_setup,
        _wcrt_deviation,
        anchor_prototype_reference,
        anchor_tlm_run,
    )

    cells = tuple(cells) if cells is not None else ANCHOR_CELLS
    rows = []
    verdicts_match = True
    max_deviation = 0.0
    for n_cpus, utilization in cells:
        best = None  # (speedup, proto_s, tlm_s)
        for _ in range(repeats):
            prepared = _anchor_setup(n_cpus, utilization)
            started = time.perf_counter()
            reference = anchor_prototype_reference(n_cpus, utilization,
                                                   scale=scale,
                                                   prepared=prepared)
            proto_s = time.perf_counter() - started

            prepared = _anchor_setup(n_cpus, utilization)
            started = time.perf_counter()
            result = anchor_tlm_run(n_cpus, utilization, prepared=prepared)
            tlm_s = time.perf_counter() - started
            if tlm_s > 0 and (best is None or proto_s / tlm_s > best[0]):
                best = (proto_s / tlm_s, proto_s, tlm_s)
        if (result["misses"] == 0) != (reference["misses"] == 0):
            verdicts_match = False
        deviations = _wcrt_deviation(reference["wcrt"], result["wcrt"])
        if deviations:
            max_deviation = max(max_deviation, max(deviations))
        rows.append({
            "n_cpus": n_cpus,
            "utilization": utilization,
            "prototype_s": round(best[1], 4),
            "tlm_s": round(best[2], 4),
            "speedup": round(best[0], 1),
        })
    speedups = [row["speedup"] for row in rows if row["speedup"] is not None]
    residual = DEFAULT_COST_TABLE.residual
    return {
        "cells": rows,
        "repeats": repeats,
        "min_speedup": min(speedups) if speedups else None,
        "verdicts_match": verdicts_match,
        "max_wcrt_deviation": round(max_deviation, 4),
        "residual_bound": residual,
        "accurate": verdicts_match and max_deviation <= residual,
    }


# --------------------------------------------------------------------- main
def run_benchmarks(
    out: Optional[str] = BENCH_FILE,
    workers: Optional[int] = None,
    quick: bool = False,
    engine_only: bool = False,
    tlm_only: bool = False,
    isa_only: bool = False,
) -> Dict[str, Any]:
    """Run every section and (optionally) write ``BENCH_perf.json``.

    ``engine_only`` runs just the pure discrete-event micro-benchmark
    (seconds instead of minutes) -- the mode the engine regression
    gate in ``benchmarks/test_bench_engine.py`` and quick development
    loops use.  ``tlm_only`` runs just the fidelity-ladder section
    (TLM vs prototype on the anchor cells); ``isa_only`` just the
    block-vs-reference interpreter section.  Partial results should
    not be written over a full ``BENCH_perf.json`` (the CLI defaults
    to not writing in those modes).
    """
    from repro.perf.isabench import bench_isa

    utilizations = (0.40, 0.50) if quick else (0.40, 0.50, 0.60)
    results: Dict[str, Any] = {
        "version": __version__,
        "host": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
    }
    if tlm_only:
        results["tlm"] = bench_tlm(repeats=1 if quick else 3)
    elif isa_only:
        results["isa"] = bench_isa(repeats=1 if quick else 3, quick=quick)
    else:
        results["engine"] = bench_engine(n_processes=100 if quick else 300)
        if not engine_only:
            results["figure4"] = bench_figure4(workers=workers,
                                               utilizations=utilizations)
            results["cache"] = bench_cache(utilizations=utilizations[:2])
            results["tlm"] = bench_tlm(repeats=1 if quick else 3)
            results["isa"] = bench_isa(repeats=1 if quick else 3, quick=quick)
    if out:
        payload = results
        if isa_only or tlm_only or engine_only:
            # Section-only regeneration: merge into an existing full
            # file instead of clobbering the other committed sections.
            try:
                with open(out) as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                payload = results
            else:
                for section in ("engine", "figure4", "cache", "tlm", "isa"):
                    if section in results:
                        payload[section] = results[section]
        with open(out, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return results


def format_results(results: Dict[str, Any]) -> str:
    """Human-readable one-screen rendering of a results dict."""
    lines = [
        f"repro-perf {results['version']} on {results['host']['cpus']} cpu(s)",
    ]
    if "engine" in results:
        engine = results["engine"]
        lines.append(
            f"engine : {engine['events']} events in {engine['elapsed_s']} s "
            f"({engine['events_per_s']} events/s)"
        )
    if "figure4" in results:
        fig4 = results["figure4"]
        lines.append(
            f"figure4: {fig4['cells']} cells  serial {fig4['serial_s']} s  "
            f"parallel[{fig4['workers']}] {fig4['parallel_s']} s  "
            f"speedup {fig4['speedup']}x  identical={fig4['identical']}"
        )
    if "cache" in results:
        cache = results["cache"]
        lines.append(
            f"cache  : {cache['cells']} cells  cold {cache['cold_s']} s  "
            f"warm {cache['warm_s']} s  {cache['hits']} hit(s) / "
            f"{cache['misses']} miss(es) ({cache['hit_rate']:.0%} hit rate)  "
            f"warm speedup {cache['warm_speedup']}x"
        )
    if "tlm" in results:
        tlm = results["tlm"]
        per_cell = "  ".join(
            f"{row['n_cpus']}P/{row['utilization']:.0%} {row['speedup']}x"
            for row in tlm["cells"]
        )
        lines.append(
            f"tlm    : {per_cell}  (min {tlm['min_speedup']}x, "
            f"wcrt dev {tlm['max_wcrt_deviation']:.1%} <= "
            f"{tlm['residual_bound']:.1%}, "
            f"verdicts_match={tlm['verdicts_match']})"
        )
    if "isa" in results:
        isa = results["isa"]
        per_kernel = "  ".join(
            f"{row['kernel']} {row['speedup']}x" for row in isa["kernels"]
        )
        lines.append(
            f"isa    : {per_kernel}  (aggregate {isa['speedup']}x, "
            f"events/instr {isa['events_per_instr_reference']} -> "
            f"{isa['events_per_instr_block']}, "
            f"identical={isa['identical']})"
        )
    return "\n".join(lines)
