"""ISA interpreter benchmark & equivalence harness.

Runs the :mod:`repro.hw.asmlib` kernels under both ISA interpreters
(``"block"`` vs ``"reference"``, see :mod:`repro.hw.isa`) and reports
paired wall-time speedups plus a full *observable equality* record:
cycles, architectural state, I-cache counters, trace events and the
exact bus-transaction instants.  ``repro-perf bench --isa-only``
regenerates the ``isa`` section of ``BENCH_perf.json`` from
:func:`bench_isa`; the determinism sentinel in ``repro-perf
--self-check`` reuses :func:`run_kernel`/:func:`observable` to prove
the two interpreters bit-for-bit equivalent, including under fault
plans and with tracing / ``count_pcs`` enabled.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.hw.asmlib import ROUTINES, link
from repro.hw.isa import ISAExecutor
from repro.hw.soc import SoC, SoCConfig

#: Shared input array (16 words) used by the memory-bound kernels.
DATA_BASE = 0x4008_0000
#: memcpy destination.
DST_BASE = 0x4009_0000
#: Words in the shared input array.
DATA_WORDS = 16

#: Driver programs: each calls one asmlib routine ``{iters}`` times
#: following the library calling convention (args r5..r7, result r3,
#: link r15, r3..r10 caller-saved -- so the drivers keep loop state in
#: r20+).  Inputs vary per iteration where the kernel cost allows, so
#: the work is not trivially cacheable by the branch predictor of the
#: host CPU running the interpreter.
KERNEL_DRIVERS: Dict[str, str] = {
    "memcpy_words": """
    addi r20, r0, {iters}
main_loop:
    addi r5, r0, 0x40080000
    addi r6, r0, 0x40090000
    addi r7, r0, 16
    brl  r15, memcpy_words
    subi r20, r20, 1
    bnez r20, main_loop
    halt
""",
    "array_sum": """
    addi r20, r0, {iters}
    addi r21, r0, 0
main_loop:
    addi r5, r0, 0x40080000
    addi r6, r0, 16
    brl  r15, array_sum
    add  r21, r21, r3
    subi r20, r20, 1
    bnez r20, main_loop
    halt
""",
    "popcount32": """
    addi r20, r0, {iters}
    addi r21, r0, 0
    addi r22, r0, 0x1234ABCD
main_loop:
    add  r5, r22, r20
    brl  r15, popcount32
    add  r21, r21, r3
    addi r22, r22, 0x9E3779B9
    subi r20, r20, 1
    bnez r20, main_loop
    halt
""",
    "crc32_word": """
    addi r20, r0, {iters}
    addi r6, r0, 0xFFFFFFFF
main_loop:
    add  r5, r20, r6
    brl  r15, crc32_word
    add  r6, r3, r0
    subi r20, r20, 1
    bnez r20, main_loop
    add  r21, r6, r0
    halt
""",
    "isqrt32": """
    addi r20, r0, {iters}
    addi r21, r0, 0
main_loop:
    muli r5, r20, 17
    addi r5, r5, 3
    brl  r15, isqrt32
    add  r21, r21, r3
    subi r20, r20, 1
    bnez r20, main_loop
    halt
""",
}

#: Call counts for the committed benchmark: enough work per kernel for
#: a stable wall-time signal (tens of milliseconds in reference mode)
#: while the full paired sweep stays a few seconds.
DEFAULT_ITERS: Dict[str, int] = {
    "memcpy_words": 100,
    "array_sum": 100,
    "popcount32": 3000,
    "crc32_word": 300,
    "isqrt32": 120,
}

#: Everything two interpreter runs must agree on, bit for bit.
OBSERVABLE_KEYS: Tuple[str, ...] = (
    "cycles",
    "retired",
    "regs",
    "pc",
    "halted",
    "icache_hits",
    "icache_misses",
    "executor_misses",
    "data_accesses",
    "trace",
    "bus_log",
    "now",
)


def observable(summary: dict) -> dict:
    """The mode-independent projection of a :func:`run_kernel` summary."""
    return {key: summary[key] for key in OBSERVABLE_KEYS}


def _probe_bus(bus, log: list) -> None:
    """Log every bus transaction's request/completion instant.

    Wraps the instance's ``transfer`` so the sentinel can compare the
    *exact instants* shared-bus traffic hits arbitration in each mode.
    """
    inner = bus.transfer

    def probed(master, target, words=1):
        log.append(("req", bus.sim.now, master, words))
        result = yield from inner(master, target, words)
        log.append(("done", bus.sim.now, master, words))
        return result

    bus.transfer = probed


def _arm_plan(soc: SoC, plan) -> None:
    """Schedule a FaultPlan's events directly against the hw surfaces.

    The full injector drives kernel-level faults too; kernel-less ISA
    runs only accept the two hardware kinds the block interpreter must
    survive (``bitflip_memory``, ``bitflip_register``).
    """
    for event in plan.events:
        if event.kind == "bitflip_memory":
            target = soc.ddr
            if event.cpu is not None:
                local = soc.cores[event.cpu].local_mem
                if local.contains(event.addr):
                    target = local
            soc.sim.schedule_at(
                event.time,
                lambda t=target, e=event: t.flip_bit(e.addr, e.arg),
            )
        elif event.kind == "bitflip_register":
            soc.sim.schedule_at(
                event.time,
                lambda c=soc.cores[event.cpu]: c.register_upset(),
            )
        else:
            raise ValueError(
                f"ISA bench plans support bitflip kinds only, got {event.kind!r}"
            )


def run_kernel(
    name: str,
    mode: str,
    iterations: Optional[int] = None,
    trace: bool = False,
    count_pcs: bool = False,
    warm_icache: bool = False,
    plan=None,
    max_instructions: int = 5_000_000,
) -> dict:
    """Run one asmlib kernel driver to completion under ``mode``.

    Returns a summary dict: the :data:`OBSERVABLE_KEYS` projection both
    interpreters must agree on, plus per-run diagnostics (host elapsed
    seconds, engine event count, block windows/replays, pc counts).
    """
    if name not in KERNEL_DRIVERS:
        raise ValueError(f"unknown kernel {name!r} (have {sorted(KERNEL_DRIVERS)})")
    iters = DEFAULT_ITERS[name] if iterations is None else iterations
    soc = SoC(SoCConfig(n_cpus=1, isa_mode=mode))
    program = link(KERNEL_DRIVERS[name].format(iters=iters), [name])
    for i in range(DATA_WORDS):
        program.data[DATA_BASE + 4 * i] = (0x0101 * (i + 1)) & 0xFFFFFFFF
    core = soc.cores[0]
    trace_rec = None
    if trace:
        from repro.trace.recorder import TraceRecorder

        trace_rec = TraceRecorder()
    bus_log: list = []
    _probe_bus(soc.bus, bus_log)
    if warm_icache:
        for index in range(0, len(program), core.icache.line_words):
            core.icache.fill_line(program.address_of(index))
    if plan is not None:
        _arm_plan(soc, plan)
    executor = ISAExecutor(core, program, trace=trace_rec, count_pcs=count_pcs)
    soc.sim.process(executor.run(max_instructions), name=f"isa-{name}")
    start = time.perf_counter()
    soc.sim.run()
    elapsed = time.perf_counter() - start
    state = executor.state
    return {
        "kernel": name,
        "mode": executor.mode,
        "iterations": iters,
        "cycles": executor.cycles,
        "retired": state.instructions_retired,
        "regs": tuple(state.regs),
        "pc": state.pc,
        "halted": state.halted,
        "icache_hits": core.icache.hits,
        "icache_misses": core.icache.misses,
        "executor_misses": executor.icache_misses,
        "data_accesses": executor.data_accesses,
        "trace": tuple(
            (e.time, e.kind, e.cpu, e.info) for e in trace_rec.events
        ) if trace_rec is not None else None,
        "bus_log": tuple(bus_log),
        "now": soc.sim.now,
        "events": soc.sim._eid,
        "elapsed_s": elapsed,
        "windows": executor.windows,
        "window_instructions": executor.window_instructions,
        "replays": executor.replays,
        "pc_counts": dict(executor.pc_counts) if executor.pc_counts is not None else None,
    }


def bench_isa(repeats: int = 3, quick: bool = False) -> dict:
    """Paired block-vs-reference timing over every asmlib kernel.

    Each repeat times the two interpreters back to back on identical
    work, so host noise hits both sides of the ratio; the reported
    per-kernel speedup pairs the best (minimum) time of each mode.
    Every pair is also checked for observable equality -- a bench run
    that is fast but wrong must never land in ``BENCH_perf.json``.
    """
    rows: List[dict] = []
    total_ref = 0.0
    total_blk = 0.0
    ref_events = 0
    blk_events = 0
    retired_total = 0
    all_identical = True
    for name in ROUTINES:
        iters = DEFAULT_ITERS[name]
        if quick:
            iters = max(5, iters // 10)
        best_ref = None
        best_blk = None
        identical = True
        ref = blk = None
        for _ in range(max(1, repeats)):
            ref = run_kernel(name, "reference", iterations=iters)
            blk = run_kernel(name, "block", iterations=iters)
            if observable(ref) != observable(blk):
                identical = False
            if best_ref is None or ref["elapsed_s"] < best_ref:
                best_ref = ref["elapsed_s"]
            if best_blk is None or blk["elapsed_s"] < best_blk:
                best_blk = blk["elapsed_s"]
        all_identical = all_identical and identical
        total_ref += best_ref
        total_blk += best_blk
        ref_events += ref["events"]
        blk_events += blk["events"]
        retired_total += ref["retired"]
        rows.append(
            {
                "kernel": name,
                "iterations": iters,
                "retired": ref["retired"],
                "reference_s": round(best_ref, 6),
                "block_s": round(best_blk, 6),
                "speedup": round(best_ref / best_blk, 3),
                "identical": identical,
                "events_per_instr_reference": round(
                    ref["events"] / max(1, ref["retired"]), 4
                ),
                "events_per_instr_block": round(
                    blk["events"] / max(1, blk["retired"]), 4
                ),
                "windows": blk["windows"],
            }
        )
    return {
        "kernels": rows,
        "speedup": round(total_ref / total_blk, 3),
        "min_speedup": min(row["speedup"] for row in rows),
        "identical": all_identical,
        "events_per_instr_reference": round(ref_events / max(1, retired_total), 4),
        "events_per_instr_block": round(blk_events / max(1, retired_total), 4),
        "reference_s": round(total_ref, 6),
        "block_s": round(total_blk, 6),
    }
