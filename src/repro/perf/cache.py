"""Content-addressed on-disk cache for experiment results.

A cache *key* is the SHA-256 of a canonical JSON rendering of
everything that determines a run's outcome: the task-set rows, the
simulator configuration, the seed / arrival phase, and the package
version (simulator behaviour may change between releases, so results
never leak across versions).  Identical inputs hash identically
across processes and sessions; any change to an input produces a new
key, which is the entire invalidation story -- stale entries are
simply never addressed again.

Layout on disk (JSON, one file per entry, fanned out by key prefix)::

    <root>/<key[:2]>/<key>.json    {"key": ..., "value": ...}

Writes go through a temporary file and ``os.replace`` so a crashed
run never leaves a torn entry.  Values must be JSON-serialisable
(the experiment rows are plain dict/float/int data).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro import __version__

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Default cache root when no directory is given.
DEFAULT_CACHE_DIR = ".repro-cache"


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-able structure.

    Dicts are key-sorted at serialisation time; dataclasses carry
    their type name so two configs with coincidentally equal fields
    do not collide; tuples and lists are equivalent; anything exotic
    falls back to ``repr``.
    """
    if isinstance(obj, dict):
        return {str(key): canonical(value) for key, value in obj.items()}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: canonical(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return {"__dataclass__": type(obj).__name__, **fields}
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def cache_key(**parts: Any) -> str:
    """Stable content hash of keyword parts (package version included).

    ``cache_key(n_cpus=2, seed=0)`` == ``cache_key(seed=0, n_cpus=2)``;
    any differing part (or a different ``repro`` version) changes the
    key.
    """
    parts.setdefault("version", __version__)
    payload = json.dumps(canonical(parts), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fingerprint(obj: Any) -> str:
    """Short content hash of an arbitrary structure (e.g. task-set rows)."""
    payload = json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def taskset_rows(taskset) -> Any:
    """Canonical rows for a :class:`~repro.core.task.TaskSet`.

    Tasks are frozen dataclasses, so :func:`canonical` captures every
    schedulability-relevant field (WCET, period, deadline, priorities,
    promotion, placement).
    """
    return canonical({
        "periodic": list(taskset.periodic),
        "aperiodic": list(taskset.aperiodic),
    })


class RunCache:
    """On-disk result cache with hit/miss accounting.

    Parameters
    ----------
    root:
        Cache directory; defaults to ``$REPRO_CACHE_DIR`` or
        ``.repro-cache`` under the current directory.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.put_errors = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a miss returns ``(False, None)``."""
        path = self._path(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return False, None
        try:
            # Touch the entry so LRU eviction (see :meth:`gc`) ranks it
            # as recently used; best-effort on read-only mounts.
            os.utime(path)
        except OSError:
            pass
        self.hits += 1
        return True, entry["value"]

    def get(self, key: str, default: Any = None) -> Any:
        hit, value = self.lookup(key)
        return value if hit else default

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (atomic replace, last write wins).

        A concurrent LRU GC can rmdir the shard between our mkdir and
        the replace; one retry (re-creating the directory) wins that
        race.  A second failure is counted in ``put_errors`` and
        swallowed -- the cache is an accelerator, and the caller's
        freshly computed value is still returned to it, so dropping
        the store must never fail the run.
        """
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w") as handle:
                json.dump({"key": key, "value": value}, handle)
        except OSError:
            self.put_errors += 1
            return
        try:
            os.replace(tmp, path)
        except OSError:
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                os.replace(tmp, path)
            except OSError:
                self.put_errors += 1
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                return
        self.stores += 1

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def disk_usage(self) -> int:
        """Total bytes held by cache entries (excludes directories)."""
        if not self.root.is_dir():
            return 0
        total = 0
        for path in self.root.glob("*/*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Evict least-recently-used entries until under the limits.

        Entries are ranked by mtime (refreshed on every hit, so mtime
        is last *use*, not last write).  Orphaned temporary files from
        crashed runs are always removed.  With no limits given this is
        a pure report plus tmp-file cleanup.  Returns a summary dict.
        """
        entries = []
        removed_tmp = 0
        if self.root.is_dir():
            for path in self.root.glob("*/*"):
                name = path.name
                if name.endswith(".json"):
                    try:
                        stat = path.stat()
                    except OSError:
                        continue
                    entries.append((stat.st_mtime, stat.st_size, path))
                elif ".tmp." in name:
                    try:
                        path.unlink()
                        removed_tmp += 1
                    except OSError:
                        pass
        entries.sort()  # oldest use first
        total_bytes = sum(size for _, size, _ in entries)
        bytes_before, entries_before = total_bytes, len(entries)
        evicted = 0
        remaining = len(entries)
        for mtime, size, path in entries:
            over_bytes = max_bytes is not None and total_bytes > max_bytes
            over_count = max_entries is not None and remaining > max_entries
            if not over_bytes and not over_count:
                break
            try:
                path.unlink()
            except OSError:
                continue
            evicted += 1
            remaining -= 1
            total_bytes -= size
        # Drop fan-out directories emptied by the eviction.
        if evicted and self.root.is_dir():
            for sub in self.root.iterdir():
                if sub.is_dir():
                    try:
                        sub.rmdir()  # fails (harmlessly) unless empty
                    except OSError:
                        pass
        return {
            "entries_before": entries_before,
            "entries_after": remaining,
            "bytes_before": bytes_before,
            "bytes_after": total_bytes,
            "evicted": evicted,
            "removed_tmp": removed_tmp,
            "root": str(self.root),
        }

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 with no lookups)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "put_errors": self.put_errors,
            "hit_rate": round(self.hit_rate, 4),
            "entries": len(self),
            "root": str(self.root),
        }
