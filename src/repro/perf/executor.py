"""Parallel map over independent experiment cells.

Every cell of the evaluation grid -- a (n_cpus, workload, seed,
ablation) point -- is an independent simulation, so the sweep loops
are embarrassingly parallel.  :func:`pmap` fans a picklable function
out over a :class:`~concurrent.futures.ProcessPoolExecutor` in index
chunks and reassembles the results in submission order, so the output
is **bit-for-bit identical** to a serial ``[fn(x) for x in items]``.

Fallback rules (all silent, all order-preserving):

- ``max_workers`` of ``None``/``0`` means "one worker per CPU";
  ``1`` (the default everywhere) runs serially in-process;
- closures and other non-picklable callables/items run serially --
  the ablation sweeps in :mod:`repro.experiments.runner` close over
  local state and hit this path by design;
- a single item is never worth a worker process.

The optional ``stats`` dict reports which path ran, for the timing
harness and the equivalence tests.
"""

from __future__ import annotations

import math
import os
import pickle
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """One worker per available CPU (at least 1)."""
    return os.cpu_count() or 1


def picklable(obj: Any) -> bool:
    """True when ``obj`` survives pickling (process-pool requirement)."""
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def chunk_indices(n_items: int, chunksize: int) -> List[range]:
    """Split ``range(n_items)`` into contiguous chunks of ``chunksize``."""
    if chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    return [range(i, min(i + chunksize, n_items)) for i in range(0, n_items, chunksize)]


def _run_chunk(fn: Callable[[T], R], chunk: Sequence[T]) -> List[R]:
    """Worker-side body: evaluate one contiguous chunk in order."""
    return [fn(item) for item in chunk]


def pmap(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: Optional[int] = 1,
    chunksize: Optional[int] = None,
    stats: Optional[Dict[str, Any]] = None,
) -> List[R]:
    """``[fn(x) for x in items]``, optionally across worker processes.

    Results always come back in input order regardless of which worker
    finished first, so callers can rely on parallel output being
    identical to serial output.
    """
    items = list(items)
    workers = default_workers() if not max_workers else int(max_workers)
    workers = min(workers, len(items))

    def serial(mode: str) -> List[R]:
        if stats is not None:
            stats.update(mode=mode, workers=1, chunks=len(items))
        return [fn(item) for item in items]

    if workers <= 1:
        return serial("serial")
    if not picklable(fn) or not picklable(items):
        return serial("serial-unpicklable")

    if chunksize is None:
        # ~4 chunks per worker balances load against submit overhead.
        chunksize = max(1, math.ceil(len(items) / (workers * 4)))
    chunks = [[items[i] for i in index_range]
              for index_range in chunk_indices(len(items), chunksize)]
    results: List[Optional[List[R]]] = [None] * len(chunks)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {pool.submit(_run_chunk, fn, chunk): position
                   for position, chunk in enumerate(chunks)}
        wait(futures, return_when=FIRST_EXCEPTION)
        for future, position in futures.items():
            results[position] = future.result()  # re-raises worker errors
    if stats is not None:
        stats.update(mode="parallel", workers=workers, chunks=len(chunks))
    ordered: List[R] = []
    for chunk_result in results:
        ordered.extend(chunk_result)
    return ordered
