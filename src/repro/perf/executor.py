"""Parallel map over independent experiment cells.

Every cell of the evaluation grid -- a (n_cpus, workload, seed,
ablation) point -- is an independent simulation, so the sweep loops
are embarrassingly parallel.  :func:`pmap` fans a picklable function
out over a :class:`~concurrent.futures.ProcessPoolExecutor` in index
chunks and reassembles the results in submission order, so the output
is **bit-for-bit identical** to a serial ``[fn(x) for x in items]``.

Fallback rules (all silent, all order-preserving):

- ``max_workers`` of ``None``/``0`` means "one worker per CPU";
  ``1`` (the default everywhere) runs serially in-process;
- closures and other non-picklable callables/items run serially --
  the ablation sweeps in :mod:`repro.experiments.runner` close over
  local state and hit this path by design;
- a single item is never worth a worker process.

The optional ``stats`` dict reports which path ran, for the timing
harness and the equivalence tests.

Cross-process observability rides the same chunks: pass a
:class:`Telemetry` and every worker records into its own fresh
:class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.spans.SpanRecorder` (reachable from instrumented
code via :func:`current_telemetry`), ships the snapshots home with the
chunk result, and the parent folds them back **in chunk order** --
so a merged parallel run's metrics equal the serial run's bit for bit
(see ``repro-obs --self-check``).  With no telemetry the only cost is
a ``None`` default argument.
"""

from __future__ import annotations

import math
import os
import pickle
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder

T = TypeVar("T")
R = TypeVar("R")


class Telemetry:
    """One run's collection context: a metrics registry + span recorder.

    The parent process owns one; workers build their own throwaway
    instance per chunk and the parent merges the pieces back.  Both
    sides reach the active instance through :func:`current_telemetry`,
    which is ``None`` on every uninstrumented path.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        spans: Optional[SpanRecorder] = None,
        worker: str = "main",
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = spans if spans is not None else SpanRecorder(process=worker)
        self.worker = worker


#: The telemetry installed for the currently running (serial slice or
#: worker chunk) of a collected ``pmap``; ``None`` everywhere else.
_ACTIVE: Optional[Telemetry] = None


def current_telemetry() -> Optional[Telemetry]:
    """The in-scope :class:`Telemetry`, or ``None`` when not collecting."""
    return _ACTIVE


class _installed:
    """Context manager swapping the active telemetry in and out."""

    def __init__(self, telemetry: Optional[Telemetry]):
        self._telemetry = telemetry
        self._previous: Optional[Telemetry] = None

    def __enter__(self):
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self._telemetry
        return self._telemetry

    def __exit__(self, *exc):
        global _ACTIVE
        _ACTIVE = self._previous


def default_workers() -> int:
    """One worker per available CPU (at least 1)."""
    return os.cpu_count() or 1


def picklable(obj: Any) -> bool:
    """True when ``obj`` survives pickling (process-pool requirement)."""
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def chunk_indices(n_items: int, chunksize: int) -> List[range]:
    """Split ``range(n_items)`` into contiguous chunks of ``chunksize``."""
    if chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    return [range(i, min(i + chunksize, n_items)) for i in range(0, n_items, chunksize)]


def _run_chunk(fn: Callable[[T], R], chunk: Sequence[T]) -> List[R]:
    """Worker-side body: evaluate one contiguous chunk in order."""
    return [fn(item) for item in chunk]


def _run_chunk_collected(
    fn: Callable[[T], R], chunk: Sequence[T]
) -> Tuple[List[R], MetricsRegistry, List[Dict[str, Any]], str]:
    """Worker-side body with telemetry: run the chunk under a fresh
    registry/recorder and return their contents with the results."""
    label = f"worker-{os.getpid()}"
    telemetry = Telemetry(worker=label)
    with _installed(telemetry):
        results = [fn(item) for item in chunk]
    return results, telemetry.metrics, telemetry.spans.to_rows(), label


def pmap(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: Optional[int] = 1,
    chunksize: Optional[int] = None,
    stats: Optional[Dict[str, Any]] = None,
    telemetry: Optional[Telemetry] = None,
) -> List[R]:
    """``[fn(x) for x in items]``, optionally across worker processes.

    Results always come back in input order regardless of which worker
    finished first, so callers can rely on parallel output being
    identical to serial output.  With ``telemetry``, worker-recorded
    metrics and spans come back too, merged in chunk order (see the
    module docstring).
    """
    items = list(items)
    workers = default_workers() if not max_workers else int(max_workers)
    workers = min(workers, len(items))

    def serial(mode: str) -> List[R]:
        if stats is not None:
            stats.update(mode=mode, workers=1, chunks=len(items))
        with _installed(telemetry if telemetry is not None else _ACTIVE):
            return [fn(item) for item in items]

    if workers <= 1:
        return serial("serial")
    if not picklable(fn) or not picklable(items):
        return serial("serial-unpicklable")

    if chunksize is None:
        # ~4 chunks per worker balances load against submit overhead.
        chunksize = max(1, math.ceil(len(items) / (workers * 4)))
    chunks = [[items[i] for i in index_range]
              for index_range in chunk_indices(len(items), chunksize)]
    body = _run_chunk_collected if telemetry is not None else _run_chunk
    results: List[Optional[Any]] = [None] * len(chunks)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {pool.submit(body, fn, chunk): position
                   for position, chunk in enumerate(chunks)}
        wait(futures, return_when=FIRST_EXCEPTION)
        for future, position in futures.items():
            results[position] = future.result()  # re-raises worker errors
    if stats is not None:
        stats.update(mode="parallel", workers=workers, chunks=len(chunks))
    ordered: List[R] = []
    if telemetry is not None:
        # Fold worker telemetry home in chunk (= submission) order so
        # the merged registry matches a serial run bit for bit.
        for chunk_result, registry, span_rows, label in results:
            ordered.extend(chunk_result)
            telemetry.metrics.merge(registry)
            telemetry.spans.graft(span_rows, process=label)
    else:
        for chunk_result in results:
            ordered.extend(chunk_result)
    return ordered
