"""The MiBench automotive registry: runnable kernels + characterisation.

Each :class:`BenchmarkSpec` couples

- a *runnable* Python implementation over a deterministic dataset
  (used by the functional tests and the examples), and
- the *characterisation* the simulators consume: a calibrated WCET in
  50 MHz cycles, a shared-memory traffic profile and a stack
  footprint.

WCET calibration: the paper pins one absolute number -- the aperiodic
susan/large run "should execute in ~10.1 seconds with the given
dataset at 50 MHz", i.e. about 505 M cycles -- and the remaining
magnitudes follow MiBench's relative weights on a FPU-less soft core
(susan >> qsort > basicmath > bitcount; large ~ 10x small).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.hw.microblaze import ExecutionProfile
from repro.workloads import basicmath, bitcount, datasets, qsort_bench, susan


@dataclass(frozen=True)
class WorkResult:
    """Outcome of actually running a kernel."""

    checksum: object
    work_units: int


@dataclass(frozen=True)
class BenchmarkSpec:
    """One (program, dataset) entry of the automotive set."""

    name: str
    group: str
    dataset: str
    wcet_cycles: int
    profile: ExecutionProfile
    stack_words: int
    runner: Callable[[], WorkResult]

    def run(self) -> WorkResult:
        """Execute the actual kernel (functional, not timed)."""
        return self.runner()


# ----------------------------------------------------------- traffic profiles
#: susan streams image data from shared memory: heaviest bus load.
PROFILE_SUSAN = ExecutionProfile(access_period=45, access_words=4)
#: qsort moves vectors around shared buffers.
PROFILE_QSORT = ExecutionProfile(access_period=24, access_words=4)
#: basicmath is compute-bound with moderate table traffic.
PROFILE_BASICMATH = ExecutionProfile(access_period=40, access_words=4)
#: bitcount runs almost entirely out of registers and I-cache.
PROFILE_BITCOUNT = ExecutionProfile(access_period=80, access_words=4)

_PROFILES = {
    "susan": PROFILE_SUSAN,
    "qsort": PROFILE_QSORT,
    "basicmath": PROFILE_BASICMATH,
    "bitcount": PROFILE_BITCOUNT,
}
_STACKS = {"susan": 2048, "qsort": 1024, "basicmath": 512, "bitcount": 256}


# ------------------------------------------------------------------- runners
def _run_sqrt(dataset: str) -> WorkResult:
    checksum, units = basicmath.square_roots(datasets.number_array(dataset))
    return WorkResult(checksum, units)


def _run_derivative(dataset: str) -> WorkResult:
    value, units = basicmath.first_derivative(datasets.number_array(dataset))
    return WorkResult(round(value, 6), units)


def _run_angle(dataset: str) -> WorkResult:
    value, units = basicmath.angle_conversions(datasets.number_array(dataset))
    return WorkResult(round(value, 6), units)


def _run_cubic(dataset: str) -> WorkResult:
    total, units = basicmath.cubic_batch(datasets.cubic_coefficients(dataset))
    return WorkResult(round(total, 6), units)


def _run_bitcount(counter: str, dataset: str) -> WorkResult:
    total, units = bitcount.count_batch(counter, datasets.integer_array(dataset))
    return WorkResult(total, units)


def _run_qsort(dataset: str) -> WorkResult:
    if dataset == "large":
        data, units = qsort_bench.sort_vectors(datasets.vector_array(dataset))
        tail = data[-1]
    else:
        data, units = qsort_bench.sort_integers(datasets.integer_array(dataset))
        tail = data[-1]
    return WorkResult(tail, units)


def _run_susan(mode: str, dataset: str) -> WorkResult:
    image = datasets.synthetic_image(dataset)
    if mode == "smoothing":
        out, units = susan.smooth(image)
        checksum = sum(sum(row) for row in out) & 0xFFFFFFFF
    elif mode == "edges":
        out, units = susan.edges(image)
        checksum = sum(sum(row) for row in out) & 0xFFFFFFFF
    else:
        found, units = susan.corners(image)
        checksum = len(found)
    return WorkResult(checksum, units)


# --------------------------------------------------------- calibrated WCETs
#: (group, program, dataset) -> WCET in 50 MHz cycles.
WCET_TABLE: Dict[Tuple[str, str, str], int] = {
    ("basicmath", "sqrt", "small"): 3_000_000,
    ("basicmath", "sqrt", "large"): 30_000_000,
    ("basicmath", "derivative", "small"): 2_000_000,
    ("basicmath", "derivative", "large"): 20_000_000,
    ("basicmath", "angle", "small"): 1_500_000,
    ("basicmath", "angle", "large"): 15_000_000,
    # SolveCubic is part of MiBench's basicmath; the paper's evaluation
    # names only three programs, so cubic is registered but not part of
    # the 19-task automotive workload.
    ("basicmath", "cubic", "small"): 2_500_000,
    ("basicmath", "cubic", "large"): 25_000_000,
    ("bitcount", "shift", "small"): 1_600_000,
    ("bitcount", "shift", "large"): 16_000_000,
    ("bitcount", "sparse", "small"): 1_200_000,
    ("bitcount", "sparse", "large"): 12_000_000,
    ("bitcount", "ntbl", "small"): 1_000_000,
    ("bitcount", "ntbl", "large"): 10_000_000,
    ("bitcount", "btbl", "small"): 900_000,
    ("bitcount", "btbl", "large"): 9_000_000,
    ("bitcount", "parallel", "small"): 800_000,
    ("bitcount", "parallel", "large"): 8_000_000,
    ("qsort", "qsort", "small"): 5_000_000,
    ("qsort", "qsort", "large"): 50_000_000,
    ("susan", "smoothing", "small"): 50_000_000,
    #: the paper's aperiodic task: ~10.1 s at 50 MHz.
    ("susan", "smoothing", "large"): 505_000_000,
    ("susan", "edges", "small"): 30_000_000,
    ("susan", "edges", "large"): 300_000_000,
    ("susan", "corners", "small"): 25_000_000,
    ("susan", "corners", "large"): 250_000_000,
}


def _spec(group: str, program: str, dataset: str, runner: Callable[[], WorkResult]) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=f"{group}-{program}-{dataset}",
        group=group,
        dataset=dataset,
        wcet_cycles=WCET_TABLE[(group, program, dataset)],
        profile=_PROFILES[group],
        stack_words=_STACKS[group],
        runner=runner,
    )


def _build_registry() -> Dict[str, BenchmarkSpec]:
    registry: Dict[str, BenchmarkSpec] = {}

    def add(spec: BenchmarkSpec) -> None:
        registry[spec.name] = spec

    for dataset in ("small", "large"):
        add(_spec("basicmath", "sqrt", dataset, lambda d=dataset: _run_sqrt(d)))
        add(_spec("basicmath", "derivative", dataset, lambda d=dataset: _run_derivative(d)))
        add(_spec("basicmath", "angle", dataset, lambda d=dataset: _run_angle(d)))
        add(_spec("basicmath", "cubic", dataset, lambda d=dataset: _run_cubic(d)))
        for counter in ("shift", "sparse", "ntbl", "btbl", "parallel"):
            add(
                _spec(
                    "bitcount",
                    counter,
                    dataset,
                    lambda c=counter, d=dataset: _run_bitcount(c, d),
                )
            )
        add(_spec("qsort", "qsort", dataset, lambda d=dataset: _run_qsort(d)))
        for mode in ("smoothing", "edges", "corners"):
            add(
                _spec(
                    "susan",
                    mode,
                    dataset,
                    lambda m=mode, d=dataset: _run_susan(m, d),
                )
            )
    return registry


#: All (program, dataset) combinations of the automotive set.
MIBENCH_AUTOMOTIVE: Dict[str, BenchmarkSpec] = _build_registry()


def get_benchmark(name: str) -> BenchmarkSpec:
    try:
        return MIBENCH_AUTOMOTIVE[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; see list_benchmarks()"
        ) from None


def list_benchmarks(group: str = None) -> List[str]:
    names = sorted(MIBENCH_AUTOMOTIVE)
    if group is None:
        return names
    return [n for n in names if MIBENCH_AUTOMOTIVE[n].group == group]


def run_benchmark(name: str) -> WorkResult:
    """Actually execute a kernel (functional check, not timing)."""
    return get_benchmark(name).run()
