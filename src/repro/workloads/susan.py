"""susan: "an image recognition package that can recognize corners or
edges and can smooth an image, useful for quality assurance video
systems or car navigation systems".

Faithful-in-spirit implementations of the three SUSAN modes (Smallest
Univalue Segment Assimilating Nucleus, Smith & Brady):

- *smoothing*: brightness-similarity weighted averaging over a
  circular mask;
- *edges*: USAN area per pixel; pixels whose USAN falls below the
  geometric threshold are edge responses;
- *corners*: a tighter USAN threshold plus a local-minimum check.

Images are lists of rows of 0..255 ints (see
:mod:`repro.workloads.datasets`).  Each entry point returns
``(output, work_units)`` with a deterministic unit count.
"""

from __future__ import annotations

import math
from typing import List, Tuple

Image = List[List[int]]

#: Offsets of the 37-pixel circular mask SUSAN uses (radius ~3.4).
MASK_OFFSETS: List[Tuple[int, int]] = [
    (dy, dx)
    for dy in range(-3, 4)
    for dx in range(-3, 4)
    if dy * dy + dx * dx <= 11 and not (dy == 0 and dx == 0)
]

#: Brightness similarity threshold (SUSAN's t parameter).
BRIGHTNESS_T = 27


def _similarity(a: int, b: int) -> float:
    """exp(-((a-b)/t)^6), SUSAN's smooth similarity function."""
    diff = (a - b) / BRIGHTNESS_T
    return math.exp(-(diff ** 6))


def _dimensions(image: Image) -> Tuple[int, int]:
    height = len(image)
    if height == 0:
        raise ValueError("empty image")
    width = len(image[0])
    if any(len(row) != width for row in image):
        raise ValueError("ragged image")
    return height, width


def smooth(image: Image) -> Tuple[Image, int]:
    """Brightness-preserving SUSAN smoothing."""
    height, width = _dimensions(image)
    out = [row[:] for row in image]
    units = 0
    for y in range(3, height - 3):
        for x in range(3, width - 3):
            centre = image[y][x]
            total = 0.0
            weight_sum = 0.0
            for dy, dx in MASK_OFFSETS:
                value = image[y + dy][x + dx]
                weight = _similarity(centre, value)
                total += weight * value
                weight_sum += weight
                units += 1
            if weight_sum > 0:
                out[y][x] = int(round(total / weight_sum))
    return out, units


def usan_area(image: Image, y: int, x: int) -> Tuple[float, int]:
    """The USAN area at one pixel (sum of similarities over the mask)."""
    centre = image[y][x]
    area = 0.0
    units = 0
    for dy, dx in MASK_OFFSETS:
        area += _similarity(centre, image[y + dy][x + dx])
        units += 1
    return area, units


def edges(image: Image) -> Tuple[Image, int]:
    """Edge response map: max(0, g - USAN) with g = 3/4 of the mask."""
    height, width = _dimensions(image)
    threshold = 0.75 * len(MASK_OFFSETS)
    response: Image = [[0] * width for _ in range(height)]
    units = 0
    for y in range(3, height - 3):
        for x in range(3, width - 3):
            area, u = usan_area(image, y, x)
            units += u
            value = threshold - area
            if value > 0:
                response[y][x] = int(round(value * 10))
    return response, units


def corners(image: Image) -> Tuple[List[Tuple[int, int]], int]:
    """Corner list: USAN below g/2 and a 3x3 local response maximum."""
    height, width = _dimensions(image)
    threshold = 0.5 * len(MASK_OFFSETS)
    response: Image = [[0] * width for _ in range(height)]
    units = 0
    for y in range(3, height - 3):
        for x in range(3, width - 3):
            area, u = usan_area(image, y, x)
            units += u
            value = threshold - area
            if value > 0:
                response[y][x] = int(round(value * 10))
    found: List[Tuple[int, int]] = []
    for y in range(4, height - 4):
        for x in range(4, width - 4):
            value = response[y][x]
            if value <= 0:
                continue
            units += 8
            neighbourhood = [
                response[y + dy][x + dx]
                for dy in (-1, 0, 1)
                for dx in (-1, 0, 1)
                if not (dy == 0 and dx == 0)
            ]
            if value > max(neighbourhood):
                found.append((y, x))
    return found, units
