"""Deterministic synthetic datasets for the MiBench kernels.

MiBench ships fixed input files; offline we generate equivalents from
explicit seeds: integer arrays, 3-D vectors for the qsort variant, and
grayscale images containing rectangles and gradients so the susan
kernels have real edges and corners to find.  "small" exercises the
minimum useful embedded workload, "large" a real-world one, mirroring
the suite's two dataset classes.
"""

from __future__ import annotations

import random
from typing import List, Tuple

#: Canonical dataset sizes (elements / image side) per class.
SIZES = {
    "small": {"array": 512, "vectors": 256, "image": 32, "numbers": 128},
    "large": {"array": 4096, "vectors": 2048, "image": 96, "numbers": 1024},
}


def dataset_sizes(dataset: str) -> dict:
    try:
        return SIZES[dataset]
    except KeyError:
        raise ValueError(f"unknown dataset {dataset!r}; use 'small' or 'large'") from None


def integer_array(dataset: str, seed: int = 1234) -> List[int]:
    """Integers for sorting / bit counting."""
    rng = random.Random(f"{seed}-{dataset}-ints")
    n = dataset_sizes(dataset)["array"]
    return [rng.randrange(0, 1 << 32) for _ in range(n)]


def vector_array(dataset: str, seed: int = 1234) -> List[Tuple[int, int, int]]:
    """3-D integer vectors (the MiBench qsort large input sorts these
    by magnitude)."""
    rng = random.Random(f"{seed}-{dataset}-vectors")
    n = dataset_sizes(dataset)["vectors"]
    return [
        (rng.randrange(-1000, 1000), rng.randrange(-1000, 1000), rng.randrange(-1000, 1000))
        for _ in range(n)
    ]


def number_array(dataset: str, seed: int = 1234) -> List[float]:
    """Positive reals for square roots / angle conversions."""
    rng = random.Random(f"{seed}-{dataset}-numbers")
    n = dataset_sizes(dataset)["numbers"]
    return [rng.uniform(0.0, 1_000_000.0) for _ in range(n)]


def cubic_coefficients(dataset: str, seed: int = 1234) -> List[Tuple[float, float, float, float]]:
    """Coefficient tuples for the basicmath cubic solver."""
    rng = random.Random(f"{seed}-{dataset}-cubics")
    n = dataset_sizes(dataset)["numbers"] // 4
    coefficients = []
    for _ in range(n):
        a = rng.choice([1.0, 2.0, 3.0])
        b = rng.uniform(-30.0, 30.0)
        c = rng.uniform(-150.0, 150.0)
        d = rng.uniform(-500.0, 500.0)
        coefficients.append((a, b, c, d))
    return coefficients


def synthetic_image(dataset: str, seed: int = 1234) -> List[List[int]]:
    """A grayscale image (list of rows, 0..255) with structure.

    Contains a bright rectangle, a diagonal gradient band and additive
    noise -- enough edges and corners for the susan detectors to
    produce non-trivial output.
    """
    rng = random.Random(f"{seed}-{dataset}-image")
    side = dataset_sizes(dataset)["image"]
    image = [[40 + (x + y) * 120 // (2 * side) for x in range(side)] for y in range(side)]
    # Bright rectangle in the upper-left quadrant: strong edges + corners.
    top, left = side // 8, side // 8
    bottom, right = side // 2, side // 2
    for y in range(top, bottom):
        for x in range(left, right):
            image[y][x] = 220
    # Dark disc lower-right: curved edge.
    cy, cx, radius = 3 * side // 4, 3 * side // 4, side // 6
    for y in range(side):
        for x in range(side):
            if (y - cy) ** 2 + (x - cx) ** 2 <= radius * radius:
                image[y][x] = 15
    # Mild noise.
    for y in range(side):
        for x in range(side):
            image[y][x] = min(255, max(0, image[y][x] + rng.randrange(-6, 7)))
    return image
