"""bitcount: "tests bit manipulation abilities of the processors and
is linked to sensor activity checking (five different counters)".

Five genuinely different population-count algorithms, as in MiBench's
bitcnts driver; the unit tests assert they agree on every input.
Each batch entry point returns ``(total_bits, work_units)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

MASK32 = 0xFFFFFFFF

#: 4-bit nibble population count table.
_NIBBLE_TABLE = [bin(i).count("1") for i in range(16)]
#: 8-bit byte population count table.
_BYTE_TABLE = [bin(i).count("1") for i in range(256)]


def count_shift(value: int) -> Tuple[int, int]:
    """Counter 1: naive shift-and-test over all 32 bits."""
    value &= MASK32
    count = 0
    for _ in range(32):
        count += value & 1
        value >>= 1
    return count, 32


def count_sparse(value: int) -> Tuple[int, int]:
    """Counter 2: Kernighan's sparse count (one iteration per set bit)."""
    value &= MASK32
    count = 0
    units = 1
    while value:
        value &= value - 1
        count += 1
        units += 1
    return count, units


def count_nibble_table(value: int) -> Tuple[int, int]:
    """Counter 3: 4-bit table lookups (MiBench ntbl_bitcount)."""
    value &= MASK32
    count = 0
    for shift in range(0, 32, 4):
        count += _NIBBLE_TABLE[(value >> shift) & 0xF]
    return count, 8


def count_byte_table(value: int) -> Tuple[int, int]:
    """Counter 4: 8-bit table lookups (MiBench BW_btbl_bitcount)."""
    value &= MASK32
    count = (
        _BYTE_TABLE[value & 0xFF]
        + _BYTE_TABLE[(value >> 8) & 0xFF]
        + _BYTE_TABLE[(value >> 16) & 0xFF]
        + _BYTE_TABLE[(value >> 24) & 0xFF]
    )
    return count, 4


def count_parallel(value: int) -> Tuple[int, int]:
    """Counter 5: SWAR tree reduction (MiBench bitcount(long))."""
    v = value & MASK32
    v = v - ((v >> 1) & 0x55555555)
    v = (v & 0x33333333) + ((v >> 2) & 0x33333333)
    v = (v + (v >> 4)) & 0x0F0F0F0F
    v = (v * 0x01010101) & MASK32
    return v >> 24, 6


#: The five counters, keyed as the experiments name them.
COUNTERS: Dict[str, Callable[[int], Tuple[int, int]]] = {
    "shift": count_shift,
    "sparse": count_sparse,
    "ntbl": count_nibble_table,
    "btbl": count_byte_table,
    "parallel": count_parallel,
}


def count_batch(counter: str, values: Sequence[int]) -> Tuple[int, int]:
    """Run one counter over a value array."""
    try:
        func = COUNTERS[counter]
    except KeyError:
        raise ValueError(f"unknown counter {counter!r}; have {sorted(COUNTERS)}") from None
    total = 0
    units = 0
    for value in values:
        bits, u = func(value)
        total += bits
        units += u
    return total, units


def crosscheck(values: Sequence[int]) -> bool:
    """True when all five counters agree on every value."""
    for value in values:
        results = {name: func(value)[0] for name, func in COUNTERS.items()}
        if len(set(results.values())) != 1:
            return False
    return True
