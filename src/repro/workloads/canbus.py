"""CAN bus modelling: frames, timing and response-time analysis.

The paper's peripherals are "interfaces to sensors and data
acquisition systems, like for example Controller Area Networks (CANs)
interfaces, widely used in automotive applications".  This module
models the network side of that path:

- :class:`CANFrame` -- identifier, DLC, payload; worst-case on-wire
  bit count including the 5-bit-rule stuff bits (classic CAN 2.0A);
- transmission times at a configurable bit rate (automotive: 125 k /
  250 k / 500 k / 1 M bit/s);
- :func:`can_response_time` -- Davis/Burns/Bril/Lukkien response-time
  analysis for CAN's fixed-priority *non-preemptive* arbitration,
  built on the same busy-period recurrence as the processor-side
  analysis (blocking = longest lower-priority frame);
- :func:`frame_arrival_times` -- the instants frames complete
  transmission, i.e. when the CAN controller raises its interrupt
  into the MPIC; these drive the aperiodic releases in end-to-end
  experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import CLOCK_HZ

#: Fixed overhead bits of a CAN 2.0A data frame (SOF, ID, control,
#: CRC, ACK, EOF, interframe space), before stuffing.
_FRAME_OVERHEAD_BITS = 47
#: Bits exposed to stuffing (SOF..CRC body, 34 + 8*DLC).
_STUFFABLE_OVERHEAD_BITS = 34


@dataclass(frozen=True)
class CANFrame:
    """One CAN 2.0A (11-bit identifier) data frame."""

    can_id: int
    dlc: int  # data length code, 0..8 bytes
    name: str = ""

    def __post_init__(self):
        if not 0 <= self.can_id <= 0x7FF:
            raise ValueError(f"11-bit identifier required, got {self.can_id:#x}")
        if not 0 <= self.dlc <= 8:
            raise ValueError(f"DLC must be 0..8, got {self.dlc}")

    @property
    def max_bits(self) -> int:
        """Worst-case frame size in bits, stuffing included.

        Standard bound: 8*DLC + 47 + floor((34 + 8*DLC - 1) / 4)
        stuff bits (a stuff bit every 4 bits in the worst case).
        """
        data_bits = 8 * self.dlc
        stuff = (_STUFFABLE_OVERHEAD_BITS + data_bits - 1) // 4
        return data_bits + _FRAME_OVERHEAD_BITS + stuff

    def transmission_time(self, bitrate: int) -> float:
        """Worst-case wire time in seconds."""
        if bitrate <= 0:
            raise ValueError("bitrate must be positive")
        return self.max_bits / bitrate

    def transmission_cycles(self, bitrate: int, clock_hz: int = CLOCK_HZ) -> int:
        """Worst-case wire time in CPU clock cycles."""
        return int(math.ceil(self.max_bits * clock_hz / bitrate))


@dataclass(frozen=True)
class CANMessage:
    """A periodic CAN message stream (frame + period + deadline)."""

    frame: CANFrame
    period_cycles: int
    deadline_cycles: Optional[int] = None

    def __post_init__(self):
        if self.period_cycles <= 0:
            raise ValueError("period must be positive")
        if self.deadline_cycles is None:
            object.__setattr__(self, "deadline_cycles", self.period_cycles)
        if self.deadline_cycles <= 0:
            raise ValueError("deadline must be positive")

    @property
    def priority(self) -> int:
        """CAN arbitration: numerically lower identifier wins."""
        return self.frame.can_id


def _interference(
    message: CANMessage, others: Sequence[CANMessage]
) -> List[CANMessage]:
    """Messages that beat ``message`` in arbitration (lower id)."""
    return [
        other
        for other in others
        if other.frame.can_id < message.frame.can_id
    ]


def can_response_time(
    message: CANMessage,
    messages: Sequence[CANMessage],
    bitrate: int,
    clock_hz: int = CLOCK_HZ,
    max_iterations: int = 10_000,
) -> Optional[int]:
    """Worst-case response time (cycles) of one message on the bus.

    Non-preemptive fixed priority: the queueing delay w satisfies
    ``w = B + sum_{j in hp} ceil((w + tau_bit) / T_j) * C_j`` where B
    is the longest lower-or-equal-priority frame already on the wire,
    and the response is ``w + C_m``.  Returns None when the recurrence
    exceeds the deadline (unschedulable).
    """
    own_cycles = message.frame.transmission_cycles(bitrate, clock_hz)
    tau_bit = int(math.ceil(clock_hz / bitrate))
    blockers = [
        other.frame.transmission_cycles(bitrate, clock_hz)
        for other in messages
        if other is not message and other.frame.can_id > message.frame.can_id
    ]
    blocking = max(blockers, default=0)
    hp = _interference(message, messages)

    w = blocking
    for _ in range(max_iterations):
        w_next = blocking + sum(
            math.ceil((w + tau_bit) / other.period_cycles)
            * other.frame.transmission_cycles(bitrate, clock_hz)
            for other in hp
        )
        if w_next + own_cycles > message.deadline_cycles:
            return None
        if w_next == w:
            return w + own_cycles
        w = w_next
    raise RuntimeError("CAN response-time recurrence did not converge")


def bus_utilization(messages: Sequence[CANMessage], bitrate: int, clock_hz: int = CLOCK_HZ) -> float:
    """Fraction of wire time consumed by the message set."""
    return sum(
        m.frame.transmission_cycles(bitrate, clock_hz) / m.period_cycles
        for m in messages
    )


def frame_arrival_times(
    message: CANMessage,
    bitrate: int,
    horizon: int,
    clock_hz: int = CLOCK_HZ,
    offset: int = 0,
    include_wire_time: bool = True,
) -> List[int]:
    """Completion instants of a periodic frame up to ``horizon``.

    These are the times the receiving CAN controller raises its
    interrupt (queueing ignored; add :func:`can_response_time` minus
    the wire time for a worst-case shift), i.e. the aperiodic release
    times to feed :class:`repro.hw.peripherals.CANInterface`.
    """
    wire = message.frame.transmission_cycles(bitrate, clock_hz) if include_wire_time else 0
    times = []
    t = offset
    while t + wire < horizon:
        times.append(t + wire)
        t += message.period_cycles
    return times


def automotive_message_set(bitrate: int = 500_000, clock_hz: int = CLOCK_HZ) -> List[CANMessage]:
    """A representative body/powertrain CAN message set.

    Periods follow common automotive practice (10-1000 ms); identifiers
    encode priority (engine > brakes > body > diagnostics).
    """
    def ms(value: float) -> int:
        return int(value * clock_hz / 1_000)

    return [
        CANMessage(CANFrame(0x080, 8, "engine-rpm"), period_cycles=ms(10)),
        CANMessage(CANFrame(0x0A0, 8, "wheel-speed"), period_cycles=ms(10)),
        CANMessage(CANFrame(0x100, 6, "brake-status"), period_cycles=ms(20)),
        CANMessage(CANFrame(0x180, 8, "steering-angle"), period_cycles=ms(20)),
        CANMessage(CANFrame(0x200, 4, "gear-position"), period_cycles=ms(50)),
        CANMessage(CANFrame(0x300, 8, "body-controls"), period_cycles=ms(100)),
        CANMessage(CANFrame(0x400, 2, "door-status"), period_cycles=ms(200)),
        CANMessage(CANFrame(0x500, 8, "climate"), period_cycles=ms(500)),
        CANMessage(CANFrame(0x600, 8, "diagnostics"), period_cycles=ms(1_000)),
    ]


def bursty_arrivals(
    seed: int,
    horizon: int,
    mean_burst_gap: int,
    burst_size: Tuple[int, int] = (2, 6),
    intra_burst_gap: int = 2_000,
) -> List[int]:
    """Seeded bursty CAN traffic: Poisson bursts of back-to-back frames.

    Real CAN buses are bursty, not smooth: an event (brake application,
    diagnostic request) triggers a clump of frames.  Burst *starts*
    arrive as a Poisson process with mean inter-burst gap
    ``mean_burst_gap`` cycles; each burst carries a uniform
    ``burst_size`` count of frames ``intra_burst_gap`` cycles apart.

    Deterministic: same arguments, byte-identical arrival list -- the
    property the fault tier's campaign tests pin down across worker
    processes.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if mean_burst_gap <= 0:
        raise ValueError("mean_burst_gap must be positive")
    if intra_burst_gap <= 0:
        raise ValueError("intra_burst_gap must be positive")
    lo, hi = burst_size
    if lo < 1 or hi < lo:
        raise ValueError("burst_size must be (lo, hi) with 1 <= lo <= hi")
    import random

    rng = random.Random(seed)
    times: List[int] = []
    t = 0.0
    while True:
        t += rng.expovariate(1.0 / mean_burst_gap)
        if t >= horizon:
            break
        for i in range(rng.randint(lo, hi)):
            at = int(t) + i * intra_burst_gap
            if at < horizon:
                times.append(at)
    # Bursts may overlap (a long burst can straddle the next burst
    # start); frame programmers expect chronological order.
    return sorted(times)


def bursty_arrivals_point(point: dict) -> List[int]:
    """:func:`bursty_arrivals` with a single dict argument.

    Module-level and plain-data in/out, so it is picklable for
    :func:`repro.perf.executor.pmap` -- campaign code fans seeds across
    worker processes through this wrapper.
    """
    return bursty_arrivals(**point)
