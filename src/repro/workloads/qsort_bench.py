"""qsort: "executes sorting of vectors, useful to organize data and
priorities".

MiBench's qsort_small sorts strings and qsort_large sorts 3-D vectors
by magnitude; here both integer-key and vector-magnitude sorts are
provided, implemented as an in-place quicksort with median-of-three
pivoting and an insertion-sort cutoff (the classic libc shape), with a
deterministic work count of comparisons + swaps.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

_INSERTION_CUTOFF = 8


class _Counter:
    __slots__ = ("comparisons", "swaps")

    def __init__(self):
        self.comparisons = 0
        self.swaps = 0

    @property
    def units(self) -> int:
        return self.comparisons + self.swaps


def _insertion_sort(data: List, lo: int, hi: int, key: Callable, counter: _Counter) -> None:
    for i in range(lo + 1, hi + 1):
        item = data[i]
        item_key = key(item)
        j = i - 1
        while j >= lo:
            counter.comparisons += 1
            if key(data[j]) <= item_key:
                break
            data[j + 1] = data[j]
            counter.swaps += 1
            j -= 1
        data[j + 1] = item


def _median_of_three(data: List, lo: int, mid: int, hi: int, key: Callable, counter: _Counter) -> int:
    a, b, c = key(data[lo]), key(data[mid]), key(data[hi])
    counter.comparisons += 3
    if a < b:
        if b < c:
            return mid
        return hi if a < c else lo
    if a < c:
        return lo
    return hi if b < c else mid


def quicksort(data: List, key: Callable = lambda item: item) -> int:
    """In-place quicksort; returns the work units (cmps + swaps)."""
    counter = _Counter()
    stack = [(0, len(data) - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < _INSERTION_CUTOFF:
            if lo < hi:
                _insertion_sort(data, lo, hi, key, counter)
            continue
        mid = (lo + hi) // 2
        pivot_index = _median_of_three(data, lo, mid, hi, key, counter)
        data[pivot_index], data[hi] = data[hi], data[pivot_index]
        counter.swaps += 1
        pivot_key = key(data[hi])
        store = lo
        for i in range(lo, hi):
            counter.comparisons += 1
            if key(data[i]) < pivot_key:
                if i != store:
                    data[i], data[store] = data[store], data[i]
                    counter.swaps += 1
                store += 1
        data[store], data[hi] = data[hi], data[store]
        counter.swaps += 1
        # Recurse smaller side last (bounded stack).
        left = (lo, store - 1)
        right = (store + 1, hi)
        if (left[1] - left[0]) > (right[1] - right[0]):
            stack.append(left)
            stack.append(right)
        else:
            stack.append(right)
            stack.append(left)
    return counter.units


def sort_integers(values: Sequence[int]) -> Tuple[List[int], int]:
    """Sort an integer array; returns (sorted copy, work units)."""
    data = list(values)
    units = quicksort(data)
    return data, units


def vector_magnitude_squared(vector: Tuple[int, int, int]) -> int:
    x, y, z = vector
    return x * x + y * y + z * z


def sort_vectors(vectors: Sequence[Tuple[int, int, int]]) -> Tuple[List[Tuple[int, int, int]], int]:
    """Sort 3-D vectors by magnitude (qsort_large's comparison)."""
    data = list(vectors)
    units = quicksort(data, key=vector_magnitude_squared)
    return data, units


def is_sorted(data: Sequence, key: Callable = lambda item: item) -> bool:
    """Verification helper used by tests."""
    return all(key(data[i]) <= key(data[i + 1]) for i in range(len(data) - 1))
