"""basicmath: "simple mathematical calculations not supported by
dedicated hardware ... can be used to calculate road speed or other
vector values (three programs: square roots, first derivative, angle
conversion)".

Each entry point returns ``(checksum, work_units)`` where work_units
counts elementary operations deterministically; the characterisation
table in :mod:`repro.workloads.mibench` converts units to cycles.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def integer_sqrt(value: int) -> Tuple[int, int]:
    """Newton's method integer square root, with iteration count.

    Mirrors MiBench's ``usqrt``: no FPU, integer-only iteration.
    """
    if value < 0:
        raise ValueError("integer_sqrt of a negative number")
    if value < 2:
        return value, 1
    x = value
    y = (x + 1) // 2
    iterations = 0
    while y < x:
        x = y
        y = (x + value // x) // 2
        iterations += 1
    return x, iterations


def square_roots(numbers: Sequence[float]) -> Tuple[int, int]:
    """The square-roots program: isqrt over the scaled input set."""
    checksum = 0
    units = 0
    for number in numbers:
        root, iterations = integer_sqrt(int(number))
        checksum = (checksum + root) & 0xFFFFFFFF
        units += 2 + iterations
    return checksum, units


def first_derivative(samples: Sequence[float], step: float = 1.0) -> Tuple[float, int]:
    """Central-difference first derivative of a sample train."""
    if len(samples) < 3:
        raise ValueError("need at least 3 samples")
    if step <= 0:
        raise ValueError("step must be positive")
    total = 0.0
    units = 0
    for i in range(1, len(samples) - 1):
        derivative = (samples[i + 1] - samples[i - 1]) / (2.0 * step)
        total += derivative
        units += 3
    return total, units


def angle_conversions(angles_deg: Sequence[float]) -> Tuple[float, int]:
    """Degree->radian->degree round trips (MiBench's deg/rad tables)."""
    total = 0.0
    units = 0
    for angle in angles_deg:
        radians = angle * math.pi / 180.0
        back = radians * 180.0 / math.pi
        total += back
        units += 2
    return total, units


def solve_cubic(a: float, b: float, c: float, d: float) -> Tuple[List[float], int]:
    """Real roots of a*x^3 + b*x^2 + c*x + d = 0 (MiBench SolveCubic).

    Trigonometric method for three real roots, Cardano otherwise.
    Returns (sorted real roots, work units).
    """
    if a == 0.0:
        raise ValueError("not a cubic (a == 0)")
    units = 10
    a1 = b / a
    a2 = c / a
    a3 = d / a
    q = (a1 * a1 - 3.0 * a2) / 9.0
    r = (2.0 * a1 ** 3 - 9.0 * a1 * a2 + 27.0 * a3) / 54.0
    discriminant = q ** 3 - r * r
    offset = a1 / 3.0
    if discriminant >= 0.0:
        units += 12
        if q <= 0.0 or math.sqrt(q ** 3) == 0.0:
            # Triple (or numerically degenerate) root at -a1/3.
            roots = [-offset]
        else:
            theta = math.acos(max(-1.0, min(1.0, r / math.sqrt(q ** 3))))
            sqrt_q = math.sqrt(q)
            roots = [
                -2.0 * sqrt_q * math.cos(theta / 3.0) - offset,
                -2.0 * sqrt_q * math.cos((theta + 2.0 * math.pi) / 3.0) - offset,
                -2.0 * sqrt_q * math.cos((theta + 4.0 * math.pi) / 3.0) - offset,
            ]
    else:
        units += 8
        e = (math.sqrt(-discriminant) + abs(r)) ** (1.0 / 3.0)
        if r > 0:
            e = -e
        roots = [(e + (q / e if e != 0 else 0.0)) - offset]
    return sorted(roots), units


def cubic_batch(coefficients: Sequence[Tuple[float, float, float, float]]) -> Tuple[float, int]:
    """Solve a batch of cubics; sum of roots as checksum."""
    total = 0.0
    units = 0
    for a, b, c, d in coefficients:
        roots, u = solve_cubic(a, b, c, d)
        total += sum(roots)
        units += u
    return total, units
