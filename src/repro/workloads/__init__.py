"""MiBench automotive workloads.

Pure-Python implementations of the four MiBench automotive groups the
paper runs (basicmath, bitcount, qsort, susan), synthetic small/large
datasets, the calibrated WCET/traffic characterisation table, and the
builder for the paper's 19-task evaluation workload (18 periodic + the
susan/large aperiodic).
"""

from repro.workloads.mibench import (
    BenchmarkSpec,
    MIBENCH_AUTOMOTIVE,
    WorkResult,
    get_benchmark,
    list_benchmarks,
    run_benchmark,
)
from repro.workloads.automotive import (
    AUTOMOTIVE_APERIODIC,
    AUTOMOTIVE_PERIODIC,
    automotive_bindings,
    build_automotive_taskset,
    prepare_taskset,
)

__all__ = [
    "BenchmarkSpec",
    "WorkResult",
    "MIBENCH_AUTOMOTIVE",
    "get_benchmark",
    "list_benchmarks",
    "run_benchmark",
    "build_automotive_taskset",
    "prepare_taskset",
    "automotive_bindings",
    "AUTOMOTIVE_PERIODIC",
    "AUTOMOTIVE_APERIODIC",
]
