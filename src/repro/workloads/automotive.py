"""The paper's evaluation workload: 18 periodic tasks + 1 aperiodic.

"We run a total of 19 tasks on the system, 18 periodic and 1
aperiodic.  The aperiodic task is the susan benchmark with the large
dataset ... All the other applications are executed as periodic
benchmarks running in parallel on the system with different datasets
(small and large).  Periodic utilization is determined varying the
periods of the applications in accordance to their critical deadline."

The 18 periodic tasks: basicmath's three programs x {small, large}
(6), bitcount's five counters x {small, large} (10) and qsort x
{small, large} (2).  Base periods reflect each group's role (sensor
checks fast, sorting slow); a single uniform period scale then dials
the total periodic utilization to the target.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.partitioning import partition
from repro.analysis.promotion import assign_promotions
from repro.core.task import AperiodicTask, PeriodicTask, TaskSet
from repro.kernel.microkernel import TaskBinding
from repro.workloads.mibench import MIBENCH_AUTOMOTIVE, get_benchmark

#: The 18 periodic benchmark names (group x dataset mix).
AUTOMOTIVE_PERIODIC: List[str] = (
    [f"basicmath-{p}-{d}" for p in ("sqrt", "derivative", "angle") for d in ("small", "large")]
    + [f"bitcount-{c}-{d}" for c in ("shift", "sparse", "ntbl", "btbl", "parallel") for d in ("small", "large")]
    + [f"qsort-qsort-{d}" for d in ("small", "large")]
)

#: The aperiodic task: susan smoothing on the large dataset.
AUTOMOTIVE_APERIODIC = "susan-smoothing-large"

#: Base periods per group/dataset in cycles, before utilization scaling.
#: bitcount = fast sensor polls, basicmath = control-law rates,
#: qsort = slow data organisation.
BASE_PERIODS: Dict[Tuple[str, str], int] = {
    ("bitcount", "small"): 25_000_000,     # 0.5 s
    ("bitcount", "large"): 100_000_000,    # 2 s
    ("basicmath", "small"): 50_000_000,    # 1 s
    ("basicmath", "large"): 250_000_000,   # 5 s
    ("qsort", "small"): 100_000_000,       # 2 s
    ("qsort", "large"): 500_000_000,       # 10 s
}


def base_utilization() -> float:
    """Total periodic utilization at the base periods."""
    total = 0.0
    for name in AUTOMOTIVE_PERIODIC:
        spec = get_benchmark(name)
        total += spec.wcet_cycles / BASE_PERIODS[(spec.group, spec.dataset)]
    return total


#: Default WCET padding over the measured (actual) execution time.
#: The paper's offline tool "determined [worst cases] taking in
#: account an overhead for the context switching and considering the
#: most complex datasets" -- i.e. the analysed budgets exceed what the
#: tasks actually execute; contention eats into that margin at runtime.
WCET_MARGIN = 1.35


def build_automotive_taskset(
    utilization_fraction: float,
    n_cpus: int,
    period_granule: int = 10_000,
    wcet_margin: float = WCET_MARGIN,
) -> TaskSet:
    """The 19-task workload at the requested periodic utilization.

    ``utilization_fraction`` is the paper's x-axis value (0.40, 0.50,
    0.60): the *budgeted* periodic utilization per processor, so the
    total target is ``utilization_fraction * n_cpus`` (the paper notes
    that 4 processors at 50 % carry double the workload of 2 at 50 %).
    Utilization is computed on the padded WCET budgets (see
    :data:`WCET_MARGIN`); the jobs actually execute their calibrated
    ACET.  Periods are scaled uniformly from the base table and rounded
    down to ``period_granule`` (rounding down errs towards slightly
    more load, never less).
    """
    if not 0.0 < utilization_fraction < 1.0:
        raise ValueError("utilization_fraction must be in (0, 1)")
    if n_cpus < 1:
        raise ValueError("n_cpus must be >= 1")
    if wcet_margin < 1.0:
        raise ValueError("wcet_margin must be >= 1")
    target_total = utilization_fraction * n_cpus
    factor = base_utilization() * wcet_margin / target_total

    periodic: List[PeriodicTask] = []
    for name in AUTOMOTIVE_PERIODIC:
        spec = get_benchmark(name)
        base = BASE_PERIODS[(spec.group, spec.dataset)]
        wcet = int(spec.wcet_cycles * wcet_margin)
        period = int(base * factor) // period_granule * period_granule
        period = max(period, wcet)
        periodic.append(
            PeriodicTask(name=name, wcet=wcet, period=period, acet=spec.wcet_cycles)
        )

    aperiodic_spec = get_benchmark(AUTOMOTIVE_APERIODIC)
    aperiodic = [
        AperiodicTask(
            name=AUTOMOTIVE_APERIODIC,
            wcet=int(aperiodic_spec.wcet_cycles * wcet_margin),
            acet=aperiodic_spec.wcet_cycles,
        )
    ]
    return TaskSet(periodic, aperiodic).with_deadline_monotonic_priorities()


def prepare_taskset(
    taskset: TaskSet,
    n_cpus: int,
    tick: int,
    heuristic: str = "worst-fit",
) -> TaskSet:
    """Partition + promotion analysis, tick-rounded (full pipeline)."""
    assigned = partition(taskset, n_cpus, heuristic=heuristic)
    return assign_promotions(assigned, n_cpus, tick=tick)


def automotive_bindings() -> Dict[str, TaskBinding]:
    """Execution profiles/stacks for every task in the workload."""
    bindings: Dict[str, TaskBinding] = {}
    for name in AUTOMOTIVE_PERIODIC + [AUTOMOTIVE_APERIODIC]:
        spec = get_benchmark(name)
        bindings[name] = TaskBinding(
            profile=spec.profile, stack_words=spec.stack_words
        )
    return bindings
