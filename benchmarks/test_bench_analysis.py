"""Benchmark: the offline analysis tool on the automotive task tables.

Regenerates the artefact the paper's "in-house tool" produces: the
task tables with processor assignments, worst-case response times and
promotion instants, for every Figure 4 configuration.  Also times the
recurrence itself (it must be cheap enough for "low memory usage and
low computational overhead" on small embedded systems).
"""

import pytest

from repro.analysis.promotion import promotion_table
from repro.analysis.response_time import response_time_table
from repro.analysis.schedulability import analyse_taskset
from repro.analysis.taskgen import random_taskset
from repro.analysis.partitioning import partition
from repro.workloads.automotive import build_automotive_taskset, prepare_taskset

TICK = 5_000_000


@pytest.mark.paper
@pytest.mark.parametrize("n_cpus", [2, 3, 4])
def test_automotive_task_tables(benchmark, report, n_cpus):
    def analyse():
        ts = build_automotive_taskset(0.50, n_cpus)
        prepared = prepare_taskset(ts, n_cpus, tick=TICK)
        return prepared, promotion_table(prepared, n_cpus)

    prepared, rows = benchmark(analyse)
    assert len(rows) == 18
    assert all(row["schedulable"] for row in rows)
    assert all(row["promotion"] is not None and row["promotion"] >= 0 for row in rows)
    report.append(f"[Task table] {n_cpus} processors @ 50% utilization:")
    for row in rows[: 6 if n_cpus == 2 else 3]:
        report.append(
            f"  {row['task']:<28} cpu={row['cpu']} C={row['wcet']:>11} "
            f"T={row['period']:>12} W={row['wcrt']:>11} U={row['promotion']:>12}"
        )


def test_response_time_recurrence_speed(benchmark):
    """The W_i recurrence over a 50-task single-processor group."""
    ts = random_taskset(50, 0.75, seed=123)

    def run():
        return response_time_table(ts.periodic)

    table = benchmark(run)
    assert len(table) == 50


def test_partition_and_analyse_speed(benchmark):
    """Full pipeline on a 40-task set across 4 processors."""
    ts = random_taskset(40, 2.4, seed=5)

    def run():
        assigned = partition(ts, 4)
        return analyse_taskset(assigned, 4)

    result = benchmark(run)
    assert result.schedulable


@pytest.mark.paper
def test_wcet_sensitivity_of_automotive_set(benchmark, report):
    """Per-task WCET headroom of the paper's workload at 2P/50%."""
    from repro.analysis.sensitivity import sensitivity_report

    def run():
        ts = build_automotive_taskset(0.50, 2)
        prepared = prepare_taskset(ts, 2, tick=TICK)
        return sensitivity_report(prepared, 2)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    tightest = min(rows, key=lambda r: r["scaling_factor"])
    report.append(
        f"[Sensitivity] tightest budget at 2P@50%: {tightest['task']} "
        f"tolerates x{tightest['scaling_factor']:.2f} WCET growth"
    )
    assert all(row["scaling_factor"] > 1.0 for row in rows)
