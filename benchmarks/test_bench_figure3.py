"""Benchmark: regenerate Figure 3 (the worked dual-MicroBlaze schedule).

Produces the two schedules (A: periodic only, B: with the two
aperiodic arrivals) and verifies every claim the paper's caption
makes about them.
"""

import pytest

from repro.experiments.figure3 import (
    narrative_checks_a,
    narrative_checks_b,
    run_schedule_a,
    run_schedule_b,
    schedule_report,
)


@pytest.mark.paper
def test_figure3_schedule_a(benchmark, report):
    sim, trace = benchmark(run_schedule_a)
    checks = narrative_checks_a(sim, trace)
    assert all(checks.values()), checks
    report.append("[Figure 3 / schedule A]")
    report.append(schedule_report("A (periodic only)", sim, trace))


@pytest.mark.paper
def test_figure3_schedule_b(benchmark, report):
    sim, trace = benchmark(run_schedule_b)
    checks = narrative_checks_b(sim, trace)
    assert all(checks.values()), checks
    report.append("[Figure 3 / schedule B]")
    report.append(schedule_report("B (with aperiodics)", sim, trace))
