"""Benchmark: event-engine throughput regression gate.

``repro-perf bench`` records sustained engine throughput in
``BENCH_perf.json``; this gate re-measures the same micro-benchmark
(``bench_engine``, the timeout/interrupt mix full-system runs produce)
and fails if throughput fell below ``FLOOR_RATIO`` of the committed
number -- the tripwire for accidental hot-path regressions in
``repro.sim``.

As with the obs overhead gate, the wall-clock comparison only applies
when ``BENCH_perf.json`` was recorded on this host (platform string
match); cross-host ratios are noise, not regressions.  The
determinism assertions run everywhere.
"""

import json
import os
import platform

import pytest

from repro.perf.bench import bench_engine

pytestmark = pytest.mark.perf

BENCH_FILE = os.path.join(os.path.dirname(__file__), "..", "BENCH_perf.json")

#: Throughput must stay above this fraction of the committed value.
FLOOR_RATIO = 0.9


def _baseline():
    try:
        with open(BENCH_FILE) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


@pytest.fixture(scope="module")
def measured():
    # Best of three: the gate protects against code regressions, not
    # scheduler jitter on a loaded CI box.
    return max((bench_engine() for _ in range(3)),
               key=lambda r: r["events_per_s"])


def test_engine_throughput_no_regression(measured, report):
    report.append(
        f"[Engine] {measured['events']} events in {measured['elapsed_s']} s "
        f"({measured['events_per_s']} events/s)"
    )
    baseline = _baseline()
    if baseline is None:
        pytest.skip("no BENCH_perf.json baseline to compare against")
    if baseline["host"]["platform"] != platform.platform():
        pytest.skip("BENCH_perf.json was recorded on a different host")
    committed = baseline["engine"]["events_per_s"]
    floor = FLOOR_RATIO * committed
    assert measured["events_per_s"] >= floor, (
        f"engine throughput {measured['events_per_s']} events/s fell below "
        f"{FLOOR_RATIO:.0%} of the committed {committed} events/s -- "
        f"regenerate BENCH_perf.json via `repro-perf bench` if this is an "
        f"intentional trade-off, otherwise find the hot-path regression"
    )


def test_engine_event_count_matches_baseline(measured):
    """The workload itself is deterministic: same event count as the
    committed run, or the benchmark is no longer comparing like with
    like."""
    baseline = _baseline()
    if baseline is None:
        pytest.skip("no BENCH_perf.json baseline to compare against")
    assert measured["events"] == baseline["engine"]["events"]
