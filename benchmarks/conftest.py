"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table/figure of the paper and prints
the rows it reports, so running ``pytest benchmarks/ --benchmark-only
-s`` reproduces the evaluation section end to end.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper: marks benchmarks that regenerate a paper artefact"
    )


@pytest.fixture(scope="session")
def report():
    """Collector that prints reproduced rows at session end."""
    lines = []
    yield lines
    if lines:
        print("\n" + "=" * 72)
        print("REPRODUCED PAPER ARTEFACTS")
        print("=" * 72)
        for line in lines:
            print(line)
