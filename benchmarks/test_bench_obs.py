"""Benchmark: observability overhead on the Figure 4 hot path.

The instrumentation contract is *zero cost when disabled*: every
hooked component defaults to ``metrics=None`` and pays one attribute
check per would-be observation.  This benchmark times one Figure 4
prototype cell three ways -- uninstrumented (the default every
experiment uses), fully instrumented (``prototype_run_report``), and
against the per-cell wall clock recorded in ``BENCH_perf.json`` --
and holds the disabled run to within 2% of the recorded baseline.

The baseline assertion only applies when ``BENCH_perf.json`` was
produced on this host (platform string match); cross-host wall-clock
ratios are noise, not regressions.
"""

import os

import pytest

from repro.obs.bench import OVERHEAD_BUDGET, bench_obs_overhead, format_overhead

pytestmark = pytest.mark.obs

BENCH_FILE = os.path.join(os.path.dirname(__file__), "..", "BENCH_perf.json")


@pytest.fixture(scope="module")
def overhead():
    return bench_obs_overhead(repeats=3, bench_file=BENCH_FILE)


@pytest.mark.paper
def test_disabled_instrumentation_overhead(overhead, report):
    report.append("[Obs] " + format_overhead(overhead).replace("\n", "\n      "))
    if "overhead_vs_baseline" not in overhead:
        pytest.skip("no BENCH_perf.json baseline to compare against")
    if not overhead["baseline_host_matches"]:
        pytest.skip("BENCH_perf.json was recorded on a different host")
    assert overhead["overhead_vs_baseline"] < OVERHEAD_BUDGET, (
        f"disabled-instrumentation run is "
        f"{overhead['overhead_vs_baseline']:+.1%} vs the recorded baseline "
        f"(budget {OVERHEAD_BUDGET:.0%}): the metrics=None guards are no "
        f"longer free"
    )


def test_enabled_instrumentation_is_bounded(overhead):
    # The instrumented run does strictly more work (registry updates,
    # ring-buffer trace, windowed bus monitor); it must still be the
    # same order of magnitude or the hooks are on a hot path they
    # should not be on.
    assert overhead["enabled_overhead"] < 1.0, (
        f"instrumented run is {overhead['enabled_overhead']:+.1%} vs "
        f"disabled -- observability must not double the simulation cost"
    )
