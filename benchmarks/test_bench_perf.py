"""Benchmark: the perf tier itself -- serial vs parallel, cold vs warm.

Times representative Figure 4 cells through :func:`figure4_sweep`
serially and with a worker pool, then cold and warm through the run
cache, and writes ``BENCH_perf.json`` -- the artefact that seeds the
repo's performance trajectory.  On a multi-core host the parallel
sweep should approach ``min(workers, cells)`` times the serial
throughput; on any host the warm cache run must be orders of
magnitude faster and bit-for-bit identical.
"""

import json

import pytest

from repro.perf.bench import (
    bench_cache,
    bench_engine,
    bench_figure4,
    run_benchmarks,
)
from repro.perf.executor import default_workers

pytestmark = pytest.mark.perf


@pytest.mark.paper
def test_engine_throughput(benchmark, report):
    result = benchmark.pedantic(bench_engine, rounds=1, iterations=1)
    report.append(
        f"[Perf] engine: {result['events']} events in {result['elapsed_s']} s "
        f"({result['events_per_s']} events/s)"
    )
    assert result["events_per_s"] > 10_000


@pytest.mark.paper
def test_parallel_figure4_speedup(benchmark, report):
    workers = min(4, default_workers())
    result = benchmark.pedantic(
        bench_figure4, kwargs={"workers": workers}, rounds=1, iterations=1
    )
    report.append(
        f"[Perf] figure4 x{result['cells']}: serial {result['serial_s']} s, "
        f"parallel[{result['workers']}] {result['parallel_s']} s "
        f"(speedup {result['speedup']}x)"
    )
    assert result["identical"], "parallel cells differ from serial"
    if default_workers() >= 4:
        # The acceptance bar on a multi-core host: >= 2x with 4 workers.
        assert result["speedup"] >= 2.0


@pytest.mark.paper
def test_warm_cache_skips_recompute(benchmark, report):
    result = benchmark.pedantic(bench_cache, rounds=1, iterations=1)
    report.append(
        f"[Perf] cache x{result['cells']}: cold {result['cold_s']} s, "
        f"warm {result['warm_s']} s ({result['hit_rate']:.0%} hits, "
        f"warm speedup {result['warm_speedup']}x)"
    )
    assert result["identical"], "cached cells differ from computed"
    # An unchanged sweep must be served ~entirely from the cache.
    assert result["hits"] == result["cells"]
    assert result["warm_speedup"] > 10


@pytest.mark.paper
def test_bench_perf_json_emitted(benchmark, report, tmp_path):
    out = tmp_path / "BENCH_perf.json"
    results = benchmark.pedantic(
        run_benchmarks,
        kwargs={"out": str(out), "quick": True},
        rounds=1,
        iterations=1,
    )
    payload = json.loads(out.read_text())
    assert payload["figure4"]["identical"] and payload["cache"]["identical"]
    report.append(
        f"[Perf] BENCH_perf.json: engine {payload['engine']['events_per_s']} ev/s, "
        f"figure4 speedup {payload['figure4']['speedup']}x "
        f"({payload['figure4']['workers']} workers), "
        f"cache warm speedup {payload['cache']['warm_speedup']}x"
    )
    assert results["version"] == payload["version"]
