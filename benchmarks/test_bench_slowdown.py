"""Benchmark: the in-text slowdown matrix (real vs theoretical, %).

The paper quotes the slowdown of the prototype relative to the
simulation: 7/8/12 % at 2 processors for 40/50/60 % utilization,
15/22/27 % at 3 processors, and about 25 % at 4 processors / 60 %.
This bench regenerates the matrix and checks the reproduction-quality
criteria: correct sign everywhere, correct ordering, and the 2P
column landing inside the paper's band.
"""

import pytest

from repro.experiments.figure4 import PAPER_SLOWDOWNS, run_cell


@pytest.mark.paper
def test_slowdown_matrix(benchmark, report):
    def sweep():
        return {
            (n, u): run_cell(n, u)
            for n in (2, 3, 4)
            for u in (0.40, 0.50, 0.60)
        }

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report.append("[Slowdown matrix] measured (paper) in % real-vs-theoretical:")
    for n in (2, 3, 4):
        row = []
        for u in (0.40, 0.50, 0.60):
            measured = cells[(n, u)].slowdown_pct
            paper = PAPER_SLOWDOWNS.get((n, round(u, 2)))
            row.append(f"{measured:5.1f}" + (f" ({paper:.0f})" if paper else "      "))
        report.append(f"  {n}P: " + "   ".join(row))

    # Sign: the prototype is never faster than the simulation.
    assert all(cell.slowdown_pct > 0 for cell in cells.values())
    # 2P band: single digits to low teens, as in the paper (7-12 %).
    for u in (0.40, 0.50, 0.60):
        assert 1.0 < cells[(2, u)].slowdown_pct < 18.0
    # Adding processors at equal utilization costs responsiveness.
    for u in (0.40, 0.50, 0.60):
        assert cells[(4, u)].slowdown_pct > cells[(2, u)].slowdown_pct
