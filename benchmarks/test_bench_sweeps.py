"""Sweep benchmarks: sensitivity curves around the Figure 4 operating point.

Uses the generic sweep runner to chart how the prototype's aperiodic
response moves with each physical knob, holding the 2P/50 % automotive
workload fixed.
"""

import pytest

from repro.experiments.runner import (
    context_cost_sweep,
    mpic_timeout_sweep,
    processor_scaling_sweep,
    traffic_intensity_sweep,
)


@pytest.mark.paper
def test_sweep_traffic_intensity(benchmark, report):
    result = benchmark.pedantic(
        lambda: traffic_intensity_sweep(scales=(0.25, 1.0, 2.0)),
        rounds=1, iterations=1,
    )
    report.append("[Sweep] shared-memory traffic intensity (2P@50%):")
    report.append(result.format())
    responses = result.column("response_s")
    # More traffic, slower aperiodic response.
    assert responses[0] < responses[-1]
    # The calibrated point (traffic = 1.0) keeps every deadline; the
    # 2x overload is allowed to saturate the bus and miss.
    misses_by_traffic = dict(zip(result.column("traffic"), result.column("misses")))
    assert misses_by_traffic[0.25] == 0
    assert misses_by_traffic[1.0] == 0


@pytest.mark.paper
def test_sweep_context_cost(benchmark, report):
    result = benchmark.pedantic(
        lambda: context_cost_sweep(multipliers=(1, 100, 1000)),
        rounds=1, iterations=1,
    )
    report.append("[Sweep] context-switch cost multiplier (2P@50%):")
    report.append(result.format())
    responses = result.column("response_s")
    assert responses[-1] > responses[0]


@pytest.mark.paper
def test_sweep_processor_scaling(benchmark, report):
    result = benchmark.pedantic(
        lambda: processor_scaling_sweep(cpus=(2, 3, 4), utilization=0.5),
        rounds=1, iterations=1,
    )
    report.append("[Sweep] processor count at 50% utilization:")
    report.append(result.format())
    # Bus utilization grows with processors (the Figure 4 mechanism).
    bus = result.column("bus_utilization")
    assert bus[0] < bus[1] < bus[2]


@pytest.mark.paper
def test_sweep_mpic_timeout(benchmark, report):
    result = benchmark.pedantic(
        lambda: mpic_timeout_sweep(timeouts=(50, 500, 5_000)),
        rounds=1, iterations=1,
    )
    report.append("[Sweep] MPIC acknowledge timeout:")
    report.append(result.format())
    # Sane responses at every timeout; no lost interrupts.
    assert all(r > 10.0 for r in result.column("response_s"))
    assert all(m == 0 for m in result.column("misses"))
