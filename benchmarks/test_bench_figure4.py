"""Benchmark: regenerate Figure 4 (aperiodic response, theoretical vs real).

One benchmark per (processors, utilization) cell; each prints the row
the paper's bar chart encodes and asserts the qualitative shape:

- the theoretical simulator responds near the 10.1 s execution time
  (10.32 s worst case with switching, per the paper);
- the real prototype is slower in every cell;
- at 2 processors the gap sits in the single-digit-to-low-teens band;
- the gap grows with processor count at equal utilization.
"""

import pytest

from repro.experiments.figure4 import (
    APERIODIC_STANDALONE_S,
    PAPER_SLOWDOWNS,
    run_cell,
    slowdown_table,
)

GRID = [(n, u) for n in (2, 3, 4) for u in (0.40, 0.50, 0.60)]

_cells = {}


@pytest.mark.paper
@pytest.mark.parametrize("n_cpus,utilization", GRID)
def test_figure4_cell(benchmark, report, n_cpus, utilization):
    cell = benchmark.pedantic(
        run_cell, args=(n_cpus, utilization), rounds=1, iterations=1
    )
    _cells[(n_cpus, utilization)] = cell
    paper = PAPER_SLOWDOWNS.get((n_cpus, round(utilization, 2)))
    paper_text = f"(paper: {paper:.0f} %)" if paper is not None else ""
    report.append(f"[Figure 4] {cell.row()} {paper_text}")

    # Theoretical near the standalone execution time.
    assert cell.theoretical_s == pytest.approx(
        APERIODIC_STANDALONE_S * 1.02, rel=0.03
    )
    # Prototype strictly slower than simulation.
    assert cell.real_s > cell.theoretical_s
    # Within a loose factor of the paper's band.
    assert cell.slowdown_pct < 50.0


@pytest.mark.paper
def test_figure4_shape(benchmark, report):
    """Cross-cell shape: utilization and processor-count monotonicity."""

    def collect():
        for key in GRID:
            if key not in _cells:
                _cells[key] = run_cell(*key)
        return dict(_cells)

    cells = benchmark.pedantic(collect, rounds=1, iterations=1)
    report.append("[Figure 4] full grid:")
    report.append(slowdown_table([cells[k] for k in GRID]))

    # Gap grows with utilization for every processor count (small noise allowed).
    for n in (2, 3, 4):
        low, high = cells[(n, 0.40)].slowdown_pct, cells[(n, 0.60)].slowdown_pct
        assert high > low * 0.9, f"{n}P: {low} -> {high}"
    # More processors = more contention at equal utilization.
    for u in (0.40, 0.50, 0.60):
        assert cells[(3, u)].slowdown_pct > cells[(2, u)].slowdown_pct * 0.8
        assert cells[(4, u)].slowdown_pct > cells[(2, u)].slowdown_pct
    # The paper's 4P/60% reference point: about 25 % over the optimum.
    assert 15.0 < cells[(4, 0.60)].slowdown_pct < 45.0
