"""Benchmark: CAN network analysis (the peripheral side of the paper).

The paper's aperiodic events arrive from CAN-class peripherals; this
bench regenerates the message-set analysis a designer would run before
wiring those peripherals into the MPIC: per-message worst-case
response on the wire, bus utilization, and a bitrate sweep showing the
schedulability cliff.
"""

import pytest

from repro import CLOCK_HZ
from repro.workloads.canbus import (
    automotive_message_set,
    bus_utilization,
    can_response_time,
)


@pytest.mark.paper
def test_can_message_set_analysis(benchmark, report):
    def analyse():
        messages = automotive_message_set(bitrate=500_000)
        return messages, [
            can_response_time(m, messages, bitrate=500_000) for m in messages
        ]

    messages, responses = benchmark(analyse)
    report.append("[CAN] worst-case response on the wire at 500 kbit/s:")
    for message, response in zip(messages, responses):
        report.append(
            f"  {message.frame.name:<16} id={message.frame.can_id:#05x} "
            f"wcrt={1e3 * response / CLOCK_HZ:6.2f} ms"
        )
    # All schedulable, responses ordered with priority.
    assert all(r is not None for r in responses)
    assert responses == sorted(responses)


@pytest.mark.paper
def test_can_bitrate_cliff(benchmark, report):
    """Sweep the bitrate downward until the set stops being schedulable."""

    def sweep():
        rows = []
        for bitrate in (1_000_000, 500_000, 250_000, 125_000, 62_500, 31_250):
            messages = automotive_message_set(bitrate=bitrate)
            utilization = bus_utilization(messages, bitrate)
            schedulable = all(
                can_response_time(m, messages, bitrate) is not None
                for m in messages
            )
            rows.append((bitrate, utilization, schedulable))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.append("[CAN] bitrate sweep (bitrate, utilization, schedulable):")
    for bitrate, utilization, schedulable in rows:
        report.append(
            f"  {bitrate // 1000:>5} kbit/s  U={utilization:6.1%}  "
            f"{'ok' if schedulable else 'UNSCHEDULABLE'}"
        )
    # Monotone: once unschedulable, lower bitrates stay unschedulable.
    verdicts = [s for _b, _u, s in rows]
    assert verdicts == sorted(verdicts, reverse=True)
    assert verdicts[0] is True
    assert verdicts[-1] is False
