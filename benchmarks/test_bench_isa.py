"""Benchmark: ISA block-interpreter speedup regression gate.

``repro-perf bench`` records the block-vs-reference interpreter
speedup over the asmlib kernels in the ``isa`` section of
``BENCH_perf.json``; this gate re-measures it and fails if the
aggregate speedup fell below ``FLOOR_RATIO`` of the committed value --
the tripwire for regressions in the predecode/coalescing hot path of
``repro.hw.isa``.

As with the other wall-clock gates, the ratio comparison only applies
when ``BENCH_perf.json`` was recorded on this host (platform string
match).  The structural assertions -- observable equivalence and the
collapsed events-per-instruction count -- run everywhere.
"""

import json
import os
import platform

import pytest

from repro.perf.isabench import bench_isa

pytestmark = pytest.mark.perf

BENCH_FILE = os.path.join(os.path.dirname(__file__), "..", "BENCH_perf.json")

#: Aggregate speedup must stay above this fraction of the committed value.
FLOOR_RATIO = 0.9


def _baseline():
    try:
        with open(BENCH_FILE) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


@pytest.fixture(scope="module")
def measured():
    # bench_isa already pairs repeats and keeps the best ratio per
    # kernel; one harness call is the whole measurement.
    return bench_isa(repeats=3)


def test_block_mode_is_observably_identical(measured, report):
    report.append(
        f"[ISA] block vs reference speedup {measured['speedup']}x "
        f"(events/instr {measured['events_per_instr_reference']} -> "
        f"{measured['events_per_instr_block']})"
    )
    assert measured["identical"], (
        "block-mode run diverged from the reference interpreter: "
        + ", ".join(r["kernel"] for r in measured["kernels"]
                    if not r["identical"])
    )


def test_block_mode_collapses_event_count(measured):
    """The coalescing win must be structural, not just wall-clock: far
    fewer engine events per retired instruction in block mode."""
    assert (measured["events_per_instr_block"]
            < measured["events_per_instr_reference"] / 2)


def test_isa_speedup_no_regression(measured):
    baseline = _baseline()
    if baseline is None:
        pytest.skip("no BENCH_perf.json baseline to compare against")
    if "isa" not in baseline:
        pytest.skip("BENCH_perf.json has no isa section yet")
    if baseline["host"]["platform"] != platform.platform():
        pytest.skip("BENCH_perf.json was recorded on a different host")
    committed = baseline["isa"]["speedup"]
    floor = FLOOR_RATIO * committed
    assert measured["speedup"] >= floor, (
        f"ISA block-mode speedup {measured['speedup']}x fell below "
        f"{FLOOR_RATIO:.0%} of the committed {committed}x -- regenerate "
        f"BENCH_perf.json via `repro-perf bench --isa-only --out "
        f"BENCH_perf.json` if this is an intentional trade-off, otherwise "
        f"find the hot-path regression in repro.hw.isa"
    )
