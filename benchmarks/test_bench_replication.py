"""Benchmark: Figure 4's headline cell with confidence intervals.

The paper reports bare means; this bench reruns the 2-processor /
50 % cell over five independent arrival phases and reports the mean
with a 95 % confidence interval, plus a statistical comparison of the
prototype against the theoretical simulator.
"""

import pytest

from repro import CLOCK_HZ, cycles_to_seconds
from repro.experiments.figure4 import TICK
from repro.simulators.batch import compare, replicate
from repro.simulators.prototype import PrototypeConfig, PrototypeSimulator
from repro.simulators.theoretical import TheoreticalSimulator
from repro.trace.metrics import compute_metrics
from repro.workloads.automotive import (
    AUTOMOTIVE_APERIODIC,
    automotive_bindings,
    build_automotive_taskset,
    prepare_taskset,
)

PHASES_S = (1.0, 2.3, 3.55, 5.15, 7.3)
SCALE = 1_000


@pytest.fixture(scope="module")
def taskset():
    return prepare_taskset(build_automotive_taskset(0.5, 2), 2, tick=TICK)


def _theoretical(taskset, phase_index):
    arrival = int(PHASES_S[phase_index] * CLOCK_HZ)
    horizon = arrival + int(16 * CLOCK_HZ)
    sim = TheoreticalSimulator(
        taskset, 2, tick=TICK, overhead=0.02,
        aperiodic_arrivals={AUTOMOTIVE_APERIODIC: [arrival]},
    )
    sim.run(horizon)
    metrics = compute_metrics(sim.finished_jobs, horizon)
    return cycles_to_seconds(metrics.response_of(AUTOMOTIVE_APERIODIC).mean)


def _prototype(taskset, phase_index):
    arrival = int(PHASES_S[phase_index] * CLOCK_HZ)
    horizon = arrival + int(16 * CLOCK_HZ)
    proto = PrototypeSimulator(
        taskset,
        PrototypeConfig(n_cpus=2, tick=TICK, scale=SCALE),
        bindings=automotive_bindings(),
        aperiodic_arrivals={AUTOMOTIVE_APERIODIC: [arrival]},
    )
    proto.run(horizon)
    metrics = compute_metrics(proto.finished_jobs, horizon // SCALE)
    return cycles_to_seconds(
        proto.to_full_scale(int(metrics.response_of(AUTOMOTIVE_APERIODIC).mean))
    )


@pytest.mark.paper
def test_replicated_2p50_with_confidence(benchmark, report, taskset):
    def run():
        theo = replicate(
            "theoretical 2P@50%", lambda i: _theoretical(taskset, i), len(PHASES_S)
        )
        real = replicate(
            "prototype   2P@50%", lambda i: _prototype(taskset, i), len(PHASES_S)
        )
        return theo, real

    theo, real = benchmark.pedantic(run, rounds=1, iterations=1)
    verdict = compare(real, theo)
    report.append("[Replication] " + theo.format(unit=" s"))
    report.append("[Replication] " + real.format(unit=" s"))
    report.append(
        f"[Replication] prototype - theoretical = "
        f"{verdict['difference']:.3f} s +/- {verdict['half_width']:.3f} s "
        f"(significant: {verdict['significant']})"
    )
    # The theoretical response barely varies (same decisions, 2% inflation).
    assert theo.stdev < 0.5
    # The prototype is slower, and statistically so.
    assert real.mean > theo.mean
    assert verdict["significant"]
    assert verdict["difference"] > 0
