"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but the sensitivity studies its discussion
implies: how much of the real-vs-theoretical gap each physical effect
contributes, and how MPDP compares against the classical alternatives
it is positioned against in the related-work section.
"""

import pytest

from repro import CLOCK_HZ, cycles_to_seconds
from repro.analysis import assign_promotions, partition, random_taskset
from repro.hw.microblaze import ExecutionProfile
from repro.kernel.costs import KernelCosts
from repro.kernel.microkernel import TaskBinding
from repro.simulators.baselines import (
    GlobalEDFPolicy,
    GlobalFixedPriorityPolicy,
    MultiprocessorSimulator,
    PartitionedFixedPriorityPolicy,
)
from repro.simulators.prototype import PrototypeConfig, PrototypeSimulator
from repro.simulators.theoretical import TheoreticalSimulator
from repro.trace.metrics import compute_metrics
from repro.workloads.automotive import (
    AUTOMOTIVE_APERIODIC,
    automotive_bindings,
    build_automotive_taskset,
    prepare_taskset,
)

TICK = 5_000_000
SCALE = 1_000
ARRIVAL = int(1.0 * CLOCK_HZ)
HORIZON = int(18.0 * CLOCK_HZ)


def _prototype_response(n_cpus, util, bindings=None, costs=None):
    ts = prepare_taskset(build_automotive_taskset(util, n_cpus), n_cpus, tick=TICK)
    config = PrototypeConfig(
        n_cpus=n_cpus, tick=TICK, scale=SCALE, costs=costs or KernelCosts()
    )
    proto = PrototypeSimulator(
        ts, config,
        bindings=bindings if bindings is not None else automotive_bindings(),
        aperiodic_arrivals={AUTOMOTIVE_APERIODIC: [ARRIVAL]},
    )
    proto.run(HORIZON)
    metrics = compute_metrics(proto.finished_jobs, HORIZON // SCALE)
    return cycles_to_seconds(
        proto.to_full_scale(int(metrics.response_of(AUTOMOTIVE_APERIODIC).mean))
    )


@pytest.mark.paper
def test_ablation_bus_traffic_drives_the_gap(benchmark, report):
    """Zeroing shared-memory traffic should collapse the slowdown --
    evidence for the paper's claim that contention on the shared bus
    and memory is the dominant constraint."""

    def run():
        light = {
            name: TaskBinding(
                profile=ExecutionProfile(access_period=100_000, access_words=1),
                stack_words=binding.stack_words,
            )
            for name, binding in automotive_bindings().items()
        }
        with_traffic = _prototype_response(3, 0.50)
        without_traffic = _prototype_response(3, 0.50, bindings=light)
        return with_traffic, without_traffic

    with_traffic, without_traffic = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append(
        f"[Ablation/bus] 3P@50%: response with characterised traffic "
        f"{with_traffic:.3f} s vs near-zero traffic {without_traffic:.3f} s"
    )
    assert without_traffic < with_traffic


@pytest.mark.paper
def test_ablation_context_switch_cost(benchmark, report):
    """Sweep the context-switch primitive cost: heavier switches slow
    the aperiodic response (the paper's second named overhead)."""

    def run():
        cheap = KernelCosts(context_primitive=150, regfile_words=32)
        costly = KernelCosts(context_primitive=150_000, regfile_words=3_200)
        return (
            _prototype_response(2, 0.50, costs=cheap),
            _prototype_response(2, 0.50, costs=costly),
        )

    cheap_s, costly_s = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append(
        f"[Ablation/context] 2P@50%: response {cheap_s:.3f} s (nominal switch) "
        f"vs {costly_s:.3f} s (1000x switch cost)"
    )
    assert costly_s > cheap_s


@pytest.mark.paper
def test_ablation_mpdp_vs_baselines(benchmark, report):
    """MPDP's aperiodic response against partitioned-FP background
    service and the global schedulers (related-work positioning)."""
    ts = random_taskset(
        8, 1.4, seed=77, n_aperiodic=1, aperiodic_wcet=60_000,
        min_period=200_000, max_period=900_000,
    )
    ts = partition(ts, 2)
    ts = assign_promotions(ts, 2, tick=10_000)
    arrivals = {"a0": [155_000, 455_000, 755_000]}
    horizon = 2_000_000

    def run():
        results = {}
        mpdp = TheoreticalSimulator(ts, 2, tick=10_000, overhead=0.0,
                                    aperiodic_arrivals=arrivals)
        mpdp.run(horizon)
        results["mpdp"] = compute_metrics(mpdp.finished_jobs, horizon).response_of("a0").mean
        for policy in (
            PartitionedFixedPriorityPolicy(),
            GlobalFixedPriorityPolicy(),
            GlobalEDFPolicy(),
        ):
            sim = MultiprocessorSimulator(ts, 2, policy, aperiodic_arrivals=arrivals)
            sim.run(horizon)
            results[policy.name] = compute_metrics(sim.finished, horizon).response_of("a0").mean
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append("[Ablation/baselines] mean aperiodic response (cycles):")
    for name, value in sorted(results.items(), key=lambda kv: kv[1]):
        report.append(f"  {name:<16} {value:>12.0f}")
    # MPDP must beat the background-service partitioned baseline.
    assert results["mpdp"] <= results["partitioned-fp"]


@pytest.mark.paper
def test_ablation_promotion_tick_granularity(benchmark, report):
    """Tick-rounded promotions (the prototype) vs exact promotions:
    rounding down promotes earlier, trading aperiodic responsiveness
    for the same hard guarantees."""
    base = random_taskset(
        6, 1.1, seed=31, n_aperiodic=1, aperiodic_wcet=80_000,
        min_period=150_000, max_period=700_000,
    )
    base = partition(base, 2)
    arrivals = {"a0": [120_000, 620_000]}
    horizon = 1_500_000

    def run():
        out = {}
        for label, tick_round in (("exact", None), ("tick", 10_000)):
            ts = assign_promotions(base, 2, tick=tick_round)
            sim = TheoreticalSimulator(ts, 2, tick=10_000, overhead=0.0,
                                       aperiodic_arrivals=arrivals)
            sim.run(horizon)
            metrics = compute_metrics(sim.finished_jobs, horizon)
            out[label] = (
                metrics.response_of("a0").mean,
                metrics.deadline_misses,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report.append(
        "[Ablation/promotion] exact U: response "
        f"{results['exact'][0]:.0f} cy; tick-rounded U: {results['tick'][0]:.0f} cy"
    )
    # Both keep the hard guarantee.
    assert results["exact"][1] == 0
    assert results["tick"][1] == 0
    # Earlier (rounded-down) promotions can only hurt aperiodic response.
    assert results["tick"][0] >= results["exact"][0] * 0.999
