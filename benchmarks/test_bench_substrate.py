"""Substrate microbenchmarks: the hardware numbers behind Figure 4.

Not paper artefacts themselves, but the calibration measurements the
full-system results rest on: interrupt delivery latency through the
MPIC, context-switch cost through shared memory, bus throughput under
contention, and the ISA interpreter's execution rate.
"""

import pytest

from repro.hw.assembler import assemble
from repro.hw.bus import OPBBus
from repro.hw.isa import ISAExecutor
from repro.hw.memory import DDRMemory
from repro.hw.microblaze import ExecutionProfile, MicroBlaze, SegmentResult
from repro.hw.soc import SoC, SoCConfig
from repro.kernel.context import ContextSwitchEngine
from repro.sim import Simulator


def test_mpic_delivery_latency(benchmark, report):
    """Cycles from raise_interrupt to acknowledge on an idle system."""

    def deliver():
        soc = SoC(SoCConfig(n_cpus=2))
        source = soc.intc.add_source("dev")
        start = soc.sim.now
        soc.intc.raise_interrupt(source)
        soc.intc.acknowledge(0)
        return soc.sim.now - start

    latency = benchmark(deliver)
    assert latency == 0  # combinational offer; software adds the cost
    report.append("[Substrate] MPIC offer->ack latency: combinational "
                  "(software ack path adds the measured kernel costs)")


def test_context_switch_cost(benchmark, report):
    """Full save+restore of a 256-word stack through the shared DDR."""

    def switch():
        sim = Simulator()
        core = MicroBlaze(sim, 0, OPBBus(sim), DDRMemory())
        engine = ContextSwitchEngine(core)
        old = engine.context_of("old", stack_words=256)
        new = engine.context_of("new", stack_words=256)

        def run():
            yield from engine.switch(old, new)

        sim.process(run())
        sim.run()
        return sim.now

    cycles = benchmark(switch)
    report.append(
        f"[Substrate] uncontended context switch (256-word stacks): "
        f"{cycles} cycles = {cycles / 50_000:.2f} ms at 50 MHz... "
        f"{1e6 * cycles / 50_000_000:.1f} us"
    )
    assert 1_000 < cycles < 10_000


def test_bus_saturation_throughput(benchmark, report):
    """Four masters streaming 4-word bursts: the bus must saturate and
    fixed priority must keep master 0's waits bounded."""

    def contend():
        sim = Simulator()
        bus = OPBBus(sim)
        ddr = DDRMemory()

        def master(mid):
            for _ in range(200):
                yield from bus.transfer(mid, ddr, words=4)

        for mid in range(4):
            sim.process(master(mid))
        sim.run()
        return bus, sim.now

    bus, elapsed = benchmark(contend)
    utilization = bus.stats.utilization(elapsed)
    assert utilization > 0.99  # saturated
    assert bus.stats.mean_wait(0) < bus.stats.mean_wait(3)
    report.append(
        f"[Substrate] 4-master saturation: bus util {utilization:.1%}, "
        f"mean wait m0={bus.stats.mean_wait(0):.0f} < m3={bus.stats.mean_wait(3):.0f} cycles"
    )


def test_isa_execution_rate(benchmark, report):
    """Interpreter throughput on a tight loop (host perf, not model)."""
    source = """
        addi r1, r0, 2000
    loop:
        addi r2, r2, 3
        xor  r3, r3, r2
        addi r1, r1, -1
        bnez r1, loop
        halt
    """

    def run():
        soc = SoC(SoCConfig(n_cpus=1))
        executor = ISAExecutor(soc.core(0), assemble(source))
        soc.sim.process(executor.run(max_instructions=10_000_000))
        soc.sim.run()
        return executor

    executor = benchmark(run)
    assert executor.state.halted
    assert executor.state.instructions_retired == 2 + 4 * 2000
    report.append(
        f"[Substrate] ISA interpreter: {executor.state.instructions_retired} "
        f"instructions, {executor.cycles} modelled cycles"
    )


def test_profile_execution_model_cost(benchmark, report):
    """DES cost of one second of modelled execution at scale 1000."""

    def run():
        sim = Simulator()
        core = MicroBlaze(sim, 0, OPBBus(sim), DDRMemory(), chunk_cycles=500)
        result = SegmentResult()

        def work():
            yield from core.execute(50_000, ExecutionProfile(45, 4), result)

        sim.process(work())
        sim.run()
        return result

    result = benchmark(run)
    assert result.completed
    assert result.nominal_done == 50_000
