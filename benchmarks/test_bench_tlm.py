"""Benchmark: fidelity-ladder (TLM vs prototype) regression gate.

``repro-perf bench`` records the TLM rung's speedup over the
cycle-approximate prototype on the Figure 4 anchor cells in
``BENCH_perf.json``; this gate re-measures the same section and fails
if the speedup fell below ``FLOOR_RATIO`` of the committed number --
the tripwire for accidental slow-downs in ``repro.simulators.tlm``.

The *accuracy* half of the contract is gated unconditionally (no host
match needed): a fast rung that disagrees with the prototype is not an
optimisation, so the anchor verdicts must match and every per-task
WCRT must sit within the calibrated residual of the shipped cost
table.  As with the engine gate, the wall-clock comparison only
applies when ``BENCH_perf.json`` was recorded on this host.
"""

import json
import os
import platform

import pytest

from repro.perf.bench import bench_tlm
from repro.simulators.tlm import DEFAULT_COST_TABLE

pytestmark = pytest.mark.perf

BENCH_FILE = os.path.join(os.path.dirname(__file__), "..", "BENCH_perf.json")

#: The re-measured speedup must stay above this fraction of the
#: committed value.
FLOOR_RATIO = 0.9

#: The paper-reproduction bar the committed entry itself must clear:
#: the TLM rung earns its place on the ladder by being >= 25x faster
#: than the prototype on every anchor cell.
COMMITTED_SPEEDUP_BAR = 25.0


def _baseline():
    try:
        with open(BENCH_FILE) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


@pytest.fixture(scope="module")
def measured():
    # bench_tlm is already best-of-N per rung: the gate protects
    # against code regressions, not scheduler jitter on a loaded box.
    return bench_tlm(repeats=3)


def test_tlm_accuracy_contract(measured, report):
    """Verdict + WCRT agreement with the prototype, host-independent."""
    report.append(
        "[TLM] anchors: "
        + "  ".join(
            f"{row['n_cpus']}P/{row['utilization']:.0%} "
            f"tlm {row['tlm_s']} s vs proto {row['prototype_s']} s "
            f"({row['speedup']}x)"
            for row in measured["cells"]
        )
    )
    assert measured["verdicts_match"], (
        "TLM schedulability verdict differs from the prototype on an "
        "anchor cell -- re-run repro-perf calibrate-tlm"
    )
    assert measured["max_wcrt_deviation"] <= measured["residual_bound"], (
        f"per-task WCRT deviation {measured['max_wcrt_deviation']:.1%} "
        f"exceeds the calibrated residual "
        f"{measured['residual_bound']:.1%}"
    )
    assert measured["residual_bound"] == DEFAULT_COST_TABLE.residual


def test_tlm_speedup_no_regression(measured, report):
    baseline = _baseline()
    if baseline is None or "tlm" not in baseline:
        pytest.skip("no BENCH_perf.json tlm baseline to compare against")
    if baseline["host"]["platform"] != platform.platform():
        pytest.skip("BENCH_perf.json was recorded on a different host")
    committed = baseline["tlm"]["min_speedup"]
    floor = FLOOR_RATIO * committed
    report.append(
        f"[TLM] min speedup {measured['min_speedup']}x "
        f"(committed {committed}x, floor {floor:.1f}x)"
    )
    assert measured["min_speedup"] >= floor, (
        f"TLM speedup {measured['min_speedup']}x fell below "
        f"{FLOOR_RATIO:.0%} of the committed {committed}x -- regenerate "
        f"BENCH_perf.json via `repro-perf bench` if this is an "
        f"intentional trade-off, otherwise find the hot-path regression "
        f"in repro.simulators.tlm"
    )


def test_committed_entry_clears_paper_bar():
    """The committed tlm entry itself must document a >= 25x rung with
    the accuracy cross-check green (this is a static check of the
    repository artefact, not a timing)."""
    baseline = _baseline()
    if baseline is None or "tlm" not in baseline:
        pytest.skip("no BENCH_perf.json tlm baseline to compare against")
    entry = baseline["tlm"]
    assert entry["min_speedup"] >= COMMITTED_SPEEDUP_BAR
    assert entry["accurate"] and entry["verdicts_match"]
    assert entry["max_wcrt_deviation"] <= entry["residual_bound"]
