"""Smoke tests: every shipped example must run cleanly.

Each example is executed in-process (fast) with stdout captured; the
assertions check for the example's headline output so regressions in
the public API surface here immediately.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=("prog",)):
    buffer = io.StringIO()
    old_argv = sys.argv
    sys.argv = list(argv)
    try:
        with redirect_stdout(buffer):
            try:
                runpy.run_path(str(EXAMPLES / name), run_name="__main__")
            except SystemExit as exc:
                assert not exc.code, f"{name} exited with {exc.code}"
    finally:
        sys.argv = old_argv
    return buffer.getvalue()


def test_quickstart():
    out = run_example("quickstart.py")
    assert "offline analysis" in out
    assert "deadline misses:  0" in out
    assert "crash-diag response" in out


def test_figure3_schedule():
    out = run_example("figure3_schedule.py")
    assert out.count("[ok]") == 10
    assert "[FAIL]" not in out


def test_interrupt_controller_demo():
    out = run_example("interrupt_controller_demo.py")
    assert "max parallel handlers: 3" in out
    assert "timeouts=1" in out
    assert "cpu2 took an IPI from cpu0" in out


def test_isa_playground():
    out = run_example("isa_playground.py")
    assert "sorted data" in out
    assert "icache" in out


def test_offload_booking():
    out = run_example("offload_booking.py")
    assert "all CRCs verified" in out


def test_can_network_study():
    out = run_example("can_network_study.py")
    assert "wire utilization" in out
    assert "periodic deadline misses: 0" in out


@pytest.mark.slow
def test_automotive_case_study():
    out = run_example("automotive_case_study.py", argv=("prog", "2", "0.4"))
    assert "slowdown real vs simulated" in out
    assert "periodic deadline misses: 0" in out


@pytest.mark.slow
def test_bus_saturation_study():
    out = run_example("bus_saturation_study.py")
    assert "2 processors" in out and "4 processors" in out
    assert "steady-state bus utilization" in out
