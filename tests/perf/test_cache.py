"""Unit tests for the content-addressed run cache (repro.perf.cache)."""

import json

import pytest

import repro
from repro.core.task import PeriodicTask, TaskSet
from repro.kernel.costs import KernelCosts
from repro.perf.cache import (
    RunCache,
    cache_key,
    canonical,
    fingerprint,
    taskset_rows,
)

pytestmark = pytest.mark.perf


class TestKeys:
    def test_stable_under_kwarg_order(self):
        assert cache_key(a=1, b="x") == cache_key(b="x", a=1)

    def test_sensitive_to_values_and_names(self):
        base = cache_key(a=1)
        assert base != cache_key(a=2)
        assert base != cache_key(b=1)

    def test_version_is_part_of_the_key(self):
        implicit = cache_key(a=1)
        assert implicit == cache_key(a=1, version=repro.__version__)
        assert implicit != cache_key(a=1, version="0.0.0-other")

    def test_dataclasses_hash_by_content_and_type(self):
        assert cache_key(costs=KernelCosts()) == cache_key(costs=KernelCosts())
        tweaked = KernelCosts(context_primitive=KernelCosts().context_primitive + 1)
        assert cache_key(costs=KernelCosts()) != cache_key(costs=tweaked)

    def test_canonical_json_safe(self):
        shape = canonical({"t": (1, 2), "costs": KernelCosts(), "f": 0.25})
        json.dumps(shape)  # must not raise
        assert shape["t"] == [1, 2]
        assert shape["costs"]["__dataclass__"] == "KernelCosts"

    def test_taskset_rows_capture_analysis_fields(self):
        ts = TaskSet([PeriodicTask(name="t", wcet=10, period=100)])
        promoted = TaskSet([
            PeriodicTask(name="t", wcet=10, period=100, promotion=50)
        ])
        assert fingerprint(taskset_rows(ts)) != fingerprint(taskset_rows(promoted))


class TestRunCache:
    def test_miss_then_hit(self, tmp_path):
        cache = RunCache(tmp_path)
        key = cache_key(x=1)
        hit, value = cache.lookup(key)
        assert not hit and value is None
        cache.put(key, {"y": 2.5})
        hit, value = cache.lookup(key)
        assert hit and value == {"y": 2.5}
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["stores"] == 1
        assert cache.hit_rate == 0.5

    def test_get_with_default(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.get("0" * 64, default="absent") == "absent"

    def test_contains_and_len(self, tmp_path):
        cache = RunCache(tmp_path)
        key = cache_key(x="contains")
        assert key not in cache
        cache.put(key, 1)
        assert key in cache
        assert len(cache) == 1

    def test_survives_reopen(self, tmp_path):
        key = cache_key(x="persist")
        RunCache(tmp_path).put(key, [1.0, 2.0])
        assert RunCache(tmp_path).get(key) == [1.0, 2.0]

    def test_float_round_trip_exact(self, tmp_path):
        cache = RunCache(tmp_path)
        value = 10.743986666666668
        key = cache_key(x="float")
        cache.put(key, value)
        assert cache.get(key) == value

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        key = cache_key(x="corrupt")
        cache.put(key, 1)
        cache._path(key).write_text("{not json")
        hit, _ = cache.lookup(key)
        assert not hit

    def test_env_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envroot"))
        cache = RunCache()
        assert str(cache.root).endswith("envroot")


class TestGarbageCollection:
    def fill(self, tmp_path, n, mtime_step=10):
        """Populate a cache with n entries whose mtimes ascend by key index."""
        import os
        import time

        cache = RunCache(tmp_path)
        keys = [cache_key(x=f"gc-{i}") for i in range(n)]
        base = time.time() - n * mtime_step - 1_000
        for i, key in enumerate(keys):
            cache.put(key, {"index": i, "payload": "x" * 64})
            os.utime(cache._path(key), (base + i * mtime_step,) * 2)
        return cache, keys

    def test_gc_without_limits_is_a_report(self, tmp_path):
        cache, keys = self.fill(tmp_path, 4)
        report = cache.gc()
        assert report["evicted"] == 0
        assert report["entries_before"] == report["entries_after"] == 4
        assert report["bytes_before"] == report["bytes_after"] > 0
        assert all(key in cache for key in keys)

    def test_gc_max_entries_evicts_lru_first(self, tmp_path):
        cache, keys = self.fill(tmp_path, 6)
        report = cache.gc(max_entries=2)
        assert report["evicted"] == 4
        assert report["entries_after"] == 2
        # Oldest-used entries go first; the newest two survive.
        assert all(key not in cache for key in keys[:4])
        assert all(key in cache for key in keys[4:])

    def test_gc_max_bytes_evicts_down_to_budget(self, tmp_path):
        cache, keys = self.fill(tmp_path, 5)
        per_entry = cache.disk_usage() // 5
        report = cache.gc(max_bytes=2 * per_entry)
        assert report["bytes_after"] <= 2 * per_entry
        assert report["evicted"] >= 3
        assert keys[-1] in cache  # most recently used survives

    def test_gc_hit_refreshes_lru_rank(self, tmp_path):
        cache, keys = self.fill(tmp_path, 4)
        hit, _ = cache.lookup(keys[0])  # touch the oldest entry
        assert hit
        cache.gc(max_entries=1)
        assert keys[0] in cache  # survived because it was just used
        assert all(key not in cache for key in keys[1:])

    def test_gc_removes_orphaned_tmp_files(self, tmp_path):
        cache, _ = self.fill(tmp_path, 2)
        orphan = cache.root / "ab" / "deadbeef.tmp.1234"
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_text("torn write")
        report = cache.gc()
        assert report["removed_tmp"] == 1
        assert not orphan.exists()

    def test_gc_empty_cache(self, tmp_path):
        cache = RunCache(tmp_path / "never-created")
        report = cache.gc(max_bytes=0, max_entries=0)
        assert report["evicted"] == 0
        assert report["entries_before"] == 0
        assert cache.disk_usage() == 0

    def test_gc_prunes_emptied_fanout_dirs(self, tmp_path):
        cache, keys = self.fill(tmp_path, 3)
        cache.gc(max_entries=0)
        assert len(cache) == 0
        # No entry files remain; emptied prefix dirs are gone too.
        assert all(not p.is_dir() for p in cache.root.iterdir())


class TestPutErrors:
    """Satellite: RunCache.put must survive filesystem failures."""

    def test_replace_failure_retries_then_counts(self, tmp_path, monkeypatch):
        import os as os_module

        cache = RunCache(tmp_path / "cache")
        key = cache_key(x=1)

        calls = []

        def always_fails(src, dst):
            calls.append((src, dst))
            raise OSError("disk on fire")

        monkeypatch.setattr("repro.perf.cache.os.replace", always_fails)
        cache.put(key, {"v": 1})  # must not raise
        assert len(calls) == 2  # first attempt + one retry
        assert cache.put_errors == 1
        assert cache.stores == 0
        assert cache.stats()["put_errors"] == 1
        # The torn tmp file was cleaned up.
        assert not list(cache.root.glob("*/*.tmp.*"))

    def test_replace_retry_wins_after_gc_race(self, tmp_path, monkeypatch):
        import os as os_module

        cache = RunCache(tmp_path / "cache")
        key = cache_key(x=2)
        real_replace = os_module.replace
        attempts = []

        def flaky(src, dst):
            attempts.append(dst)
            if len(attempts) == 1:
                raise OSError("shard rmdir'd concurrently")
            return real_replace(src, dst)

        monkeypatch.setattr("repro.perf.cache.os.replace", flaky)
        cache.put(key, {"v": 2})
        assert len(attempts) == 2
        assert cache.put_errors == 0
        assert cache.stores == 1
        assert cache.get(key) == {"v": 2}

    def test_unwritable_root_counts_put_error(self, tmp_path, monkeypatch):
        cache = RunCache(tmp_path / "cache")

        def no_mkdir(*args, **kwargs):
            raise OSError("read-only filesystem")

        monkeypatch.setattr("pathlib.Path.mkdir", no_mkdir)
        cache.put(cache_key(x=3), {"v": 3})  # must not raise
        assert cache.put_errors == 1
        assert cache.stores == 0
