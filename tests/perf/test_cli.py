"""Tests for the repro-perf CLI and the timing harness."""

import io
import json

import pytest

from repro.perf import bench
from repro.perf.cli import main, self_check

pytestmark = pytest.mark.perf


class TestSelfCheck:
    def test_passes(self):
        out = io.StringIO()
        assert self_check(out=out) == 0
        text = out.getvalue()
        assert "self-check: PASS" in text
        assert "FAIL" not in text.replace("PASS", "")

    def test_main_flag(self, capsys):
        assert main(["--self-check"]) == 0
        assert "self-check: PASS" in capsys.readouterr().out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "repro-perf" in capsys.readouterr().err


class TestBenchSections:
    def test_engine_micro(self):
        result = bench.bench_engine(n_processes=20, horizon=200)
        assert result["events"] > 0
        assert result["events_per_s"] > 0

    def test_engine_micro_deterministic_event_count(self):
        a = bench.bench_engine(n_processes=20, horizon=200)
        b = bench.bench_engine(n_processes=20, horizon=200)
        assert a["events"] == b["events"]


class TestEngineOnlyMode:
    def test_engine_only_skips_slow_sections(self, tmp_path, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("figure4/cache must not run in engine-only")

        monkeypatch.setattr(bench, "bench_figure4", boom)
        monkeypatch.setattr(bench, "bench_cache", boom)
        results = bench.run_benchmarks(out="", quick=True, engine_only=True)
        assert set(results) == {"version", "host", "engine"}
        assert "figure4" not in bench.format_results(results)

    def test_cli_engine_only_writes_nothing_by_default(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--engine-only", "--quick"]) == 0
        assert "engine :" in capsys.readouterr().out
        assert not (tmp_path / "BENCH_perf.json").exists()

    def test_cli_engine_only_explicit_out(self, tmp_path, capsys):
        out = tmp_path / "engine.json"
        assert main(["bench", "--engine-only", "--quick",
                     "--out", str(out)]) == 0
        on_disk = json.loads(out.read_text())
        assert set(on_disk) == {"version", "host", "engine"}


class TestCacheCommand:
    def test_reports_usage(self, tmp_path, capsys):
        from repro.perf.cache import RunCache, cache_key

        RunCache(tmp_path).put(cache_key(x=1), {"y": 2})
        assert main(["cache", "--dir", str(tmp_path)]) == 0
        assert "1 entry(ies)" in capsys.readouterr().out

    def test_gc_evicts_to_limit(self, tmp_path, capsys):
        from repro.perf.cache import RunCache, cache_key

        cache = RunCache(tmp_path)
        for i in range(5):
            cache.put(cache_key(x=i), {"i": i})
        assert main(["cache", "--gc", "--max-entries", "2",
                     "--dir", str(tmp_path)]) == 0
        assert "3 entry(ies) evicted" in capsys.readouterr().out
        assert len(RunCache(tmp_path)) == 2


@pytest.mark.slow
class TestBenchEndToEnd:
    def test_run_benchmarks_writes_json(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        results = bench.run_benchmarks(
            out=str(out), workers=2, quick=True
        )
        assert results["figure4"]["identical"]
        assert results["cache"]["identical"]
        assert results["cache"]["hit_rate"] == 0.5  # warm run all hits
        on_disk = json.loads(out.read_text())
        assert on_disk["engine"]["events"] == results["engine"]["events"]
        assert set(on_disk) == {"version", "host", "engine", "figure4",
                                "cache", "tlm", "isa"}
        assert on_disk["isa"]["identical"]
        assert "speedup" in on_disk["figure4"]
        assert on_disk["tlm"]["accurate"]
        text = bench.format_results(results)
        assert "figure4" in text and "cache" in text and "tlm" in text
