"""Tests for the repro-perf CLI and the timing harness."""

import io
import json

import pytest

from repro.perf import bench
from repro.perf.cli import main, self_check

pytestmark = pytest.mark.perf


class TestSelfCheck:
    def test_passes(self):
        out = io.StringIO()
        assert self_check(out=out) == 0
        text = out.getvalue()
        assert "self-check: PASS" in text
        assert "FAIL" not in text.replace("PASS", "")

    def test_main_flag(self, capsys):
        assert main(["--self-check"]) == 0
        assert "self-check: PASS" in capsys.readouterr().out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "repro-perf" in capsys.readouterr().err


class TestBenchSections:
    def test_engine_micro(self):
        result = bench.bench_engine(n_processes=20, horizon=200)
        assert result["events"] > 0
        assert result["events_per_s"] > 0

    def test_engine_micro_deterministic_event_count(self):
        a = bench.bench_engine(n_processes=20, horizon=200)
        b = bench.bench_engine(n_processes=20, horizon=200)
        assert a["events"] == b["events"]


@pytest.mark.slow
class TestBenchEndToEnd:
    def test_run_benchmarks_writes_json(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        results = bench.run_benchmarks(
            out=str(out), workers=2, quick=True
        )
        assert results["figure4"]["identical"]
        assert results["cache"]["identical"]
        assert results["cache"]["hit_rate"] == 0.5  # warm run all hits
        on_disk = json.loads(out.read_text())
        assert on_disk["engine"]["events"] == results["engine"]["events"]
        assert set(on_disk) == {"version", "host", "engine", "figure4", "cache"}
        assert "speedup" in on_disk["figure4"]
        text = bench.format_results(results)
        assert "figure4" in text and "cache" in text
